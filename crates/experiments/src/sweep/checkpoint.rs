//! Append-only JSONL checkpoint files: one manifest line, then one
//! line per completed point.
//!
//! Format (one JSON object per line, written with the bit-exact
//! writers from [`lrd_obs::json`]):
//!
//! ```text
//! {"kind":"manifest","figure":"fig04_mtv_model","plan_hash":"…",
//!  "profile":"quick","shard":0,"shard_count":2,"points":12,
//!  "value_label":"loss_rate","axes":[{"name":"buffer_s","values":[…]}]}
//! {"kind":"point","index":0,"coords":[0.05,0.01],"value":1.2e-4,
//!  "iterations":412,"bins":256,"converged":true,"solve_us":5312.75}
//! ```
//!
//! The manifest records the plan identity ([`SweepPlan::hash_hex`]) so
//! resume and merge can refuse files from a different plan; the axes
//! are also embedded verbatim so a checkpoint is self-describing, but
//! the hash is what validation trusts. An explicit-assignment shard
//! ([`ShardSpec::owned`]) additionally records its owned point set as
//! `"owned":[…]` so resume and merge validate ownership against the
//! planned assignment rather than the round-robin rule. Finite `f64`s
//! are written in the shortest exact representation and non-finite
//! coordinates (`T_c = ∞`) as the strings `"inf"` / `"-inf"`, so
//! every value round-trips bit-identically — the property that lets a
//! merged surface match a single-host run to the last bit.
//!
//! Point lines carry the measured wall-clock solve duration
//! (`solve_us`, read from the point's `solver.solve` telemetry span)
//! when the producing runner captured one. The field feeds the
//! cost-weighted re-split planner and **nothing else**: it never
//! enters the plan hash, ownership validation, or the merged surface
//! values, and checkpoints written before the field existed parse
//! exactly as they used to ([`PointResult::solve_us`] stays `None`).
//!
//! A process killed mid-write leaves at most one torn *final* line;
//! [`read_checkpoint`] tolerates exactly that (reporting it via
//! [`Checkpoint::truncated_tail`]) and rejects malformation anywhere
//! else. The one other kill artifact is a file whose *manifest* line
//! never finished flushing — no complete first line at all. That is
//! reported as the typed [`SweepError::TornManifest`] so the runner
//! can discard the (workless) file and start fresh instead of
//! refusing to resume.

use std::path::Path;

use lrd_obs::{parse_json, write_json_f64, write_json_string, Json};

use crate::sweep::{PointResult, ShardSpec, SweepError, SweepPlan};

/// The identity header of a checkpoint file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Registry name of the figure the shard belongs to.
    pub figure: String,
    /// [`SweepPlan::hash_hex`] of the plan the shard was solved under.
    pub plan_hash: String,
    /// Profile tag (`"quick"` / `"full"`).
    pub profile: String,
    /// Which shard of the partition this file holds.
    pub shard: ShardSpec,
    /// Total lattice points in the full plan (not just this shard).
    pub total_points: usize,
}

impl Manifest {
    /// The manifest for `shard` of `plan`.
    pub fn new(plan: &SweepPlan, shard: &ShardSpec) -> Manifest {
        Manifest {
            figure: plan.figure.clone(),
            plan_hash: plan.hash_hex(),
            profile: plan.profile.tag().to_string(),
            shard: shard.clone(),
            total_points: plan.len(),
        }
    }
}

/// A parsed checkpoint file.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// The identity header from the first line.
    pub manifest: Manifest,
    /// Every intact point line, in file order.
    pub points: Vec<PointResult>,
    /// Whether the final line was torn (process killed mid-append).
    /// The torn line is discarded; its point will be re-solved on
    /// resume.
    pub truncated_tail: bool,
}

/// Renders the manifest line for `shard` of `plan` (no trailing
/// newline).
pub fn manifest_line(plan: &SweepPlan, shard: &ShardSpec) -> String {
    let mut out = String::from("{\"kind\":\"manifest\",\"figure\":");
    write_json_string(&mut out, &plan.figure);
    out.push_str(",\"plan_hash\":");
    write_json_string(&mut out, &plan.hash_hex());
    out.push_str(",\"profile\":");
    write_json_string(&mut out, plan.profile.tag());
    out.push_str(&format!(
        ",\"shard\":{},\"shard_count\":{}",
        shard.index, shard.count
    ));
    if let Some(points) = shard.owned_points() {
        out.push_str(",\"owned\":[");
        for (i, &p) in points.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&p.to_string());
        }
        out.push(']');
    }
    out.push_str(&format!(",\"points\":{},\"value_label\":", plan.len()));
    write_json_string(&mut out, &plan.value_label);
    out.push_str(",\"axes\":[");
    for (i, axis) in plan.axes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        write_json_string(&mut out, &axis.name);
        out.push_str(",\"values\":[");
        for (j, &v) in axis.values.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            write_json_f64(&mut out, v);
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

/// Renders one completed point as a checkpoint line (no trailing
/// newline). `coords` are the point's lattice coordinates, recorded
/// for human inspection; resume keys on `index` alone.
pub fn point_line(coords: &[f64], result: &PointResult) -> String {
    let mut out = String::from("{\"kind\":\"point\",\"index\":");
    out.push_str(&result.index.to_string());
    out.push_str(",\"coords\":[");
    for (i, &c) in coords.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_json_f64(&mut out, c);
    }
    out.push_str("],\"value\":");
    write_json_f64(&mut out, result.value);
    out.push_str(&format!(
        ",\"iterations\":{},\"bins\":{},\"converged\":{}",
        result.iterations, result.bins, result.converged
    ));
    if let Some(us) = result.solve_us {
        out.push_str(",\"solve_us\":");
        write_json_f64(&mut out, us);
    }
    out.push('}');
    out
}

fn malformed(path: &Path, line: usize, reason: impl Into<String>) -> SweepError {
    SweepError::Malformed {
        path: path.to_path_buf(),
        line,
        reason: reason.into(),
    }
}

fn parse_manifest(path: &Path, doc: &Json) -> Result<Manifest, SweepError> {
    let field = |name: &'static str| {
        doc.get(name)
            .ok_or_else(|| malformed(path, 1, format!("manifest missing {name:?}")))
    };
    let str_field = |name: &'static str| -> Result<String, SweepError> {
        field(name)?
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| malformed(path, 1, format!("manifest {name:?} must be a string")))
    };
    let int_field = |name: &'static str| -> Result<u64, SweepError> {
        field(name)?
            .as_u64()
            .ok_or_else(|| malformed(path, 1, format!("manifest {name:?} must be an integer")))
    };
    let index = int_field("shard")?;
    let count = int_field("shard_count")?;
    let owned: Option<Vec<usize>> = match doc.get("owned") {
        None => None,
        Some(field) => Some(
            field
                .as_array()
                .and_then(|items| {
                    items
                        .iter()
                        .map(|v| v.as_u64().map(|p| p as usize))
                        .collect()
                })
                .ok_or_else(|| {
                    malformed(path, 1, "manifest \"owned\" must be an array of integers")
                })?,
        ),
    };
    let shard = u32::try_from(index)
        .ok()
        .zip(u32::try_from(count).ok())
        .and_then(|(i, n)| match owned {
            Some(points) => ShardSpec::owned(i, n, points),
            None => ShardSpec::new(i, n),
        })
        .ok_or_else(|| malformed(path, 1, format!("invalid shard {index}/{count}")))?;
    Ok(Manifest {
        figure: str_field("figure")?,
        plan_hash: str_field("plan_hash")?,
        profile: str_field("profile")?,
        shard,
        total_points: int_field("points")? as usize,
    })
}

fn parse_point(doc: &Json) -> Option<PointResult> {
    // `solve_us` is optional: checkpoints written before the cost
    // model existed have no durations, and they must keep resuming
    // and merging unchanged. A *present but non-numeric* field is
    // still a parse failure, not a silent `None`.
    let solve_us = match doc.get("solve_us") {
        None => None,
        Some(v) => Some(v.as_num()?),
    };
    Some(PointResult {
        index: doc.get("index")?.as_u64()? as usize,
        value: doc.get("value")?.as_num()?,
        iterations: doc.get("iterations")?.as_u64()?,
        bins: doc.get("bins")?.as_u64()?,
        converged: doc.get("converged")?.as_bool()?,
        solve_us,
    })
}

/// Reads and structurally validates one checkpoint file.
///
/// The first line must be a manifest; every later line a point. An
/// unparseable **final** line is tolerated as a torn append (the
/// producing process was killed mid-write) and reported through
/// [`Checkpoint::truncated_tail`]; malformation anywhere else is an
/// error. Cross-file validation (plan hash, shard ownership,
/// duplicates) lives in the resume and merge layers.
pub fn read_checkpoint(path: &Path) -> Result<Checkpoint, SweepError> {
    let text = std::fs::read_to_string(path).map_err(|e| SweepError::io(path, &e))?;

    // A process killed before its first checkpoint flush leaves a file
    // with no complete first line: empty, or a prefix of the manifest
    // line with no terminating newline. Either way the file records no
    // solved work, so report it as the recoverable torn-manifest case
    // (the runner discards it and starts fresh) rather than as
    // corruption. A complete-but-unparseable first line, by contrast,
    // cannot come from a torn write and stays a hard error below.
    if !text.contains('\n') {
        return Err(SweepError::TornManifest {
            path: path.to_path_buf(),
        });
    }
    let mut lines = text.lines().enumerate();

    let (_, first) = lines
        .next()
        .ok_or_else(|| malformed(path, 1, "empty checkpoint file"))?;
    let doc = parse_json(first).map_err(|e| malformed(path, 1, e.to_string()))?;
    if doc.get("kind").and_then(Json::as_str) != Some("manifest") {
        return Err(malformed(path, 1, "first line must be a manifest"));
    }
    let manifest = parse_manifest(path, &doc)?;

    let mut points = Vec::new();
    let mut truncated_tail = false;
    let mut rest = lines.peekable();
    while let Some((i, line)) = rest.next() {
        let line_no = i + 1;
        let is_last = rest.peek().is_none();
        let parsed = parse_json(line)
            .ok()
            .filter(|doc| doc.get("kind").and_then(Json::as_str) == Some("point"))
            .and_then(|doc| parse_point(&doc));
        match parsed {
            Some(point) => points.push(point),
            None if is_last => truncated_tail = true,
            None => {
                return Err(malformed(path, line_no, "unreadable point line"));
            }
        }
    }
    Ok(Checkpoint {
        manifest,
        points,
        truncated_tail,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::Profile;
    use crate::sweep::Axis;
    use lrd_fluidq::SolverOptions;

    fn plan() -> SweepPlan {
        SweepPlan::grid_plan(
            "demo",
            Profile::Quick,
            "loss_rate",
            Axis::new("b", vec![0.1, 1.0]),
            Axis::new("tc", vec![0.5, f64::INFINITY]),
            SolverOptions::sweep_profile(),
        )
    }

    fn result(index: usize) -> PointResult {
        PointResult {
            index,
            value: 1.0 / 3.0 * (index as f64 + 1.0),
            iterations: 10 + index as u64,
            bins: 256,
            converged: index.is_multiple_of(2),
            // Mix measured and unmeasured points: both forms must
            // round-trip.
            solve_us: index
                .is_multiple_of(2)
                .then(|| 1e4 / 3.0 * (index as f64 + 1.0)),
        }
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("lrd-ckpt-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("shard.jsonl")
    }

    #[test]
    fn lines_round_trip_bit_exactly() {
        let p = plan();
        let shard = ShardSpec::new(1, 2).unwrap();
        let path = tmp("roundtrip");
        let mut text = manifest_line(&p, &shard);
        text.push('\n');
        for pt in p.points_for(&shard) {
            text.push_str(&point_line(&pt.coords, &result(pt.index)));
            text.push('\n');
        }
        std::fs::write(&path, &text).unwrap();

        let ck = read_checkpoint(&path).unwrap();
        assert!(!ck.truncated_tail);
        assert_eq!(ck.manifest, Manifest::new(&p, &shard));
        assert_eq!(ck.points.len(), 2);
        for pt in &ck.points {
            let expect = result(pt.index);
            assert_eq!(pt.value.to_bits(), expect.value.to_bits());
            assert_eq!(pt, &expect);
        }
    }

    #[test]
    fn solve_us_round_trips_bit_exactly_property() {
        // Property test over randomized durations: any finite
        // non-negative f64 written as `solve_us` parses back to the
        // identical bits, and an absent duration stays `None`.
        use lrd_rng::rngs::SmallRng;
        use lrd_rng::{Rng, SeedableRng};

        let mut rng = SmallRng::seed_from_u64(0x5eed_c057);
        for trial in 0..200 {
            // Spread durations over many magnitudes, including
            // subnormal-ish tiny values and huge ones.
            let exponent: f64 = rng.gen_range(-12.0..12.0);
            let duration = rng.gen::<f64>() * 10f64.powf(exponent);
            let solve_us = (trial % 5 != 0).then_some(duration);
            let point = PointResult {
                index: trial,
                value: rng.gen::<f64>(),
                iterations: rng.gen_range(1u64..1_000_000),
                bins: 1 << rng.gen_range(5u64..14),
                converged: rng.gen_bool(0.5),
                solve_us,
            };
            let line = point_line(&[0.5, 2.0], &point);
            let doc = parse_json(&line).unwrap();
            let parsed = parse_point(&doc).unwrap();
            assert_eq!(
                parsed.solve_us.map(f64::to_bits),
                point.solve_us.map(f64::to_bits),
                "trial {trial}: {line}"
            );
            assert_eq!(parsed, point, "trial {trial}");
        }
    }

    #[test]
    fn owned_set_manifest_round_trips() {
        let p = plan();
        let shard = ShardSpec::owned(1, 3, vec![0, 2, 3]).unwrap();
        let path = tmp("owned");
        let text = format!("{}\n", manifest_line(&p, &shard));
        assert!(text.contains("\"owned\":[0,2,3]"), "{text}");
        std::fs::write(&path, text).unwrap();
        let ck = read_checkpoint(&path).unwrap();
        assert_eq!(ck.manifest.shard, shard);
        assert_eq!(ck.manifest.shard.owned_points(), Some(&[0, 2, 3][..]));

        // A manifest with a malformed owned set is a hard error, not a
        // silent fallback to round-robin ownership.
        let bad = manifest_line(&p, &shard).replace("[0,2,3]", "[0,\"x\",3]");
        std::fs::write(&path, format!("{bad}\n")).unwrap();
        assert!(matches!(
            read_checkpoint(&path),
            Err(SweepError::Malformed { line: 1, .. })
        ));
    }

    #[test]
    fn durationless_point_lines_still_parse() {
        // The exact line format the pre-cost-model runner wrote: no
        // solve_us field anywhere.
        let line = "{\"kind\":\"point\",\"index\":3,\"coords\":[0.1,0.5],\
                    \"value\":1.25e-4,\"iterations\":412,\"bins\":256,\"converged\":true}";
        let parsed = parse_point(&parse_json(line).unwrap()).unwrap();
        assert_eq!(parsed.index, 3);
        assert_eq!(parsed.solve_us, None);
        assert_eq!(parsed.value, 1.25e-4);
        // A present-but-wrong-typed solve_us is rejected.
        let bad = line.replace(",\"converged\":true", ",\"converged\":true,\"solve_us\":\"fast\"");
        assert!(parse_point(&parse_json(&bad).unwrap()).is_none());
    }

    #[test]
    fn tolerates_torn_final_line_only() {
        let p = plan();
        let path = tmp("torn");
        let full = format!(
            "{}\n{}\n{}\n",
            manifest_line(&p, &ShardSpec::FULL),
            point_line(&p.point(0).coords, &result(0)),
            point_line(&p.point(1).coords, &result(1)),
        );
        // Cut the file mid-way through the last line.
        let cut = &full[..full.len() - 9];
        std::fs::write(&path, cut).unwrap();
        let ck = read_checkpoint(&path).unwrap();
        assert!(ck.truncated_tail);
        assert_eq!(ck.points.len(), 1);

        // The same damage on a *middle* line is an error.
        let damaged = format!(
            "{}\n{}\n{}\n",
            manifest_line(&p, &ShardSpec::FULL),
            &point_line(&p.point(0).coords, &result(0))[..20],
            point_line(&p.point(1).coords, &result(1)),
        );
        std::fs::write(&path, damaged).unwrap();
        assert!(matches!(
            read_checkpoint(&path),
            Err(SweepError::Malformed { line: 2, .. })
        ));
    }

    #[test]
    fn torn_manifest_is_typed_not_malformed() {
        // A kill before the first flush: empty file, or a prefix of
        // the manifest line with no newline. Both must surface as the
        // recoverable TornManifest, not as corruption.
        let p = plan();
        let path = tmp("tornmanifest");
        std::fs::write(&path, "").unwrap();
        assert!(matches!(
            read_checkpoint(&path),
            Err(SweepError::TornManifest { .. })
        ));
        let manifest = manifest_line(&p, &ShardSpec::FULL);
        for cut in [1, manifest.len() / 2, manifest.len()] {
            std::fs::write(&path, &manifest[..cut]).unwrap();
            assert!(
                matches!(read_checkpoint(&path), Err(SweepError::TornManifest { .. })),
                "prefix of {cut} bytes"
            );
        }
        // With the terminating newline present the same bytes are a
        // complete, valid manifest.
        std::fs::write(&path, format!("{manifest}\n")).unwrap();
        assert!(read_checkpoint(&path).is_ok());
    }

    #[test]
    fn rejects_missing_or_bad_manifest() {
        let path = tmp("badmanifest");
        std::fs::write(&path, format!("{}\n", point_line(&[0.1], &result(0)))).unwrap();
        assert!(matches!(
            read_checkpoint(&path),
            Err(SweepError::Malformed { line: 1, .. })
        ));
        std::fs::write(
            &path,
            "{\"kind\":\"manifest\",\"figure\":\"x\",\"plan_hash\":\"h\",\"profile\":\"quick\",\
             \"shard\":3,\"shard_count\":2,\"points\":4}\n",
        )
        .unwrap();
        assert!(matches!(
            read_checkpoint(&path),
            Err(SweepError::Malformed { line: 1, .. })
        ));
    }

    #[test]
    fn missing_file_is_io_error() {
        let path = std::env::temp_dir().join("lrd-ckpt-definitely-missing.jsonl");
        assert!(matches!(
            read_checkpoint(&path),
            Err(SweepError::Io { .. })
        ));
    }
}
