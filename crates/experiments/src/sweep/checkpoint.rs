//! Append-only JSONL checkpoint files: one manifest line, then one
//! line per completed point.
//!
//! Format (one JSON object per line, written with the bit-exact
//! writers from [`lrd_obs::json`]):
//!
//! ```text
//! {"kind":"manifest","figure":"fig04_mtv_model","plan_hash":"…",
//!  "profile":"quick","shard":0,"shard_count":2,"points":12,
//!  "value_label":"loss_rate","axes":[{"name":"buffer_s","values":[…]}]}
//! {"kind":"point","index":0,"coords":[0.05,0.01],"value":1.2e-4,
//!  "iterations":412,"bins":256,"converged":true,"solve_us":5312.75}
//! ```
//!
//! The manifest records the plan identity ([`SweepPlan::hash_hex`]) so
//! resume and merge can refuse files from a different plan; the axes
//! are also embedded verbatim so a checkpoint is self-describing, but
//! the hash is what validation trusts. An explicit-assignment shard
//! ([`ShardSpec::owned`]) additionally records its owned point set as
//! `"owned":[…]` so resume and merge validate ownership against the
//! planned assignment rather than the round-robin rule. A
//! work-stealing worker ([`CheckpointOrigin::Steal`]) records
//! `"mode":"steal","worker":"…"` instead of a shard: its point set is
//! whatever batches the coordinator leased to it, so ownership is the
//! whole lattice and completeness is a property of the merged *set* of
//! worker files, not of any one file. Finite `f64`s are written in the
//! shortest exact representation and non-finite coordinates
//! (`T_c = ∞`) as the strings `"inf"` / `"-inf"`, so every value
//! round-trips bit-identically — the property that lets a merged
//! surface match a single-host run to the last bit.
//!
//! Point lines carry the measured wall-clock solve duration
//! (`solve_us`, read from the point's `solver.solve` telemetry span)
//! when the producing runner captured one. The field feeds the
//! cost-weighted re-split planner and **nothing else**: it never
//! enters the plan hash, ownership validation, or the merged surface
//! values, and checkpoints written before the field existed parse
//! exactly as they used to ([`PointResult::solve_us`] stays `None`).
//!
//! A process killed mid-write leaves at most one torn *final* line;
//! [`read_checkpoint`] tolerates exactly that (reporting it via
//! [`Checkpoint::truncated_tail`]) and rejects malformation anywhere
//! else. The one other kill artifact is a file whose *manifest* line
//! never finished flushing — no complete first line at all. That is
//! reported as the typed [`SweepError::TornManifest`] so the runner
//! can discard the (workless) file and start fresh instead of
//! refusing to resume. Fresh manifests are written through
//! [`write_manifest_durable`] — flushed **and fsynced** before any
//! point line follows — so the torn-manifest window is one syscall
//! wide, not open until the OS felt like writing back the page cache.

use std::collections::BTreeMap;
use std::fmt;
use std::fs::File;
use std::io::Write;
use std::path::Path;

use lrd_obs::{parse_json, write_json_f64, write_json_string, Json};

use crate::sweep::{Axis, PointResult, ShardSpec, SweepError, SweepPlan};

/// Who produced a checkpoint file: a statically-assigned shard, or a
/// work-stealing worker leasing batches from a coordinator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointOrigin {
    /// A `--shard i/n` run: the file owns a fixed slice of the lattice
    /// (round-robin or an explicit planner assignment).
    Shard(ShardSpec),
    /// A `--steal <endpoint>` run: the file holds whatever point
    /// batches the named worker leased; any lattice point may appear.
    Steal {
        /// The stable worker identity, generated on the worker's first
        /// run and reused on resume so leases and checkpoints line up.
        worker: String,
    },
}

impl CheckpointOrigin {
    /// The static shard, when this is a shard-mode origin.
    pub fn shard(&self) -> Option<&ShardSpec> {
        match self {
            CheckpointOrigin::Shard(s) => Some(s),
            CheckpointOrigin::Steal { .. } => None,
        }
    }

    /// Whether this origin is a work-stealing worker.
    pub fn is_steal(&self) -> bool {
        matches!(self, CheckpointOrigin::Steal { .. })
    }

    /// Whether a checkpoint with this origin may record `point_index`.
    /// A static shard owns its partition slice; a steal worker may be
    /// leased any point.
    pub fn owns(&self, point_index: usize) -> bool {
        match self {
            CheckpointOrigin::Shard(s) => s.owns(point_index),
            CheckpointOrigin::Steal { .. } => true,
        }
    }

    /// Short mode tag for manifest-mismatch errors.
    pub fn mode(&self) -> &'static str {
        match self {
            CheckpointOrigin::Shard(_) => "shard",
            CheckpointOrigin::Steal { .. } => "steal",
        }
    }
}

impl fmt::Display for CheckpointOrigin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointOrigin::Shard(s) => write!(f, "shard {s}"),
            CheckpointOrigin::Steal { worker } => write!(f, "steal worker {worker}"),
        }
    }
}

/// The identity header of a checkpoint file.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// Registry name of the figure the file belongs to.
    pub figure: String,
    /// [`SweepPlan::hash_hex`] of the plan the file was solved under.
    pub plan_hash: String,
    /// Profile tag (`"quick"` / `"full"`).
    pub profile: String,
    /// Who produced the file: a static shard or a steal worker.
    pub origin: CheckpointOrigin,
    /// Total lattice points in the full plan (not just this file).
    pub total_points: usize,
    /// The plan axes, embedded verbatim so the checkpoint is
    /// self-describing: merge errors decode point indices back to
    /// lattice coordinates from here.
    pub axes: Vec<Axis>,
}

impl Manifest {
    /// The manifest for `shard` of `plan`.
    pub fn new(plan: &SweepPlan, shard: &ShardSpec) -> Manifest {
        Manifest::for_origin(plan, &CheckpointOrigin::Shard(shard.clone()))
    }

    /// The manifest for any origin of `plan`.
    pub fn for_origin(plan: &SweepPlan, origin: &CheckpointOrigin) -> Manifest {
        Manifest {
            figure: plan.figure.clone(),
            plan_hash: plan.hash_hex(),
            profile: plan.profile.tag().to_string(),
            origin: origin.clone(),
            total_points: plan.len(),
            axes: plan.axes.clone(),
        }
    }

    /// The static shard this manifest declares, when it is shard-mode.
    pub fn shard(&self) -> Option<&ShardSpec> {
        self.origin.shard()
    }

    /// Decodes the lattice coordinates of stable point `index` from
    /// the embedded axes (row-major, matching [`SweepPlan::point`]).
    /// Empty when the manifest carries no axes (a hand-built file).
    pub fn point_coords(&self, index: usize) -> Vec<f64> {
        let mut coords = vec![0.0; self.axes.len()];
        let mut rest = index;
        for (slot, axis) in coords.iter_mut().zip(&self.axes).rev() {
            if axis.values.is_empty() {
                return Vec::new();
            }
            *slot = axis.values[rest % axis.len()];
            rest /= axis.len();
        }
        coords
    }
}

/// A parsed checkpoint file.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// The identity header from the first line.
    pub manifest: Manifest,
    /// Every intact point line, in file order.
    pub points: Vec<PointResult>,
    /// Whether the final line was torn (process killed mid-append).
    /// The torn line is discarded; its point will be re-solved on
    /// resume.
    pub truncated_tail: bool,
}

/// Renders the manifest line for `shard` of `plan` (no trailing
/// newline).
pub fn manifest_line(plan: &SweepPlan, shard: &ShardSpec) -> String {
    manifest_line_for(plan, &CheckpointOrigin::Shard(shard.clone()))
}

/// Renders the manifest line for any origin of `plan` (no trailing
/// newline). Shard-mode lines are byte-identical to what every earlier
/// runner wrote; steal-mode lines replace the `shard`/`shard_count`
/// fields with `"mode":"steal","worker":"…"`.
pub fn manifest_line_for(plan: &SweepPlan, origin: &CheckpointOrigin) -> String {
    let mut out = String::from("{\"kind\":\"manifest\",\"figure\":");
    write_json_string(&mut out, &plan.figure);
    out.push_str(",\"plan_hash\":");
    write_json_string(&mut out, &plan.hash_hex());
    out.push_str(",\"profile\":");
    write_json_string(&mut out, plan.profile.tag());
    match origin {
        CheckpointOrigin::Shard(shard) => {
            out.push_str(&format!(
                ",\"shard\":{},\"shard_count\":{}",
                shard.index, shard.count
            ));
            if let Some(points) = shard.owned_points() {
                out.push_str(",\"owned\":[");
                for (i, &p) in points.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&p.to_string());
                }
                out.push(']');
            }
        }
        CheckpointOrigin::Steal { worker } => {
            out.push_str(",\"mode\":\"steal\",\"worker\":");
            write_json_string(&mut out, worker);
        }
    }
    out.push_str(&format!(",\"points\":{},\"value_label\":", plan.len()));
    write_json_string(&mut out, &plan.value_label);
    out.push_str(",\"axes\":[");
    for (i, axis) in plan.axes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        write_json_string(&mut out, &axis.name);
        out.push_str(",\"values\":[");
        for (j, &v) in axis.values.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            write_json_f64(&mut out, v);
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

/// Renders one completed point as a checkpoint line (no trailing
/// newline). `coords` are the point's lattice coordinates, recorded
/// for human inspection; resume keys on `index` alone.
pub fn point_line(coords: &[f64], result: &PointResult) -> String {
    let mut out = String::from("{\"kind\":\"point\",\"index\":");
    out.push_str(&result.index.to_string());
    out.push_str(",\"coords\":[");
    for (i, &c) in coords.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_json_f64(&mut out, c);
    }
    out.push_str("],\"value\":");
    write_json_f64(&mut out, result.value);
    out.push_str(&format!(
        ",\"iterations\":{},\"bins\":{},\"converged\":{}",
        result.iterations, result.bins, result.converged
    ));
    if let Some(us) = result.solve_us {
        out.push_str(",\"solve_us\":");
        write_json_f64(&mut out, us);
    }
    out.push('}');
    out
}

fn malformed(path: &Path, line: usize, reason: impl Into<String>) -> SweepError {
    SweepError::Malformed {
        path: path.to_path_buf(),
        line,
        reason: reason.into(),
    }
}

fn parse_axes(path: &Path, doc: &Json) -> Result<Vec<Axis>, SweepError> {
    // Axes are informational (the plan hash is what validation
    // trusts), so a manifest without them still parses — but a
    // *present* axes field must be well-formed.
    let Some(field) = doc.get("axes") else {
        return Ok(Vec::new());
    };
    let bad = || malformed(path, 1, "manifest \"axes\" must be [{name, values}, …]");
    let items = field.as_array().ok_or_else(bad)?;
    let mut axes = Vec::with_capacity(items.len());
    for item in items {
        let name = item.get("name").and_then(Json::as_str).ok_or_else(bad)?;
        let values: Vec<f64> = item
            .get("values")
            .and_then(Json::as_array)
            .and_then(|vs| vs.iter().map(Json::as_num).collect())
            .ok_or_else(bad)?;
        if values.is_empty() {
            return Err(bad());
        }
        axes.push(Axis::new(name, values));
    }
    Ok(axes)
}

fn parse_manifest(path: &Path, doc: &Json) -> Result<Manifest, SweepError> {
    let field = |name: &'static str| {
        doc.get(name)
            .ok_or_else(|| malformed(path, 1, format!("manifest missing {name:?}")))
    };
    let str_field = |name: &'static str| -> Result<String, SweepError> {
        field(name)?
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| malformed(path, 1, format!("manifest {name:?} must be a string")))
    };
    let int_field = |name: &'static str| -> Result<u64, SweepError> {
        field(name)?
            .as_u64()
            .ok_or_else(|| malformed(path, 1, format!("manifest {name:?} must be an integer")))
    };
    let origin = match doc.get("mode").and_then(Json::as_str) {
        Some("steal") => CheckpointOrigin::Steal {
            worker: str_field("worker")?,
        },
        Some(other) => {
            return Err(malformed(path, 1, format!("unknown manifest mode {other:?}")));
        }
        // No mode field: the original static-shard format.
        None => {
            let index = int_field("shard")?;
            let count = int_field("shard_count")?;
            let owned: Option<Vec<usize>> = match doc.get("owned") {
                None => None,
                Some(field) => Some(
                    field
                        .as_array()
                        .and_then(|items| {
                            items
                                .iter()
                                .map(|v| v.as_u64().map(|p| p as usize))
                                .collect()
                        })
                        .ok_or_else(|| {
                            malformed(path, 1, "manifest \"owned\" must be an array of integers")
                        })?,
                ),
            };
            let shard = u32::try_from(index)
                .ok()
                .zip(u32::try_from(count).ok())
                .and_then(|(i, n)| match owned {
                    Some(points) => ShardSpec::owned(i, n, points),
                    None => ShardSpec::new(i, n),
                })
                .ok_or_else(|| malformed(path, 1, format!("invalid shard {index}/{count}")))?;
            CheckpointOrigin::Shard(shard)
        }
    };
    Ok(Manifest {
        figure: str_field("figure")?,
        plan_hash: str_field("plan_hash")?,
        profile: str_field("profile")?,
        origin,
        total_points: int_field("points")? as usize,
        axes: parse_axes(path, doc)?,
    })
}

fn parse_point(doc: &Json) -> Option<PointResult> {
    // `solve_us` is optional: checkpoints written before the cost
    // model existed have no durations, and they must keep resuming
    // and merging unchanged. A *present but non-numeric* field is
    // still a parse failure, not a silent `None`.
    let solve_us = match doc.get("solve_us") {
        None => None,
        Some(v) => Some(v.as_num()?),
    };
    Some(PointResult {
        index: doc.get("index")?.as_u64()? as usize,
        value: doc.get("value")?.as_num()?,
        iterations: doc.get("iterations")?.as_u64()?,
        bins: doc.get("bins")?.as_u64()?,
        converged: doc.get("converged")?.as_bool()?,
        solve_us,
    })
}

/// Reads and structurally validates one checkpoint file.
///
/// The first line must be a manifest; every later line a point. An
/// unparseable **final** line is tolerated as a torn append (the
/// producing process was killed mid-write) and reported through
/// [`Checkpoint::truncated_tail`]; malformation anywhere else is an
/// error. Cross-file validation (plan hash, shard ownership,
/// duplicates) lives in the resume and merge layers.
pub fn read_checkpoint(path: &Path) -> Result<Checkpoint, SweepError> {
    let text = std::fs::read_to_string(path).map_err(|e| SweepError::io(path, &e))?;

    // A process killed before its first checkpoint flush leaves a file
    // with no complete first line: empty, or a prefix of the manifest
    // line with no terminating newline. Either way the file records no
    // solved work, so report it as the recoverable torn-manifest case
    // (the runner discards it and starts fresh) rather than as
    // corruption. A complete-but-unparseable first line, by contrast,
    // cannot come from a torn write and stays a hard error below.
    if !text.contains('\n') {
        return Err(SweepError::TornManifest {
            path: path.to_path_buf(),
        });
    }
    let mut lines = text.lines().enumerate();

    let (_, first) = lines
        .next()
        .ok_or_else(|| malformed(path, 1, "empty checkpoint file"))?;
    let doc = parse_json(first).map_err(|e| malformed(path, 1, e.to_string()))?;
    if doc.get("kind").and_then(Json::as_str) != Some("manifest") {
        return Err(malformed(path, 1, "first line must be a manifest"));
    }
    let manifest = parse_manifest(path, &doc)?;

    let mut points = Vec::new();
    let mut truncated_tail = false;
    let mut rest = lines.peekable();
    while let Some((i, line)) = rest.next() {
        let line_no = i + 1;
        let is_last = rest.peek().is_none();
        let parsed = parse_json(line)
            .ok()
            .filter(|doc| doc.get("kind").and_then(Json::as_str) == Some("point"))
            .and_then(|doc| parse_point(&doc));
        match parsed {
            Some(point) => points.push(point),
            None if is_last => truncated_tail = true,
            None => {
                return Err(malformed(path, line_no, "unreadable point line"));
            }
        }
    }
    Ok(Checkpoint {
        manifest,
        points,
        truncated_tail,
    })
}

/// Checks a previously-written checkpoint against the manifest this
/// process expects (plan identity and origin) and against per-file
/// invariants: every point in range and owned by the origin, no point
/// recorded twice.
pub fn validate_checkpoint(
    path: &Path,
    ck: &Checkpoint,
    expected: &Manifest,
) -> Result<(), SweepError> {
    let mismatch = |field: &'static str, exp: String, found: String| SweepError::ManifestMismatch {
        path: path.to_path_buf(),
        field,
        expected: exp,
        found,
    };
    let m = &ck.manifest;
    if m.figure != expected.figure {
        return Err(mismatch("figure", expected.figure.clone(), m.figure.clone()));
    }
    if m.plan_hash != expected.plan_hash {
        return Err(mismatch(
            "plan_hash",
            expected.plan_hash.clone(),
            m.plan_hash.clone(),
        ));
    }
    if m.profile != expected.profile {
        return Err(mismatch(
            "profile",
            expected.profile.clone(),
            m.profile.clone(),
        ));
    }
    if m.origin.mode() != expected.origin.mode() {
        return Err(mismatch(
            "mode",
            expected.origin.mode().to_string(),
            m.origin.mode().to_string(),
        ));
    }
    match (&m.origin, &expected.origin) {
        (CheckpointOrigin::Shard(found), CheckpointOrigin::Shard(want)) if found != want => {
            return Err(mismatch("shard", want.to_string(), found.to_string()));
        }
        (
            CheckpointOrigin::Steal { worker: found },
            CheckpointOrigin::Steal { worker: want },
        ) if found != want => {
            return Err(mismatch("worker", want.clone(), found.clone()));
        }
        _ => {}
    }
    if m.total_points != expected.total_points {
        return Err(mismatch(
            "points",
            expected.total_points.to_string(),
            m.total_points.to_string(),
        ));
    }
    let mut seen = std::collections::BTreeSet::new();
    for point in &ck.points {
        if point.index >= expected.total_points || !expected.origin.owns(point.index) {
            return Err(SweepError::ForeignPoint {
                path: path.to_path_buf(),
                index: point.index,
            });
        }
        if !seen.insert(point.index) {
            return Err(SweepError::DuplicatePoint {
                path: path.to_path_buf(),
                index: point.index,
            });
        }
    }
    Ok(())
}

/// Writes `text` (a complete checkpoint prefix — manifest line plus
/// any point lines, each newline-terminated) to `path` **durably**:
/// the file is flushed and fsynced, and the parent directory synced
/// best-effort, before this returns. Used for fresh manifests and
/// torn-tail rewrites so a kill immediately after never re-opens the
/// torn-manifest window — point appends only ever follow a manifest
/// the disk has acknowledged.
pub fn write_manifest_durable(path: &Path, text: &str) -> Result<(), SweepError> {
    let io = |e: &std::io::Error| SweepError::io(path, e);
    let mut file = File::create(path).map_err(|e| io(&e))?;
    file.write_all(text.as_bytes()).map_err(|e| io(&e))?;
    file.sync_all().map_err(|e| io(&e))?;
    // Directory sync makes the *name* durable too. Best-effort: some
    // filesystems refuse to fsync a directory handle, and the file
    // contents above are already safe.
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Opens (or creates, or resumes) the checkpoint at `path` for the
/// given plan and origin, returning the already-solved points and an
/// append handle positioned after the last intact line.
///
/// Handles the full resume protocol shared by the static runner and
/// the steal worker: a fresh file gets a durable manifest
/// ([`write_manifest_durable`]); an existing file is validated against
/// the expected manifest ([`validate_checkpoint`]); a torn final line
/// is dropped by rewriting the file durably; a torn *manifest* is
/// discarded with a warning and the file starts fresh.
pub(crate) fn open_checkpoint(
    path: &Path,
    plan: &SweepPlan,
    origin: &CheckpointOrigin,
) -> Result<(BTreeMap<usize, PointResult>, File), SweepError> {
    let expected = Manifest::for_origin(plan, origin);
    let mut done: BTreeMap<usize, PointResult> = BTreeMap::new();
    let mut fresh = !path.exists();
    if !fresh {
        match read_checkpoint(path) {
            Ok(ck) => {
                validate_checkpoint(path, &ck, &expected)?;
                if ck.truncated_tail {
                    // Rewrite the file without the torn line so appends
                    // start on a clean boundary.
                    let mut text = manifest_line_for(plan, origin);
                    text.push('\n');
                    for point in &ck.points {
                        text.push_str(&point_line(&plan.point(point.index).coords, point));
                        text.push('\n');
                    }
                    write_manifest_durable(path, &text)?;
                }
                for point in ck.points {
                    done.insert(point.index, point);
                }
            }
            Err(SweepError::TornManifest { .. }) => {
                // Killed before the first flush: the file records no
                // solved work, so losing it loses nothing. Warn and
                // start from scratch.
                eprintln!(
                    "warning: {}: checkpoint manifest line is torn (previous run was \
                     killed before its first flush); discarding and starting fresh",
                    path.display()
                );
                lrd_obs::event!(
                    "sweep.torn_manifest_discarded",
                    path = path.display().to_string(),
                );
                std::fs::remove_file(path).map_err(|e| SweepError::io(path, &e))?;
                fresh = true;
            }
            Err(e) => return Err(e),
        }
    }
    if fresh {
        let mut text = manifest_line_for(plan, origin);
        text.push('\n');
        write_manifest_durable(path, &text)?;
    }
    let file = std::fs::OpenOptions::new()
        .append(true)
        .open(path)
        .map_err(|e| SweepError::io(path, &e))?;
    Ok((done, file))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::Profile;
    use crate::sweep::Axis;
    use lrd_fluidq::SolverOptions;

    fn plan() -> SweepPlan {
        SweepPlan::grid_plan(
            "demo",
            Profile::Quick,
            "loss_rate",
            Axis::new("b", vec![0.1, 1.0]),
            Axis::new("tc", vec![0.5, f64::INFINITY]),
            SolverOptions::sweep_profile(),
        )
    }

    fn result(index: usize) -> PointResult {
        PointResult {
            index,
            value: 1.0 / 3.0 * (index as f64 + 1.0),
            iterations: 10 + index as u64,
            bins: 256,
            converged: index.is_multiple_of(2),
            // Mix measured and unmeasured points: both forms must
            // round-trip.
            solve_us: index
                .is_multiple_of(2)
                .then(|| 1e4 / 3.0 * (index as f64 + 1.0)),
        }
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("lrd-ckpt-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("shard.jsonl")
    }

    #[test]
    fn lines_round_trip_bit_exactly() {
        let p = plan();
        let shard = ShardSpec::new(1, 2).unwrap();
        let path = tmp("roundtrip");
        let mut text = manifest_line(&p, &shard);
        text.push('\n');
        for pt in p.points_for(&shard) {
            text.push_str(&point_line(&pt.coords, &result(pt.index)));
            text.push('\n');
        }
        std::fs::write(&path, &text).unwrap();

        let ck = read_checkpoint(&path).unwrap();
        assert!(!ck.truncated_tail);
        assert_eq!(ck.manifest, Manifest::new(&p, &shard));
        assert_eq!(ck.points.len(), 2);
        for pt in &ck.points {
            let expect = result(pt.index);
            assert_eq!(pt.value.to_bits(), expect.value.to_bits());
            assert_eq!(pt, &expect);
        }
    }

    #[test]
    fn steal_manifest_round_trips() {
        let p = plan();
        let origin = CheckpointOrigin::Steal {
            worker: "w-deadbeef".to_string(),
        };
        let path = tmp("steal");
        let line = manifest_line_for(&p, &origin);
        assert!(line.contains("\"mode\":\"steal\""), "{line}");
        assert!(line.contains("\"worker\":\"w-deadbeef\""), "{line}");
        assert!(!line.contains("\"shard\""), "{line}");
        std::fs::write(&path, format!("{line}\n")).unwrap();
        let ck = read_checkpoint(&path).unwrap();
        assert_eq!(ck.manifest, Manifest::for_origin(&p, &origin));
        assert!(ck.manifest.origin.is_steal());
        assert!(ck.manifest.origin.owns(0) && ck.manifest.origin.owns(3));
        assert_eq!(ck.manifest.shard(), None);

        // An unknown mode tag is a hard error, not a silent fallback.
        let bad = line.replace("\"mode\":\"steal\"", "\"mode\":\"quantum\"");
        std::fs::write(&path, format!("{bad}\n")).unwrap();
        assert!(matches!(
            read_checkpoint(&path),
            Err(SweepError::Malformed { line: 1, .. })
        ));
    }

    #[test]
    fn manifest_axes_decode_point_coords() {
        let p = plan();
        let path = tmp("axes");
        std::fs::write(&path, format!("{}\n", manifest_line(&p, &ShardSpec::FULL))).unwrap();
        let m = read_checkpoint(&path).unwrap().manifest;
        assert_eq!(m.axes.len(), 2);
        for index in 0..p.len() {
            let want = p.point(index).coords;
            let got = m.point_coords(index);
            assert_eq!(want.len(), got.len());
            for (a, b) in want.iter().zip(&got) {
                assert_eq!(a.to_bits(), b.to_bits(), "point {index}");
            }
        }
        // Axes are informational: a manifest without them parses, and
        // coord decoding degrades to empty.
        let stripped = manifest_line(&p, &ShardSpec::FULL)
            .replace(",\"axes\":[{\"name\":\"b\",\"values\":[0.1,1.0]},{\"name\":\"tc\",\"values\":[0.5,\"inf\"]}]", "");
        assert!(!stripped.contains("axes"), "{stripped}");
        std::fs::write(&path, format!("{stripped}\n")).unwrap();
        let m = read_checkpoint(&path).unwrap().manifest;
        assert!(m.axes.is_empty());
        assert!(m.point_coords(1).is_empty());
    }

    #[test]
    fn solve_us_round_trips_bit_exactly_property() {
        // Property test over randomized durations: any finite
        // non-negative f64 written as `solve_us` parses back to the
        // identical bits, and an absent duration stays `None`.
        use lrd_rng::rngs::SmallRng;
        use lrd_rng::{Rng, SeedableRng};

        let mut rng = SmallRng::seed_from_u64(0x5eed_c057);
        for trial in 0..200 {
            // Spread durations over many magnitudes, including
            // subnormal-ish tiny values and huge ones.
            let exponent: f64 = rng.gen_range(-12.0..12.0);
            let duration = rng.gen::<f64>() * 10f64.powf(exponent);
            let solve_us = (trial % 5 != 0).then_some(duration);
            let point = PointResult {
                index: trial,
                value: rng.gen::<f64>(),
                iterations: rng.gen_range(1u64..1_000_000),
                bins: 1 << rng.gen_range(5u64..14),
                converged: rng.gen_bool(0.5),
                solve_us,
            };
            let line = point_line(&[0.5, 2.0], &point);
            let doc = parse_json(&line).unwrap();
            let parsed = parse_point(&doc).unwrap();
            assert_eq!(
                parsed.solve_us.map(f64::to_bits),
                point.solve_us.map(f64::to_bits),
                "trial {trial}: {line}"
            );
            assert_eq!(parsed, point, "trial {trial}");
        }
    }

    #[test]
    fn owned_set_manifest_round_trips() {
        let p = plan();
        let shard = ShardSpec::owned(1, 3, vec![0, 2, 3]).unwrap();
        let path = tmp("owned");
        let text = format!("{}\n", manifest_line(&p, &shard));
        assert!(text.contains("\"owned\":[0,2,3]"), "{text}");
        std::fs::write(&path, text).unwrap();
        let ck = read_checkpoint(&path).unwrap();
        assert_eq!(ck.manifest.shard(), Some(&shard));
        assert_eq!(
            ck.manifest.shard().unwrap().owned_points(),
            Some(&[0, 2, 3][..])
        );

        // A manifest with a malformed owned set is a hard error, not a
        // silent fallback to round-robin ownership.
        let bad = manifest_line(&p, &shard).replace("[0,2,3]", "[0,\"x\",3]");
        std::fs::write(&path, format!("{bad}\n")).unwrap();
        assert!(matches!(
            read_checkpoint(&path),
            Err(SweepError::Malformed { line: 1, .. })
        ));
    }

    #[test]
    fn durationless_point_lines_still_parse() {
        // The exact line format the pre-cost-model runner wrote: no
        // solve_us field anywhere.
        let line = "{\"kind\":\"point\",\"index\":3,\"coords\":[0.1,0.5],\
                    \"value\":1.25e-4,\"iterations\":412,\"bins\":256,\"converged\":true}";
        let parsed = parse_point(&parse_json(line).unwrap()).unwrap();
        assert_eq!(parsed.index, 3);
        assert_eq!(parsed.solve_us, None);
        assert_eq!(parsed.value, 1.25e-4);
        // A present-but-wrong-typed solve_us is rejected.
        let bad = line.replace(",\"converged\":true", ",\"converged\":true,\"solve_us\":\"fast\"");
        assert!(parse_point(&parse_json(&bad).unwrap()).is_none());
    }

    #[test]
    fn tolerates_torn_final_line_only() {
        let p = plan();
        let path = tmp("torn");
        let full = format!(
            "{}\n{}\n{}\n",
            manifest_line(&p, &ShardSpec::FULL),
            point_line(&p.point(0).coords, &result(0)),
            point_line(&p.point(1).coords, &result(1)),
        );
        // Cut the file mid-way through the last line.
        let cut = &full[..full.len() - 9];
        std::fs::write(&path, cut).unwrap();
        let ck = read_checkpoint(&path).unwrap();
        assert!(ck.truncated_tail);
        assert_eq!(ck.points.len(), 1);

        // The same damage on a *middle* line is an error.
        let damaged = format!(
            "{}\n{}\n{}\n",
            manifest_line(&p, &ShardSpec::FULL),
            &point_line(&p.point(0).coords, &result(0))[..20],
            point_line(&p.point(1).coords, &result(1)),
        );
        std::fs::write(&path, damaged).unwrap();
        assert!(matches!(
            read_checkpoint(&path),
            Err(SweepError::Malformed { line: 2, .. })
        ));
    }

    #[test]
    fn torn_manifest_is_typed_not_malformed() {
        // A kill before the first flush: empty file, or a prefix of
        // the manifest line with no newline. Both must surface as the
        // recoverable TornManifest, not as corruption.
        let p = plan();
        let path = tmp("tornmanifest");
        std::fs::write(&path, "").unwrap();
        assert!(matches!(
            read_checkpoint(&path),
            Err(SweepError::TornManifest { .. })
        ));
        let manifest = manifest_line(&p, &ShardSpec::FULL);
        for cut in [1, manifest.len() / 2, manifest.len()] {
            std::fs::write(&path, &manifest[..cut]).unwrap();
            assert!(
                matches!(read_checkpoint(&path), Err(SweepError::TornManifest { .. })),
                "prefix of {cut} bytes"
            );
        }
        // With the terminating newline present the same bytes are a
        // complete, valid manifest.
        std::fs::write(&path, format!("{manifest}\n")).unwrap();
        assert!(read_checkpoint(&path).is_ok());
    }

    #[test]
    fn validate_rejects_mode_and_worker_mismatches() {
        let p = plan();
        let path = tmp("validate-mode");
        let steal = |worker: &str| CheckpointOrigin::Steal {
            worker: worker.to_string(),
        };

        // A shard file resumed in steal mode (and vice versa) is a
        // typed "mode" mismatch.
        std::fs::write(&path, format!("{}\n", manifest_line(&p, &ShardSpec::FULL))).unwrap();
        let ck = read_checkpoint(&path).unwrap();
        let err =
            validate_checkpoint(&path, &ck, &Manifest::for_origin(&p, &steal("w1"))).unwrap_err();
        assert!(matches!(
            err,
            SweepError::ManifestMismatch { field: "mode", .. }
        ));

        // A steal file resumed under a different worker identity.
        std::fs::write(
            &path,
            format!("{}\n", manifest_line_for(&p, &steal("w1"))),
        )
        .unwrap();
        let ck = read_checkpoint(&path).unwrap();
        let err =
            validate_checkpoint(&path, &ck, &Manifest::for_origin(&p, &steal("w2"))).unwrap_err();
        assert!(matches!(
            err,
            SweepError::ManifestMismatch { field: "worker", .. }
        ));
        // The same worker validates, and any lattice point is owned.
        validate_checkpoint(&path, &ck, &Manifest::for_origin(&p, &steal("w1"))).unwrap();
    }

    #[test]
    fn durable_manifest_write_is_complete_and_reopenable() {
        let p = plan();
        let path = tmp("durable");
        let text = format!("{}\n", manifest_line(&p, &ShardSpec::FULL));
        write_manifest_durable(&path, &text).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), text);
        assert!(read_checkpoint(&path).is_ok());
        // Overwrite semantics: a second durable write replaces.
        let longer = format!("{}{}\n", text, point_line(&p.point(0).coords, &result(0)));
        write_manifest_durable(&path, &longer).unwrap();
        assert_eq!(read_checkpoint(&path).unwrap().points.len(), 1);
    }

    #[test]
    fn rejects_missing_or_bad_manifest() {
        let path = tmp("badmanifest");
        std::fs::write(&path, format!("{}\n", point_line(&[0.1], &result(0)))).unwrap();
        assert!(matches!(
            read_checkpoint(&path),
            Err(SweepError::Malformed { line: 1, .. })
        ));
        std::fs::write(
            &path,
            "{\"kind\":\"manifest\",\"figure\":\"x\",\"plan_hash\":\"h\",\"profile\":\"quick\",\
             \"shard\":3,\"shard_count\":2,\"points\":4}\n",
        )
        .unwrap();
        assert!(matches!(
            read_checkpoint(&path),
            Err(SweepError::Malformed { line: 1, .. })
        ));
    }

    #[test]
    fn missing_file_is_io_error() {
        let path = std::env::temp_dir().join("lrd-ckpt-definitely-missing.jsonl");
        assert!(matches!(
            read_checkpoint(&path),
            Err(SweepError::Io { .. })
        ));
    }
}
