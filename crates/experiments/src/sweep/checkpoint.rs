//! Append-only JSONL checkpoint files: one manifest line, then one
//! line per completed point.
//!
//! Format (one JSON object per line, written with the bit-exact
//! writers from [`lrd_obs::json`]):
//!
//! ```text
//! {"kind":"manifest","figure":"fig04_mtv_model","plan_hash":"…",
//!  "profile":"quick","shard":0,"shard_count":2,"points":12,
//!  "value_label":"loss_rate","axes":[{"name":"buffer_s","values":[…]}]}
//! {"kind":"point","index":0,"coords":[0.05,0.01],"value":1.2e-4,
//!  "iterations":412,"bins":256,"converged":true}
//! ```
//!
//! The manifest records the plan identity ([`SweepPlan::hash_hex`]) so
//! resume and merge can refuse files from a different plan; the axes
//! are also embedded verbatim so a checkpoint is self-describing, but
//! the hash is what validation trusts. Finite `f64`s are written in
//! the shortest exact representation and non-finite coordinates
//! (`T_c = ∞`) as the strings `"inf"` / `"-inf"`, so every value
//! round-trips bit-identically — the property that lets a merged
//! surface match a single-host run to the last bit.
//!
//! A process killed mid-write leaves at most one torn *final* line;
//! [`read_checkpoint`] tolerates exactly that (reporting it via
//! [`Checkpoint::truncated_tail`]) and rejects malformation anywhere
//! else.

use std::path::Path;

use lrd_obs::{parse_json, write_json_f64, write_json_string, Json};

use crate::sweep::{PointResult, ShardSpec, SweepError, SweepPlan};

/// The identity header of a checkpoint file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Registry name of the figure the shard belongs to.
    pub figure: String,
    /// [`SweepPlan::hash_hex`] of the plan the shard was solved under.
    pub plan_hash: String,
    /// Profile tag (`"quick"` / `"full"`).
    pub profile: String,
    /// Which shard of the partition this file holds.
    pub shard: ShardSpec,
    /// Total lattice points in the full plan (not just this shard).
    pub total_points: usize,
}

impl Manifest {
    /// The manifest for `shard` of `plan`.
    pub fn new(plan: &SweepPlan, shard: ShardSpec) -> Manifest {
        Manifest {
            figure: plan.figure.clone(),
            plan_hash: plan.hash_hex(),
            profile: plan.profile.tag().to_string(),
            shard,
            total_points: plan.len(),
        }
    }
}

/// A parsed checkpoint file.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// The identity header from the first line.
    pub manifest: Manifest,
    /// Every intact point line, in file order.
    pub points: Vec<PointResult>,
    /// Whether the final line was torn (process killed mid-append).
    /// The torn line is discarded; its point will be re-solved on
    /// resume.
    pub truncated_tail: bool,
}

/// Renders the manifest line for `shard` of `plan` (no trailing
/// newline).
pub fn manifest_line(plan: &SweepPlan, shard: ShardSpec) -> String {
    let mut out = String::from("{\"kind\":\"manifest\",\"figure\":");
    write_json_string(&mut out, &plan.figure);
    out.push_str(",\"plan_hash\":");
    write_json_string(&mut out, &plan.hash_hex());
    out.push_str(",\"profile\":");
    write_json_string(&mut out, plan.profile.tag());
    out.push_str(&format!(
        ",\"shard\":{},\"shard_count\":{},\"points\":{},\"value_label\":",
        shard.index,
        shard.count,
        plan.len()
    ));
    write_json_string(&mut out, &plan.value_label);
    out.push_str(",\"axes\":[");
    for (i, axis) in plan.axes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        write_json_string(&mut out, &axis.name);
        out.push_str(",\"values\":[");
        for (j, &v) in axis.values.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            write_json_f64(&mut out, v);
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

/// Renders one completed point as a checkpoint line (no trailing
/// newline). `coords` are the point's lattice coordinates, recorded
/// for human inspection; resume keys on `index` alone.
pub fn point_line(coords: &[f64], result: &PointResult) -> String {
    let mut out = String::from("{\"kind\":\"point\",\"index\":");
    out.push_str(&result.index.to_string());
    out.push_str(",\"coords\":[");
    for (i, &c) in coords.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_json_f64(&mut out, c);
    }
    out.push_str("],\"value\":");
    write_json_f64(&mut out, result.value);
    out.push_str(&format!(
        ",\"iterations\":{},\"bins\":{},\"converged\":{}}}",
        result.iterations, result.bins, result.converged
    ));
    out
}

fn malformed(path: &Path, line: usize, reason: impl Into<String>) -> SweepError {
    SweepError::Malformed {
        path: path.to_path_buf(),
        line,
        reason: reason.into(),
    }
}

fn parse_manifest(path: &Path, doc: &Json) -> Result<Manifest, SweepError> {
    let field = |name: &'static str| {
        doc.get(name)
            .ok_or_else(|| malformed(path, 1, format!("manifest missing {name:?}")))
    };
    let str_field = |name: &'static str| -> Result<String, SweepError> {
        field(name)?
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| malformed(path, 1, format!("manifest {name:?} must be a string")))
    };
    let int_field = |name: &'static str| -> Result<u64, SweepError> {
        field(name)?
            .as_u64()
            .ok_or_else(|| malformed(path, 1, format!("manifest {name:?} must be an integer")))
    };
    let index = int_field("shard")?;
    let count = int_field("shard_count")?;
    let shard = u32::try_from(index)
        .ok()
        .zip(u32::try_from(count).ok())
        .and_then(|(i, n)| ShardSpec::new(i, n))
        .ok_or_else(|| malformed(path, 1, format!("invalid shard {index}/{count}")))?;
    Ok(Manifest {
        figure: str_field("figure")?,
        plan_hash: str_field("plan_hash")?,
        profile: str_field("profile")?,
        shard,
        total_points: int_field("points")? as usize,
    })
}

fn parse_point(doc: &Json) -> Option<PointResult> {
    Some(PointResult {
        index: doc.get("index")?.as_u64()? as usize,
        value: doc.get("value")?.as_num()?,
        iterations: doc.get("iterations")?.as_u64()?,
        bins: doc.get("bins")?.as_u64()?,
        converged: doc.get("converged")?.as_bool()?,
    })
}

/// Reads and structurally validates one checkpoint file.
///
/// The first line must be a manifest; every later line a point. An
/// unparseable **final** line is tolerated as a torn append (the
/// producing process was killed mid-write) and reported through
/// [`Checkpoint::truncated_tail`]; malformation anywhere else is an
/// error. Cross-file validation (plan hash, shard ownership,
/// duplicates) lives in the resume and merge layers.
pub fn read_checkpoint(path: &Path) -> Result<Checkpoint, SweepError> {
    let text = std::fs::read_to_string(path).map_err(|e| SweepError::io(path, &e))?;
    let mut lines = text.lines().enumerate();

    let (_, first) = lines
        .next()
        .ok_or_else(|| malformed(path, 1, "empty checkpoint file"))?;
    let doc = parse_json(first).map_err(|e| malformed(path, 1, e.to_string()))?;
    if doc.get("kind").and_then(Json::as_str) != Some("manifest") {
        return Err(malformed(path, 1, "first line must be a manifest"));
    }
    let manifest = parse_manifest(path, &doc)?;

    let mut points = Vec::new();
    let mut truncated_tail = false;
    let mut rest = lines.peekable();
    while let Some((i, line)) = rest.next() {
        let line_no = i + 1;
        let is_last = rest.peek().is_none();
        let parsed = parse_json(line)
            .ok()
            .filter(|doc| doc.get("kind").and_then(Json::as_str) == Some("point"))
            .and_then(|doc| parse_point(&doc));
        match parsed {
            Some(point) => points.push(point),
            None if is_last => truncated_tail = true,
            None => {
                return Err(malformed(path, line_no, "unreadable point line"));
            }
        }
    }
    Ok(Checkpoint {
        manifest,
        points,
        truncated_tail,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::Profile;
    use crate::sweep::Axis;
    use lrd_fluidq::SolverOptions;

    fn plan() -> SweepPlan {
        SweepPlan::grid_plan(
            "demo",
            Profile::Quick,
            "loss_rate",
            Axis::new("b", vec![0.1, 1.0]),
            Axis::new("tc", vec![0.5, f64::INFINITY]),
            SolverOptions::sweep_profile(),
        )
    }

    fn result(index: usize) -> PointResult {
        PointResult {
            index,
            value: 1.0 / 3.0 * (index as f64 + 1.0),
            iterations: 10 + index as u64,
            bins: 256,
            converged: index.is_multiple_of(2),
        }
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("lrd-ckpt-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("shard.jsonl")
    }

    #[test]
    fn lines_round_trip_bit_exactly() {
        let p = plan();
        let shard = ShardSpec::new(1, 2).unwrap();
        let path = tmp("roundtrip");
        let mut text = manifest_line(&p, shard);
        text.push('\n');
        for pt in p.points_for(shard) {
            text.push_str(&point_line(&pt.coords, &result(pt.index)));
            text.push('\n');
        }
        std::fs::write(&path, &text).unwrap();

        let ck = read_checkpoint(&path).unwrap();
        assert!(!ck.truncated_tail);
        assert_eq!(ck.manifest, Manifest::new(&p, shard));
        assert_eq!(ck.points.len(), 2);
        for pt in &ck.points {
            let expect = result(pt.index);
            assert_eq!(pt.value.to_bits(), expect.value.to_bits());
            assert_eq!(pt, &expect);
        }
    }

    #[test]
    fn tolerates_torn_final_line_only() {
        let p = plan();
        let path = tmp("torn");
        let full = format!(
            "{}\n{}\n{}\n",
            manifest_line(&p, ShardSpec::FULL),
            point_line(&p.point(0).coords, &result(0)),
            point_line(&p.point(1).coords, &result(1)),
        );
        // Cut the file mid-way through the last line.
        let cut = &full[..full.len() - 9];
        std::fs::write(&path, cut).unwrap();
        let ck = read_checkpoint(&path).unwrap();
        assert!(ck.truncated_tail);
        assert_eq!(ck.points.len(), 1);

        // The same damage on a *middle* line is an error.
        let damaged = format!(
            "{}\n{}\n{}\n",
            manifest_line(&p, ShardSpec::FULL),
            &point_line(&p.point(0).coords, &result(0))[..20],
            point_line(&p.point(1).coords, &result(1)),
        );
        std::fs::write(&path, damaged).unwrap();
        assert!(matches!(
            read_checkpoint(&path),
            Err(SweepError::Malformed { line: 2, .. })
        ));
    }

    #[test]
    fn rejects_missing_or_bad_manifest() {
        let path = tmp("badmanifest");
        std::fs::write(&path, "").unwrap();
        assert!(matches!(
            read_checkpoint(&path),
            Err(SweepError::Malformed { line: 1, .. })
        ));
        std::fs::write(&path, format!("{}\n", point_line(&[0.1], &result(0)))).unwrap();
        assert!(matches!(
            read_checkpoint(&path),
            Err(SweepError::Malformed { line: 1, .. })
        ));
        std::fs::write(
            &path,
            "{\"kind\":\"manifest\",\"figure\":\"x\",\"plan_hash\":\"h\",\"profile\":\"quick\",\
             \"shard\":3,\"shard_count\":2,\"points\":4}\n",
        )
        .unwrap();
        assert!(matches!(
            read_checkpoint(&path),
            Err(SweepError::Malformed { line: 1, .. })
        ));
    }

    #[test]
    fn missing_file_is_io_error() {
        let path = std::env::temp_dir().join("lrd-ckpt-definitely-missing.jsonl");
        assert!(matches!(
            read_checkpoint(&path),
            Err(SweepError::Io { .. })
        ));
    }
}
