//! Lattice partitioning for multi-host sweeps: round-robin by default,
//! explicit owned-point sets when a cost-weighted re-split planned by
//! [`sweep_plan`](crate::sweep::planner) is in force.

use std::fmt;
use std::sync::Arc;

/// One shard of an `n`-way sweep partition: `--shard i/n`.
///
/// In the default **round-robin** form, shard `i` owns every lattice
/// point whose stable index `p` satisfies `p % n == i`. Round-robin
/// (rather than contiguous blocks) spreads the expensive deep-loss
/// corner of a surface across all shards, so wall-clock balances
/// without any cost model — on a *homogeneous* fleet.
///
/// The **owned-set** form ([`ShardSpec::owned`]) instead carries an
/// explicit sorted list of the point indices this shard solves. It is
/// produced by the cost-weighted planner from measured per-point
/// durations, so heterogeneous fleets and skewed surfaces balance on
/// predicted makespan rather than point count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSpec {
    /// Zero-based shard index, `< count`.
    pub index: u32,
    /// Total number of shards, `>= 1`.
    pub count: u32,
    /// Explicit owned point set (sorted, duplicate-free), or `None`
    /// for round-robin ownership.
    owned: Option<Arc<[usize]>>,
}

impl ShardSpec {
    /// The trivial partition: one round-robin shard owning every point.
    pub const FULL: ShardSpec = ShardSpec {
        index: 0,
        count: 1,
        owned: None,
    };

    /// A validated round-robin shard; `None` when `count == 0` or
    /// `index >= count`.
    pub fn new(index: u32, count: u32) -> Option<ShardSpec> {
        if count == 0 || index >= count {
            return None;
        }
        Some(ShardSpec {
            index,
            count,
            owned: None,
        })
    }

    /// A validated explicit-assignment shard owning exactly `points`
    /// (any order; deduplicated ownership is required). `None` when the
    /// index/count pair is invalid or `points` contains a duplicate.
    pub fn owned(index: u32, count: u32, mut points: Vec<usize>) -> Option<ShardSpec> {
        if count == 0 || index >= count {
            return None;
        }
        points.sort_unstable();
        if points.windows(2).any(|w| w[0] == w[1]) {
            return None;
        }
        Some(ShardSpec {
            index,
            count,
            owned: Some(points.into()),
        })
    }

    /// Parses the CLI form `"i/n"` (e.g. `"0/2"`), delegating to the
    /// canonical round-trip grammar in [`lrd_cli::ShardArg`] so every
    /// binary in the workspace accepts exactly the same spellings
    /// (leading `+`, leading zeros and stray whitespace are rejected —
    /// a shard spec that renders differently from what was typed is a
    /// recipe for mismatched checkpoint names across hosts).
    pub fn parse(s: &str) -> Option<ShardSpec> {
        lrd_cli::ShardArg::parse(s).map(ShardSpec::from)
    }

    /// Whether this shard owns lattice point `point_index`.
    pub fn owns(&self, point_index: usize) -> bool {
        match &self.owned {
            Some(points) => points.binary_search(&point_index).is_ok(),
            None => point_index % self.count as usize == self.index as usize,
        }
    }

    /// The explicit owned point set, when this is an owned-set shard.
    pub fn owned_points(&self) -> Option<&[usize]> {
        self.owned.as_deref()
    }

    /// Whether this shard carries an explicit owned-set assignment.
    pub fn is_explicit(&self) -> bool {
        self.owned.is_some()
    }

    /// Whether this is the trivial single-shard round-robin partition.
    pub fn is_full(&self) -> bool {
        self.count == 1 && self.owned.is_none()
    }
}

impl From<lrd_cli::ShardArg> for ShardSpec {
    /// A command-line `--shard i/n` is always the round-robin form;
    /// explicit owned sets only ever come from a planner assignment.
    fn from(arg: lrd_cli::ShardArg) -> ShardSpec {
        ShardSpec::new(arg.index, arg.count)
            .expect("ShardArg enforces index < count at construction")
    }
}

impl fmt::Display for ShardSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.index, self.count)?;
        if let Some(points) = &self.owned {
            write!(f, " (explicit, {} points)", points.len())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display() {
        let s = ShardSpec::parse("1/3").unwrap();
        assert_eq!((s.index, s.count), (1, 3));
        assert_eq!(s.to_string(), "1/3");
        assert_eq!(ShardSpec::parse("0/1"), Some(ShardSpec::FULL));
        assert_eq!(ShardSpec::parse("10/12").unwrap().to_string(), "10/12");
        for bad in [
            "", "1", "3/3", "4/3", "1/0", "-1/3", "a/b", "1/3/5",
            // Signed and otherwise non-round-tripping forms that
            // u32::from_str alone would tolerate.
            "+1/3", "1/+3", "+0/1", "01/3", "1/03", "00/1", " 1/3", "1/3 ", "1 /3", "1/ 3",
        ] {
            assert_eq!(ShardSpec::parse(bad), None, "{bad:?}");
        }
    }

    #[test]
    fn round_robin_ownership() {
        let shards: Vec<ShardSpec> = (0..3).map(|i| ShardSpec::new(i, 3).unwrap()).collect();
        for p in 0..20usize {
            let owners: Vec<u32> = shards
                .iter()
                .filter(|s| s.owns(p))
                .map(|s| s.index)
                .collect();
            assert_eq!(owners, vec![(p % 3) as u32]);
        }
        assert!(ShardSpec::FULL.owns(0) && ShardSpec::FULL.owns(17));
        assert!(ShardSpec::FULL.is_full());
        assert!(!shards[1].is_full());
        assert!(!shards[1].is_explicit());
    }

    #[test]
    fn owned_set_ownership() {
        let s = ShardSpec::owned(1, 2, vec![5, 0, 3]).unwrap();
        assert!(s.is_explicit());
        assert!(!s.is_full());
        assert_eq!(s.owned_points(), Some(&[0, 3, 5][..]));
        for p in 0..8 {
            assert_eq!(s.owns(p), [0, 3, 5].contains(&p), "point {p}");
        }
        assert_eq!(s.to_string(), "1/2 (explicit, 3 points)");

        // Validation mirrors the round-robin constructor, plus
        // duplicate rejection.
        assert_eq!(ShardSpec::owned(2, 2, vec![0]), None);
        assert_eq!(ShardSpec::owned(0, 0, vec![0]), None);
        assert_eq!(ShardSpec::owned(0, 2, vec![1, 1]), None);
        // The empty set is a valid assignment (a host the planner
        // decided to leave idle).
        let empty = ShardSpec::owned(0, 2, Vec::new()).unwrap();
        assert!(!empty.owns(0));
    }
}
