//! Round-robin lattice partitioning for multi-host sweeps.

use std::fmt;

/// One shard of an `n`-way sweep partition: `--shard i/n`.
///
/// Shard `i` owns every lattice point whose stable index `p` satisfies
/// `p % n == i`. Round-robin (rather than contiguous blocks) spreads
/// the expensive deep-loss corner of a surface across all shards, so
/// wall-clock balances without any cost model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// Zero-based shard index, `< count`.
    pub index: u32,
    /// Total number of shards, `>= 1`.
    pub count: u32,
}

impl ShardSpec {
    /// The trivial partition: one shard owning every point.
    pub const FULL: ShardSpec = ShardSpec { index: 0, count: 1 };

    /// A validated shard; `None` when `count == 0` or
    /// `index >= count`.
    pub fn new(index: u32, count: u32) -> Option<ShardSpec> {
        if count == 0 || index >= count {
            return None;
        }
        Some(ShardSpec { index, count })
    }

    /// Parses the CLI form `"i/n"` (e.g. `"0/2"`).
    pub fn parse(s: &str) -> Option<ShardSpec> {
        let (i, n) = s.split_once('/')?;
        ShardSpec::new(i.trim().parse().ok()?, n.trim().parse().ok()?)
    }

    /// Whether this shard owns lattice point `point_index`.
    pub fn owns(self, point_index: usize) -> bool {
        point_index % self.count as usize == self.index as usize
    }

    /// Whether this is the trivial single-shard partition.
    pub fn is_full(self) -> bool {
        self.count == 1
    }
}

impl fmt::Display for ShardSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display() {
        let s = ShardSpec::parse("1/3").unwrap();
        assert_eq!((s.index, s.count), (1, 3));
        assert_eq!(s.to_string(), "1/3");
        assert_eq!(ShardSpec::parse("0/1"), Some(ShardSpec::FULL));
        for bad in ["", "1", "3/3", "4/3", "1/0", "-1/3", "a/b", "1/3/5"] {
            assert_eq!(ShardSpec::parse(bad), None, "{bad:?}");
        }
    }

    #[test]
    fn round_robin_ownership() {
        let shards: Vec<ShardSpec> = (0..3).map(|i| ShardSpec::new(i, 3).unwrap()).collect();
        for p in 0..20usize {
            let owners: Vec<u32> = shards
                .iter()
                .filter(|s| s.owns(p))
                .map(|s| s.index)
                .collect();
            assert_eq!(owners, vec![(p % 3) as u32]);
        }
        assert!(ShardSpec::FULL.owns(0) && ShardSpec::FULL.owns(17));
        assert!(ShardSpec::FULL.is_full());
        assert!(!shards[1].is_full());
    }
}
