//! Declarative parameter sweeps with shardable, resumable, mergeable
//! execution.
//!
//! Every sweep-shaped figure (Figs. 4/5, 10/11, 12/13, the
//! CH-validation grid) is an embarrassingly parallel lattice of
//! independent point solves. This module replaces the ad-hoc nested
//! loops those figures used to carry with one declarative pipeline:
//!
//! * [`SweepPlan`] — named [`Axis`] values, a stable row-major total
//!   order over the point lattice, and a content hash
//!   ([`SweepPlan::hash_hex`]) covering the axes, profile and solver
//!   options. Two plans with the same hash produce bit-identical
//!   surfaces.
//! * [`FigureSweep`] — a plan plus the point solve function, which
//!   may accept a warm state donated by its fixed lattice predecessor
//!   ([`SweepPlan::donor`]) and export its own. Each figure module
//!   exposes a `*_sweep` constructor. Buffer-axis figures declare a
//!   warm axis and run as a deterministic wavefront: donors are fixed
//!   by the plan, so iteration savings never depend on thread count,
//!   and solved values are bit-identical warm or cold.
//! * [`ShardSpec`] — `--shard i/n` partitions the lattice round-robin
//!   by stable point index, so every shard receives a mix of cheap and
//!   deep-loss points; the owned-set form ([`ShardSpec::owned`])
//!   carries an explicit planner-produced point assignment instead.
//! * [`run_points`] — executes one shard, fanning points through the
//!   worker pool ([`lrd_pool::par_map`]); with a checkpoint path it
//!   streams completed [`PointResult`]s — each stamped with its
//!   measured `solver.solve` span duration — to an append-only JSONL
//!   file and **resumes** an interrupted run by skipping
//!   already-solved points.
//! * [`merge_checkpoints`] — validates the shard manifests (plan hash,
//!   profile, shard set, point ownership) and reassembles the full
//!   surface bit-identically to a single-host run, failing with a
//!   typed [`SweepError`] on any inconsistency.
//! * [`CostProfile`] / [`plan_assignment`] / [`SweepAssignment`] — the
//!   cost model: aggregate measured per-point durations from prior
//!   checkpoints, interpolate the unmeasured lattice, and bin-pack the
//!   points into an explicit per-shard assignment whose predicted
//!   makespan is never worse than the round-robin split's. The
//!   `sweep_plan` binary drives this from the command line.
//!
//! * [`coord`] — dynamic work-stealing as an alternative to static
//!   sharding: a `sweep_coord` process serves cost-priced point
//!   batches under a lease/heartbeat protocol, `--steal` workers
//!   solve whatever they can lease, and expired leases (crashed or
//!   wedged workers) are reclaimed and re-issued. Duplicate solves
//!   from reclaims resolve first-writer-wins at merge, asserted
//!   bit-identical.
//!
//! The design composes one-host parallelism with many-host sharding:
//! within a shard, points still fan through `par_map`, so `--shard`
//! and `--threads` multiply. See DESIGN.md §11 for the format and
//! validation rules, and §12 for the work-stealing protocol.

mod checkpoint;
pub mod coord;
mod error;
mod merge;
mod plan;
mod planner;
mod runner;
mod shard;

pub use checkpoint::{
    manifest_line, manifest_line_for, point_line, read_checkpoint, validate_checkpoint,
    write_manifest_durable, Checkpoint, CheckpointOrigin, Manifest,
};
pub use error::SweepError;
pub use merge::{merge_checkpoints, MergedSurface};
pub use plan::{Axis, PointResult, PointSpec, SweepPlan};
pub use planner::{plan_assignment, CostProfile, ShardPlan, SweepAssignment};
pub use runner::{run_grid, run_points, FigureSweep, CHECKPOINT_CHUNK};
pub use shard::ShardSpec;
