//! Typed failures for checkpointed, sharded sweep execution.
//!
//! Everything the checkpoint/merge layer can reject is enumerated here
//! so callers (and the CI shard smoke) can distinguish "a shard file
//! is from a different plan" from "the disk is full". I/O errors carry
//! the rendered message rather than `std::io::Error` so the variants
//! stay `Clone + PartialEq` and tests can assert on them directly.

use std::fmt;
use std::path::PathBuf;

/// A failure while running, checkpointing, or merging a sweep.
// Not `Eq`: the duplicate variants carry the point's `f64` lattice
// coordinates so merge errors name *where* the conflict is.
#[derive(Debug, Clone, PartialEq)]
pub enum SweepError {
    /// Reading or writing a checkpoint file failed at the OS level.
    Io {
        /// The checkpoint path involved.
        path: PathBuf,
        /// The rendered `std::io::Error` message.
        message: String,
    },
    /// The checkpoint's manifest line itself is torn: the file
    /// contains no complete (newline-terminated) first line, which is
    /// exactly what a process killed before its first checkpoint flush
    /// leaves behind. No solved work can be stored in such a file, so
    /// callers ([`run_points`](crate::sweep::run_points)) discard it
    /// with a warning and start the shard fresh; only genuinely
    /// malformed *complete* lines are hard errors.
    TornManifest {
        /// The checkpoint path involved.
        path: PathBuf,
    },
    /// A checkpoint line failed to parse or had the wrong shape.
    Malformed {
        /// The checkpoint path involved.
        path: PathBuf,
        /// One-based line number of the offending line.
        line: usize,
        /// What was wrong with it.
        reason: String,
    },
    /// A manifest field disagrees with the plan (resume) or with the
    /// other shards (merge).
    ManifestMismatch {
        /// The checkpoint whose manifest disagrees.
        path: PathBuf,
        /// The disagreeing manifest field.
        field: &'static str,
        /// The value required by the plan / reference shard.
        expected: String,
        /// The value found in this manifest.
        found: String,
    },
    /// A checkpoint contains a point its shard does not own.
    ForeignPoint {
        /// The checkpoint path involved.
        path: PathBuf,
        /// The stable index of the foreign point.
        index: usize,
    },
    /// A checkpoint records the same point twice.
    DuplicatePoint {
        /// The checkpoint path involved.
        path: PathBuf,
        /// The stable index of the duplicated point.
        index: usize,
    },
    /// Two static-shard checkpoints both solved the same point — the
    /// shard ownership sets overlap. Unlike [`DuplicatePoint`] (a
    /// within-file defect), this names both conflicting files and the
    /// point's lattice coordinates so the offending assignment rows
    /// can be found without decoding indices by hand.
    ///
    /// [`DuplicatePoint`]: SweepError::DuplicatePoint
    DuplicateAcrossShards {
        /// The stable index of the duplicated point.
        index: usize,
        /// The point's lattice coordinates (one per plan axis),
        /// decoded from the manifest's embedded axes.
        coords: Vec<f64>,
        /// The checkpoint that recorded the point first.
        first: PathBuf,
        /// The checkpoint that recorded it again.
        second: PathBuf,
    },
    /// Two steal-mode worker checkpoints solved the same point — which
    /// is expected after a lease reclaim — but their values are not
    /// bit-identical, so first-writer-wins resolution would silently
    /// pick one of two *different* answers. This can only mean the
    /// workers ran different binaries or a nondeterministic solve.
    DuplicateMismatch {
        /// The stable index of the conflicting point.
        index: usize,
        /// The point's lattice coordinates (one per plan axis).
        coords: Vec<f64>,
        /// The checkpoint whose value was kept (first writer).
        first: PathBuf,
        /// The checkpoint whose value disagrees.
        second: PathBuf,
        /// The first writer's value.
        first_value: f64,
        /// The disagreeing value.
        second_value: f64,
    },
    /// The merged shard files do not form the full partition
    /// `{0, …, n-1}`.
    IncompleteShardSet {
        /// The shard count every manifest declares.
        expected: u32,
        /// The sorted shard indices actually present.
        found: Vec<u32>,
    },
    /// The shard set is complete but some lattice points were never
    /// solved (an interrupted shard was merged without being resumed).
    MissingPoints {
        /// How many points are missing.
        missing: usize,
        /// The smallest missing stable index.
        first: usize,
    },
    /// The checkpoint's plan hash does not match the plan rebuilt from
    /// the registry (axes, profile, or solver protocol changed).
    PlanHashMismatch {
        /// The hash the rebuilt plan requires.
        expected: String,
        /// The hash recorded in the manifests.
        found: String,
    },
    /// `merge` was invoked with no checkpoint files.
    NoCheckpoints,
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepError::Io { path, message } => {
                write!(f, "checkpoint I/O error on {}: {message}", path.display())
            }
            SweepError::TornManifest { path } => write!(
                f,
                "{}: manifest line is torn (producing process was killed before \
                 its first flush); the file holds no solved points",
                path.display()
            ),
            SweepError::Malformed { path, line, reason } => {
                write!(f, "{} line {line}: {reason}", path.display())
            }
            SweepError::ManifestMismatch {
                path,
                field,
                expected,
                found,
            } => write!(
                f,
                "{}: manifest {field} mismatch (expected {expected}, found {found})",
                path.display()
            ),
            SweepError::ForeignPoint { path, index } => write!(
                f,
                "{}: point {index} does not belong to this shard",
                path.display()
            ),
            SweepError::DuplicatePoint { path, index } => {
                write!(f, "{}: point {index} recorded twice", path.display())
            }
            SweepError::DuplicateAcrossShards {
                index,
                coords,
                first,
                second,
            } => write!(
                f,
                "point {index} at {} solved by both {} and {} — the shard \
                 ownership sets overlap",
                fmt_coords(coords),
                first.display(),
                second.display()
            ),
            SweepError::DuplicateMismatch {
                index,
                coords,
                first,
                second,
                first_value,
                second_value,
            } => write!(
                f,
                "point {index} at {} solved twice with different values: {} \
                 recorded {first_value:e}, {} recorded {second_value:e} — \
                 duplicate solves after a lease reclaim must be bit-identical",
                fmt_coords(coords),
                first.display(),
                second.display()
            ),
            SweepError::IncompleteShardSet { expected, found } => write!(
                f,
                "incomplete shard set: need all of 0..{expected}, found {found:?}"
            ),
            SweepError::MissingPoints { missing, first } => write!(
                f,
                "merged surface is missing {missing} point(s), first missing index {first} \
                 (was a shard interrupted and not resumed?)"
            ),
            SweepError::PlanHashMismatch { expected, found } => write!(
                f,
                "plan hash mismatch: registry plan is {expected}, checkpoints were solved \
                 under {found}"
            ),
            SweepError::NoCheckpoints => write!(f, "no checkpoint files given"),
        }
    }
}

impl std::error::Error for SweepError {}

/// Renders lattice coordinates as `(0.05, inf)` for error messages.
fn fmt_coords(coords: &[f64]) -> String {
    let mut out = String::from("(");
    for (i, &c) in coords.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&c.to_string());
    }
    out.push(')');
    out
}

impl SweepError {
    /// Wraps an OS error for `path` (renders the message eagerly so
    /// the variant stays comparable).
    pub fn io(path: &std::path::Path, err: &std::io::Error) -> SweepError {
        SweepError::Io {
            path: path.to_path_buf(),
            message: err.to_string(),
        }
    }
}
