//! Typed failures for checkpointed, sharded sweep execution.
//!
//! Everything the checkpoint/merge layer can reject is enumerated here
//! so callers (and the CI shard smoke) can distinguish "a shard file
//! is from a different plan" from "the disk is full". I/O errors carry
//! the rendered message rather than `std::io::Error` so the variants
//! stay `Clone + PartialEq` and tests can assert on them directly.

use std::fmt;
use std::path::PathBuf;

/// A failure while running, checkpointing, or merging a sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SweepError {
    /// Reading or writing a checkpoint file failed at the OS level.
    Io {
        /// The checkpoint path involved.
        path: PathBuf,
        /// The rendered `std::io::Error` message.
        message: String,
    },
    /// The checkpoint's manifest line itself is torn: the file
    /// contains no complete (newline-terminated) first line, which is
    /// exactly what a process killed before its first checkpoint flush
    /// leaves behind. No solved work can be stored in such a file, so
    /// callers ([`run_points`](crate::sweep::run_points)) discard it
    /// with a warning and start the shard fresh; only genuinely
    /// malformed *complete* lines are hard errors.
    TornManifest {
        /// The checkpoint path involved.
        path: PathBuf,
    },
    /// A checkpoint line failed to parse or had the wrong shape.
    Malformed {
        /// The checkpoint path involved.
        path: PathBuf,
        /// One-based line number of the offending line.
        line: usize,
        /// What was wrong with it.
        reason: String,
    },
    /// A manifest field disagrees with the plan (resume) or with the
    /// other shards (merge).
    ManifestMismatch {
        /// The checkpoint whose manifest disagrees.
        path: PathBuf,
        /// The disagreeing manifest field.
        field: &'static str,
        /// The value required by the plan / reference shard.
        expected: String,
        /// The value found in this manifest.
        found: String,
    },
    /// A checkpoint contains a point its shard does not own.
    ForeignPoint {
        /// The checkpoint path involved.
        path: PathBuf,
        /// The stable index of the foreign point.
        index: usize,
    },
    /// A checkpoint records the same point twice.
    DuplicatePoint {
        /// The checkpoint path involved.
        path: PathBuf,
        /// The stable index of the duplicated point.
        index: usize,
    },
    /// The merged shard files do not form the full partition
    /// `{0, …, n-1}`.
    IncompleteShardSet {
        /// The shard count every manifest declares.
        expected: u32,
        /// The sorted shard indices actually present.
        found: Vec<u32>,
    },
    /// The shard set is complete but some lattice points were never
    /// solved (an interrupted shard was merged without being resumed).
    MissingPoints {
        /// How many points are missing.
        missing: usize,
        /// The smallest missing stable index.
        first: usize,
    },
    /// The checkpoint's plan hash does not match the plan rebuilt from
    /// the registry (axes, profile, or solver protocol changed).
    PlanHashMismatch {
        /// The hash the rebuilt plan requires.
        expected: String,
        /// The hash recorded in the manifests.
        found: String,
    },
    /// `merge` was invoked with no checkpoint files.
    NoCheckpoints,
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepError::Io { path, message } => {
                write!(f, "checkpoint I/O error on {}: {message}", path.display())
            }
            SweepError::TornManifest { path } => write!(
                f,
                "{}: manifest line is torn (producing process was killed before \
                 its first flush); the file holds no solved points",
                path.display()
            ),
            SweepError::Malformed { path, line, reason } => {
                write!(f, "{} line {line}: {reason}", path.display())
            }
            SweepError::ManifestMismatch {
                path,
                field,
                expected,
                found,
            } => write!(
                f,
                "{}: manifest {field} mismatch (expected {expected}, found {found})",
                path.display()
            ),
            SweepError::ForeignPoint { path, index } => write!(
                f,
                "{}: point {index} does not belong to this shard",
                path.display()
            ),
            SweepError::DuplicatePoint { path, index } => {
                write!(f, "{}: point {index} recorded twice", path.display())
            }
            SweepError::IncompleteShardSet { expected, found } => write!(
                f,
                "incomplete shard set: need all of 0..{expected}, found {found:?}"
            ),
            SweepError::MissingPoints { missing, first } => write!(
                f,
                "merged surface is missing {missing} point(s), first missing index {first} \
                 (was a shard interrupted and not resumed?)"
            ),
            SweepError::PlanHashMismatch { expected, found } => write!(
                f,
                "plan hash mismatch: registry plan is {expected}, checkpoints were solved \
                 under {found}"
            ),
            SweepError::NoCheckpoints => write!(f, "no checkpoint files given"),
        }
    }
}

impl std::error::Error for SweepError {}

impl SweepError {
    /// Wraps an OS error for `path` (renders the message eagerly so
    /// the variant stays comparable).
    pub fn io(path: &std::path::Path, err: &std::io::Error) -> SweepError {
        SweepError::Io {
            path: path.to_path_buf(),
            message: err.to_string(),
        }
    }
}
