//! Reassembling a full sweep surface from per-shard checkpoint files.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use crate::sweep::{read_checkpoint, Manifest, PointResult, SweepError};

/// A complete surface merged from a full set of shard checkpoints.
#[derive(Debug, Clone, PartialEq)]
pub struct MergedSurface {
    /// The manifest every shard agreed on (shard index is the
    /// reference shard's and is not meaningful after merging).
    pub manifest: Manifest,
    /// The full lattice, in stable-index order.
    pub results: Vec<PointResult>,
}

impl MergedSurface {
    /// The surface values in stable-index order.
    pub fn values(&self) -> Vec<f64> {
        self.results.iter().map(|r| r.value).collect()
    }

    /// Total solver iterations across every point — matches the
    /// `solver.iterations` telemetry counter of an equivalent
    /// single-host run.
    pub fn total_iterations(&self) -> u64 {
        self.results.iter().map(|r| r.iterations).sum()
    }
}

fn mismatch(
    path: &Path,
    field: &'static str,
    expected: impl ToString,
    found: impl ToString,
) -> SweepError {
    SweepError::ManifestMismatch {
        path: path.to_path_buf(),
        field,
        expected: expected.to_string(),
        found: found.to_string(),
    }
}

/// Merges a complete set of shard checkpoints into the full surface.
///
/// Validation, in order:
///
/// 1. at least one file ([`SweepError::NoCheckpoints`]);
/// 2. every manifest agrees with the first file's on figure, plan
///    hash, profile, lattice size and shard count
///    ([`SweepError::ManifestMismatch`] names the field);
/// 3. the shard indices present are exactly `{0, …, n-1}`, no
///    repeats, none missing ([`SweepError::IncompleteShardSet`]);
/// 4. every point belongs to the shard whose file recorded it
///    ([`SweepError::ForeignPoint`]) and appears exactly once
///    ([`SweepError::DuplicatePoint`], [`SweepError::MissingPoints`]).
///
/// The merged surface is bit-identical to a single-host run of the
/// same plan: point values travel through the checkpoint as
/// shortest-exact-representation JSON numbers, which round-trip every
/// `f64` bit.
pub fn merge_checkpoints(paths: &[PathBuf]) -> Result<MergedSurface, SweepError> {
    let (first_path, rest) = paths.split_first().ok_or(SweepError::NoCheckpoints)?;
    let first = read_checkpoint(first_path)?;
    let reference = &first.manifest;

    let mut shards_seen: Vec<u32> = Vec::new();
    let mut points: BTreeMap<usize, PointResult> = BTreeMap::new();
    let mut absorb = |path: &Path, ck: crate::sweep::Checkpoint| -> Result<(), SweepError> {
        let m = &ck.manifest;
        if m.figure != reference.figure {
            return Err(mismatch(path, "figure", &reference.figure, &m.figure));
        }
        if m.plan_hash != reference.plan_hash {
            return Err(mismatch(path, "plan_hash", &reference.plan_hash, &m.plan_hash));
        }
        if m.profile != reference.profile {
            return Err(mismatch(path, "profile", &reference.profile, &m.profile));
        }
        if m.total_points != reference.total_points {
            return Err(mismatch(path, "points", reference.total_points, m.total_points));
        }
        if m.shard.count != reference.shard.count {
            return Err(mismatch(
                path,
                "shard_count",
                reference.shard.count,
                m.shard.count,
            ));
        }
        shards_seen.push(m.shard.index);
        for point in ck.points {
            if point.index >= m.total_points || !m.shard.owns(point.index) {
                return Err(SweepError::ForeignPoint {
                    path: path.to_path_buf(),
                    index: point.index,
                });
            }
            if points.insert(point.index, point.clone()).is_some() {
                return Err(SweepError::DuplicatePoint {
                    path: path.to_path_buf(),
                    index: point.index,
                });
            }
        }
        Ok(())
    };

    absorb(first_path, first.clone())?;
    for path in rest {
        let ck = read_checkpoint(path)?;
        absorb(path, ck)?;
    }

    shards_seen.sort_unstable();
    let want: Vec<u32> = (0..reference.shard.count).collect();
    if shards_seen != want {
        return Err(SweepError::IncompleteShardSet {
            expected: reference.shard.count,
            found: shards_seen,
        });
    }

    if points.len() != reference.total_points {
        let first_missing = (0..reference.total_points)
            .find(|i| !points.contains_key(i))
            .unwrap_or(0);
        return Err(SweepError::MissingPoints {
            missing: reference.total_points - points.len(),
            first: first_missing,
        });
    }

    Ok(MergedSurface {
        manifest: first.manifest,
        results: points.into_values().collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::Profile;
    use crate::sweep::{run_points, Axis, FigureSweep, PointSpec, ShardSpec, SweepPlan};
    use lrd_fluidq::SolverOptions;

    fn sweep(figure: &str) -> FigureSweep<'static> {
        let plan = SweepPlan::grid_plan(
            figure,
            Profile::Quick,
            "loss_rate",
            Axis::new("b", vec![0.1, 1.0, 10.0]),
            Axis::new("tc", vec![0.5, 5.0, f64::INFINITY]),
            SolverOptions::sweep_profile(),
        );
        FigureSweep {
            plan,
            solve: Box::new(|spec: &PointSpec| crate::sweep::PointResult {
                index: spec.index,
                value: (spec.coords[0] * 7.0 + spec.coords[1].min(1e6)) / 3.0,
                iterations: 3 + spec.index as u64,
                bins: 128,
                converged: true,
                solve_us: None,
            }),
        }
    }

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("lrd-merge-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn run_shards(s: &FigureSweep<'_>, dir: &Path, count: u32) -> Vec<PathBuf> {
        (0..count)
            .map(|i| {
                let path = dir.join(format!("shard-{i}.jsonl"));
                run_points(s, &ShardSpec::new(i, count).unwrap(), Some(&path)).unwrap();
                path
            })
            .collect()
    }

    #[test]
    fn merge_matches_single_run_bitwise() {
        let s = sweep("demo");
        let single = run_points(&s, &ShardSpec::FULL, None).unwrap();
        for count in [1u32, 2, 3] {
            let dir = tmpdir(&format!("ok{count}"));
            let merged = merge_checkpoints(&run_shards(&s, &dir, count)).unwrap();
            assert_eq!(merged.results.len(), single.len());
            for (a, b) in single.iter().zip(&merged.results) {
                assert_eq!(a.index, b.index);
                assert_eq!(a.value.to_bits(), b.value.to_bits());
            }
            assert_eq!(
                merged.total_iterations(),
                single.iter().map(|r| r.iterations).sum::<u64>()
            );
        }
    }

    #[test]
    fn merge_of_explicit_assignment_matches_single_run_bitwise() {
        let s = sweep("demo");
        let single = run_points(&s, &ShardSpec::FULL, None).unwrap();
        let dir = tmpdir("explicit");
        // A deliberately lopsided planner-style split of the 9-point
        // lattice, including ownership that round-robin would never
        // produce.
        let sets = [vec![8, 0], vec![1, 2, 3, 4, 5, 6, 7]];
        let paths: Vec<PathBuf> = sets
            .iter()
            .enumerate()
            .map(|(i, points)| {
                let shard = ShardSpec::owned(i as u32, sets.len() as u32, points.clone()).unwrap();
                let path = dir.join(format!("shard-{i}.jsonl"));
                run_points(&s, &shard, Some(&path)).unwrap();
                path
            })
            .collect();
        let merged = merge_checkpoints(&paths).unwrap();
        assert_eq!(merged.results.len(), single.len());
        for (a, b) in single.iter().zip(&merged.results) {
            assert_eq!(a.index, b.index);
            assert_eq!(a.value.to_bits(), b.value.to_bits());
        }
    }

    #[test]
    fn merge_rejects_overlapping_and_gappy_explicit_assignments() {
        let s = sweep("demo");
        let dir = tmpdir("explicit-bad");
        let run_owned = |name: &str, i: u32, n: u32, points: Vec<usize>| {
            let shard = ShardSpec::owned(i, n, points).unwrap();
            let path = dir.join(format!("{name}.jsonl"));
            run_points(&s, &shard, Some(&path)).unwrap();
            path
        };

        // Point 4 owned by both shards.
        let overlap = [
            run_owned("ov-0", 0, 2, vec![0, 1, 2, 3, 4]),
            run_owned("ov-1", 1, 2, vec![4, 5, 6, 7, 8]),
        ];
        assert!(matches!(
            merge_checkpoints(&overlap).unwrap_err(),
            SweepError::DuplicatePoint { index: 4, .. }
        ));

        // Point 4 owned by neither.
        let gappy = [
            run_owned("gap-0", 0, 2, vec![0, 1, 2, 3]),
            run_owned("gap-1", 1, 2, vec![5, 6, 7, 8]),
        ];
        assert!(matches!(
            merge_checkpoints(&gappy).unwrap_err(),
            SweepError::MissingPoints {
                missing: 1,
                first: 4
            }
        ));
    }

    #[test]
    fn merge_rejects_incomplete_and_mixed_sets() {
        let s = sweep("demo");
        let dir = tmpdir("reject");
        let paths = run_shards(&s, &dir, 3);

        assert_eq!(merge_checkpoints(&[]), Err(SweepError::NoCheckpoints));

        let err = merge_checkpoints(&paths[..2]).unwrap_err();
        assert_eq!(
            err,
            SweepError::IncompleteShardSet {
                expected: 3,
                found: vec![0, 1],
            }
        );

        let err = merge_checkpoints(&[paths[0].clone(), paths[1].clone(), paths[1].clone()])
            .unwrap_err();
        assert!(matches!(err, SweepError::DuplicatePoint { .. }));

        // A shard solved under a different plan cannot slip in.
        let other = sweep("other_figure");
        let other_dir = dir.join("other");
        std::fs::create_dir_all(&other_dir).unwrap();
        let other_paths = run_shards(&other, &other_dir, 3);
        let err = merge_checkpoints(&[
            paths[0].clone(),
            paths[1].clone(),
            other_paths[2].clone(),
        ])
        .unwrap_err();
        assert!(matches!(
            err,
            SweepError::ManifestMismatch { field: "figure", .. }
        ));
    }

    #[test]
    fn merge_reports_missing_points_from_interrupted_shard() {
        let s = sweep("demo");
        let dir = tmpdir("missing");
        let paths = run_shards(&s, &dir, 2);
        // Drop the last point line of shard 1, as if it was killed
        // before finishing and merged without a resume.
        let text = std::fs::read_to_string(&paths[1]).unwrap();
        let kept: Vec<&str> = text.lines().collect();
        std::fs::write(&paths[1], format!("{}\n", kept[..kept.len() - 1].join("\n"))).unwrap();
        let err = merge_checkpoints(&paths).unwrap_err();
        assert!(matches!(err, SweepError::MissingPoints { missing: 1, .. }));
    }
}
