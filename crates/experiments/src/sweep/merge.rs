//! Reassembling a full sweep surface from per-shard (or per-worker)
//! checkpoint files.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use crate::sweep::checkpoint::CheckpointOrigin;
use crate::sweep::{read_checkpoint, Manifest, PointResult, SweepError};

/// A complete surface merged from a full set of checkpoints.
#[derive(Debug, Clone, PartialEq)]
pub struct MergedSurface {
    /// The manifest every file agreed on (the origin is the reference
    /// file's and is not meaningful after merging).
    pub manifest: Manifest,
    /// The full lattice, in stable-index order.
    pub results: Vec<PointResult>,
    /// How many checkpoint files contributed to the merge.
    pub sources: usize,
}

impl MergedSurface {
    /// The surface values in stable-index order.
    pub fn values(&self) -> Vec<f64> {
        self.results.iter().map(|r| r.value).collect()
    }

    /// Total solver iterations across every point — matches the
    /// `solver.iterations` telemetry counter of an equivalent
    /// single-host run.
    pub fn total_iterations(&self) -> u64 {
        self.results.iter().map(|r| r.iterations).sum()
    }
}

fn mismatch(
    path: &Path,
    field: &'static str,
    expected: impl ToString,
    found: impl ToString,
) -> SweepError {
    SweepError::ManifestMismatch {
        path: path.to_path_buf(),
        field,
        expected: expected.to_string(),
        found: found.to_string(),
    }
}

/// Merges a complete set of checkpoints into the full surface.
///
/// Validation, in order:
///
/// 1. at least one file ([`SweepError::NoCheckpoints`]);
/// 2. every manifest agrees with the first file's on figure, plan
///    hash, profile, lattice size and execution mode (static shards
///    and steal workers cannot mix —
///    [`SweepError::ManifestMismatch`] names the field);
/// 3. **static shards**: the shard counts agree, the shard indices
///    present are exactly `{0, …, n-1}`
///    ([`SweepError::IncompleteShardSet`]), every point belongs to the
///    shard whose file recorded it ([`SweepError::ForeignPoint`]) and
///    appears exactly once — a point solved by two shards means the
///    ownership sets overlap, reported with both file paths and the
///    point's lattice coordinates
///    ([`SweepError::DuplicateAcrossShards`]);
/// 4. **steal workers**: any worker may have solved any point (a
///    lease reclaimed from a slow-but-alive worker is legitimately
///    solved twice), so duplicates resolve **first-writer-wins** — but
///    only if the values are bit-identical; a disagreement is the
///    typed [`SweepError::DuplicateMismatch`] naming both files, the
///    coordinates, and both values;
/// 5. either way, every lattice point must be present
///    ([`SweepError::MissingPoints`]).
///
/// The merged surface is bit-identical to a single-host run of the
/// same plan: point values travel through the checkpoint as
/// shortest-exact-representation JSON numbers, which round-trip every
/// `f64` bit.
pub fn merge_checkpoints(paths: &[PathBuf]) -> Result<MergedSurface, SweepError> {
    let (first_path, rest) = paths.split_first().ok_or(SweepError::NoCheckpoints)?;
    let first = read_checkpoint(first_path)?;
    let reference = first.manifest.clone();

    let mut shards_seen: Vec<u32> = Vec::new();
    let mut points: BTreeMap<usize, PointResult> = BTreeMap::new();
    // Which file first recorded each point, for duplicate reporting.
    let mut recorded_by: BTreeMap<usize, PathBuf> = BTreeMap::new();
    let mut absorb = |path: &Path, ck: crate::sweep::Checkpoint| -> Result<(), SweepError> {
        let m = &ck.manifest;
        if m.figure != reference.figure {
            return Err(mismatch(path, "figure", &reference.figure, &m.figure));
        }
        if m.plan_hash != reference.plan_hash {
            return Err(mismatch(path, "plan_hash", &reference.plan_hash, &m.plan_hash));
        }
        if m.profile != reference.profile {
            return Err(mismatch(path, "profile", &reference.profile, &m.profile));
        }
        if m.total_points != reference.total_points {
            return Err(mismatch(path, "points", reference.total_points, m.total_points));
        }
        if m.origin.mode() != reference.origin.mode() {
            return Err(mismatch(
                path,
                "mode",
                reference.origin.mode(),
                m.origin.mode(),
            ));
        }
        if let (CheckpointOrigin::Shard(shard), Some(ref_shard)) =
            (&m.origin, reference.origin.shard())
        {
            if shard.count != ref_shard.count {
                return Err(mismatch(path, "shard_count", ref_shard.count, shard.count));
            }
            shards_seen.push(shard.index);
        }
        for point in ck.points {
            if point.index >= m.total_points || !m.origin.owns(point.index) {
                return Err(SweepError::ForeignPoint {
                    path: path.to_path_buf(),
                    index: point.index,
                });
            }
            match points.get(&point.index) {
                None => {
                    recorded_by.insert(point.index, path.to_path_buf());
                    points.insert(point.index, point);
                }
                Some(kept) if m.origin.is_steal() => {
                    // A legitimate duplicate solve from a reclaimed
                    // lease: first-writer-wins, provided the answers
                    // are the same answer, to the bit.
                    if kept.value.to_bits() != point.value.to_bits() {
                        return Err(SweepError::DuplicateMismatch {
                            index: point.index,
                            coords: reference.point_coords(point.index),
                            first: recorded_by[&point.index].clone(),
                            second: path.to_path_buf(),
                            first_value: kept.value,
                            second_value: point.value,
                        });
                    }
                }
                Some(_) => {
                    return Err(SweepError::DuplicateAcrossShards {
                        index: point.index,
                        coords: reference.point_coords(point.index),
                        first: recorded_by[&point.index].clone(),
                        second: path.to_path_buf(),
                    });
                }
            }
        }
        Ok(())
    };

    absorb(first_path, first.clone())?;
    for path in rest {
        let ck = read_checkpoint(path)?;
        absorb(path, ck)?;
    }

    if let Some(ref_shard) = reference.origin.shard() {
        shards_seen.sort_unstable();
        let want: Vec<u32> = (0..ref_shard.count).collect();
        if shards_seen != want {
            return Err(SweepError::IncompleteShardSet {
                expected: ref_shard.count,
                found: shards_seen,
            });
        }
    }

    if points.len() != reference.total_points {
        let first_missing = (0..reference.total_points)
            .find(|i| !points.contains_key(i))
            .unwrap_or(0);
        return Err(SweepError::MissingPoints {
            missing: reference.total_points - points.len(),
            first: first_missing,
        });
    }

    Ok(MergedSurface {
        manifest: first.manifest,
        results: points.into_values().collect(),
        sources: paths.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::Profile;
    use crate::sweep::{
        manifest_line_for, point_line, run_points, Axis, FigureSweep, PointSpec, ShardSpec,
        SweepPlan,
    };
    use lrd_fluidq::SolverOptions;

    fn sweep(figure: &str) -> FigureSweep<'static> {
        let plan = SweepPlan::grid_plan(
            figure,
            Profile::Quick,
            "loss_rate",
            Axis::new("b", vec![0.1, 1.0, 10.0]),
            Axis::new("tc", vec![0.5, 5.0, f64::INFINITY]),
            SolverOptions::sweep_profile(),
        );
        FigureSweep {
            plan,
            solve: Box::new(|spec: &PointSpec, _donor| {
                (
                    crate::sweep::PointResult {
                        index: spec.index,
                        value: (spec.coords[0] * 7.0 + spec.coords[1].min(1e6)) / 3.0,
                        iterations: 3 + spec.index as u64,
                        bins: 128,
                        converged: true,
                        solve_us: None,
                    },
                    None,
                )
            }),
        }
    }

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("lrd-merge-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn run_shards(s: &FigureSweep<'_>, dir: &Path, count: u32) -> Vec<PathBuf> {
        (0..count)
            .map(|i| {
                let path = dir.join(format!("shard-{i}.jsonl"));
                run_points(s, &ShardSpec::new(i, count).unwrap(), Some(&path)).unwrap();
                path
            })
            .collect()
    }

    /// Hand-writes a steal-mode worker checkpoint holding the given
    /// point indices, solved with `s.solve` (plus an optional value
    /// perturbation for mismatch tests).
    fn write_worker(
        s: &FigureSweep<'_>,
        dir: &Path,
        worker: &str,
        indices: &[usize],
        perturb: f64,
    ) -> PathBuf {
        let origin = CheckpointOrigin::Steal {
            worker: worker.to_string(),
        };
        let mut text = manifest_line_for(&s.plan, &origin);
        text.push('\n');
        for &i in indices {
            let spec = s.plan.point(i);
            let mut result = (s.solve)(&spec, None).0;
            result.value += perturb;
            text.push_str(&point_line(&spec.coords, &result));
            text.push('\n');
        }
        let path = dir.join(format!("{worker}.jsonl"));
        std::fs::write(&path, text).unwrap();
        path
    }

    #[test]
    fn merge_matches_single_run_bitwise() {
        let s = sweep("demo");
        let single = run_points(&s, &ShardSpec::FULL, None).unwrap();
        for count in [1u32, 2, 3] {
            let dir = tmpdir(&format!("ok{count}"));
            let merged = merge_checkpoints(&run_shards(&s, &dir, count)).unwrap();
            assert_eq!(merged.results.len(), single.len());
            assert_eq!(merged.sources, count as usize);
            for (a, b) in single.iter().zip(&merged.results) {
                assert_eq!(a.index, b.index);
                assert_eq!(a.value.to_bits(), b.value.to_bits());
            }
            assert_eq!(
                merged.total_iterations(),
                single.iter().map(|r| r.iterations).sum::<u64>()
            );
        }
    }

    #[test]
    fn merge_of_explicit_assignment_matches_single_run_bitwise() {
        let s = sweep("demo");
        let single = run_points(&s, &ShardSpec::FULL, None).unwrap();
        let dir = tmpdir("explicit");
        // A deliberately lopsided planner-style split of the 9-point
        // lattice, including ownership that round-robin would never
        // produce.
        let sets = [vec![8, 0], vec![1, 2, 3, 4, 5, 6, 7]];
        let paths: Vec<PathBuf> = sets
            .iter()
            .enumerate()
            .map(|(i, points)| {
                let shard = ShardSpec::owned(i as u32, sets.len() as u32, points.clone()).unwrap();
                let path = dir.join(format!("shard-{i}.jsonl"));
                run_points(&s, &shard, Some(&path)).unwrap();
                path
            })
            .collect();
        let merged = merge_checkpoints(&paths).unwrap();
        assert_eq!(merged.results.len(), single.len());
        for (a, b) in single.iter().zip(&merged.results) {
            assert_eq!(a.index, b.index);
            assert_eq!(a.value.to_bits(), b.value.to_bits());
        }
    }

    #[test]
    fn merge_of_steal_workers_matches_single_run_bitwise() {
        let s = sweep("demo");
        let single = run_points(&s, &ShardSpec::FULL, None).unwrap();
        let dir = tmpdir("steal-ok");
        // Three workers with uneven, interleaved batches — the shape a
        // work-stealing run produces. Worker w2 additionally re-solved
        // point 3 after a reclaim: bit-identical, so first-writer-wins
        // keeps w0's copy silently.
        let paths = vec![
            write_worker(&s, &dir, "w0", &[0, 3, 6, 8], 0.0),
            write_worker(&s, &dir, "w1", &[1, 2], 0.0),
            write_worker(&s, &dir, "w2", &[3, 4, 5, 7], 0.0),
        ];
        let merged = merge_checkpoints(&paths).unwrap();
        assert_eq!(merged.results.len(), single.len());
        assert_eq!(merged.sources, 3);
        assert!(merged.manifest.origin.is_steal());
        for (a, b) in single.iter().zip(&merged.results) {
            assert_eq!(a.index, b.index);
            assert_eq!(a.value.to_bits(), b.value.to_bits());
        }
    }

    #[test]
    fn steal_duplicate_with_different_bits_is_rejected_with_coords() {
        let s = sweep("demo");
        let dir = tmpdir("steal-mismatch");
        let paths = vec![
            write_worker(&s, &dir, "w0", &[0, 1, 2, 3, 4], 0.0),
            // Same point 4, value perturbed by one ulp-ish amount.
            write_worker(&s, &dir, "w1", &[4, 5, 6, 7, 8], 1e-13),
        ];
        let err = merge_checkpoints(&paths).unwrap_err();
        match err {
            SweepError::DuplicateMismatch {
                index,
                coords,
                first,
                second,
                first_value,
                second_value,
            } => {
                assert_eq!(index, 4);
                // Coordinates decode from the embedded axes: point 4
                // of the 3×3 row-major lattice is (b=1.0, tc=5.0).
                assert_eq!(coords, vec![1.0, 5.0]);
                assert_eq!(first, paths[0]);
                assert_eq!(second, paths[1]);
                assert_ne!(first_value.to_bits(), second_value.to_bits());
            }
            other => panic!("expected DuplicateMismatch, got {other:?}"),
        }
    }

    #[test]
    fn steal_merge_rejects_missing_points_and_mixed_modes() {
        let s = sweep("demo");
        let dir = tmpdir("steal-bad");
        // Point 5 never solved by anyone.
        let gappy = vec![
            write_worker(&s, &dir, "w0", &[0, 1, 2, 3], 0.0),
            write_worker(&s, &dir, "w1", &[4, 6, 7, 8], 0.0),
        ];
        assert!(matches!(
            merge_checkpoints(&gappy).unwrap_err(),
            SweepError::MissingPoints {
                missing: 1,
                first: 5
            }
        ));
        // A static shard file cannot slip into a steal merge.
        let shard_path = dir.join("shard.jsonl");
        run_points(&s, &ShardSpec::new(0, 2).unwrap(), Some(&shard_path)).unwrap();
        let mixed = vec![gappy[0].clone(), shard_path];
        assert!(matches!(
            merge_checkpoints(&mixed).unwrap_err(),
            SweepError::ManifestMismatch { field: "mode", .. }
        ));
    }

    #[test]
    fn merge_rejects_overlapping_and_gappy_explicit_assignments() {
        let s = sweep("demo");
        let dir = tmpdir("explicit-bad");
        let run_owned = |name: &str, i: u32, n: u32, points: Vec<usize>| {
            let shard = ShardSpec::owned(i, n, points).unwrap();
            let path = dir.join(format!("{name}.jsonl"));
            run_points(&s, &shard, Some(&path)).unwrap();
            path
        };

        // Point 4 owned by both shards: the error names both files and
        // the lattice coordinates, not just the bare index.
        let overlap = [
            run_owned("ov-0", 0, 2, vec![0, 1, 2, 3, 4]),
            run_owned("ov-1", 1, 2, vec![4, 5, 6, 7, 8]),
        ];
        match merge_checkpoints(&overlap).unwrap_err() {
            SweepError::DuplicateAcrossShards {
                index,
                coords,
                first,
                second,
            } => {
                assert_eq!(index, 4);
                assert_eq!(coords, vec![1.0, 5.0]);
                assert_eq!(first, overlap[0]);
                assert_eq!(second, overlap[1]);
            }
            other => panic!("expected DuplicateAcrossShards, got {other:?}"),
        }

        // Point 4 owned by neither.
        let gappy = [
            run_owned("gap-0", 0, 2, vec![0, 1, 2, 3]),
            run_owned("gap-1", 1, 2, vec![5, 6, 7, 8]),
        ];
        assert!(matches!(
            merge_checkpoints(&gappy).unwrap_err(),
            SweepError::MissingPoints {
                missing: 1,
                first: 4
            }
        ));
    }

    #[test]
    fn merge_rejects_incomplete_and_mixed_sets() {
        let s = sweep("demo");
        let dir = tmpdir("reject");
        let paths = run_shards(&s, &dir, 3);

        assert_eq!(merge_checkpoints(&[]), Err(SweepError::NoCheckpoints));

        let err = merge_checkpoints(&paths[..2]).unwrap_err();
        assert_eq!(
            err,
            SweepError::IncompleteShardSet {
                expected: 3,
                found: vec![0, 1],
            }
        );

        let err = merge_checkpoints(&[paths[0].clone(), paths[1].clone(), paths[1].clone()])
            .unwrap_err();
        assert!(matches!(err, SweepError::DuplicateAcrossShards { .. }));

        // A shard solved under a different plan cannot slip in.
        let other = sweep("other_figure");
        let other_dir = dir.join("other");
        std::fs::create_dir_all(&other_dir).unwrap();
        let other_paths = run_shards(&other, &other_dir, 3);
        let err = merge_checkpoints(&[
            paths[0].clone(),
            paths[1].clone(),
            other_paths[2].clone(),
        ])
        .unwrap_err();
        assert!(matches!(
            err,
            SweepError::ManifestMismatch { field: "figure", .. }
        ));
    }

    #[test]
    fn merge_reports_missing_points_from_interrupted_shard() {
        let s = sweep("demo");
        let dir = tmpdir("missing");
        let paths = run_shards(&s, &dir, 2);
        // Drop the last point line of shard 1, as if it was killed
        // before finishing and merged without a resume.
        let text = std::fs::read_to_string(&paths[1]).unwrap();
        let kept: Vec<&str> = text.lines().collect();
        std::fs::write(&paths[1], format!("{}\n", kept[..kept.len() - 1].join("\n"))).unwrap();
        let err = merge_checkpoints(&paths).unwrap_err();
        assert!(matches!(err, SweepError::MissingPoints { missing: 1, .. }));
    }
}
