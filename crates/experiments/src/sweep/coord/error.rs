//! Typed failures for the work-stealing coordinator and its clients.

use std::fmt;

use crate::sweep::SweepError;

/// A failure in the lease/heartbeat protocol or its transport.
#[derive(Debug, Clone, PartialEq)]
pub enum CoordError {
    /// A socket-level failure (bind, connect, read, write, timeout).
    Io {
        /// What was being attempted.
        context: String,
        /// The rendered `std::io::Error` message.
        message: String,
    },
    /// The peer sent a line that is not a valid protocol message.
    Protocol {
        /// What was wrong with it.
        reason: String,
    },
    /// The coordinator is serving a different sweep than the worker
    /// was asked to run (figure, plan hash, or profile disagree).
    Mismatch {
        /// The disagreeing field.
        field: String,
        /// What the responding side serves.
        expected: String,
        /// What the requesting side asked for.
        found: String,
    },
    /// The coordinator could not be reached after bounded retries with
    /// backoff.
    Unreachable {
        /// The endpoint that was tried.
        endpoint: String,
        /// How many connection attempts were made.
        attempts: u32,
        /// The last connection error seen.
        last_error: String,
    },
    /// A checkpoint-layer failure while the worker streamed results.
    Sweep(SweepError),
}

impl fmt::Display for CoordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoordError::Io { context, message } => {
                write!(f, "coordinator I/O error while {context}: {message}")
            }
            CoordError::Protocol { reason } => {
                write!(f, "coordinator protocol violation: {reason}")
            }
            CoordError::Mismatch {
                field,
                expected,
                found,
            } => write!(
                f,
                "coordinator sweep mismatch on {field}: coordinator serves \
                 {expected}, worker was asked to run {found}"
            ),
            CoordError::Unreachable {
                endpoint,
                attempts,
                last_error,
            } => write!(
                f,
                "coordinator at {endpoint} unreachable after {attempts} attempts \
                 (last error: {last_error})"
            ),
            CoordError::Sweep(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CoordError {}

impl From<SweepError> for CoordError {
    fn from(e: SweepError) -> Self {
        CoordError::Sweep(e)
    }
}

impl CoordError {
    /// Wraps an OS error with a short description of the attempted
    /// operation (renders the message eagerly so the variant stays
    /// comparable).
    pub fn io(context: impl Into<String>, err: &std::io::Error) -> CoordError {
        CoordError::Io {
            context: context.into(),
            message: err.to_string(),
        }
    }

    /// A protocol violation with the given reason.
    pub fn protocol(reason: impl Into<String>) -> CoordError {
        CoordError::Protocol {
            reason: reason.into(),
        }
    }
}
