//! Crash-tolerant work-stealing coordination for sweep execution.
//!
//! The static `--shard`/`--assignment` machinery splits a sweep *ahead
//! of time*; this module splits it *as it runs*. A single
//! **coordinator** (the `sweep_coord` binary) holds the plan's point
//! batches in a lease table and hands them to whichever worker asks
//! next; workers (figure binaries in `--steal` mode) **lease** a batch,
//! **heartbeat** while solving it, stream results to their own
//! append-only checkpoints, and report completion. A worker that
//! crashes, wedges, or merely stops heartbeating loses its lease after
//! a TTL: the batch is **reclaimed** and re-issued under a higher
//! epoch, so the sweep always drains as long as one worker survives.
//!
//! Every piece of state that matters is durable and append-only:
//!
//! * worker results live in ordinary steal-origin checkpoints, merged
//!   with first-writer-wins dedup (bit-equality asserted on overlap);
//! * the lease table itself journals every grant/reclaim/done to a
//!   **lease log**, so a killed coordinator restarts from the log and
//!   live workers never notice (they reconnect with backoff and keep
//!   heartbeating the same lease).
//!
//! The wire protocol ([`proto`]) is one JSON line per request over
//! localhost TCP or a Unix socket; see `docs/DESIGN.md` §12 for the
//! full protocol contract and failure matrix.

pub mod batch;
pub mod client;
pub mod error;
pub mod fleet;
pub mod lease;
pub mod proto;
pub mod server;

pub use batch::{plan_batches, simulate_steal_makespan, static_makespan, DEFAULT_BATCH_POINTS};
pub use client::{run_steal, worker_identity, ChaosConfig, StealOptions, StealSummary};
pub use error::CoordError;
pub use fleet::FleetRegistry;
pub use lease::{
    default_batches, CompleteDecision, HeartbeatDecision, LeaseConfig, LeaseDecision, LeaseTable,
};
pub use proto::{
    trace_id, Endpoint, Listener, Request, Response, StatusReport, WorkerReport, WorkerStatus,
};
pub use server::{CoordOptions, CoordServer, CoordSummary};
