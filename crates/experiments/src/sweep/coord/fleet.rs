//! The coordinator's fleet-wide metrics fold and worker roster.
//!
//! Workers piggyback cumulative-per-incarnation [`WorkerReport`]s on
//! heartbeats and completions (see [`proto`](super::proto)); this
//! module folds them into one [`FleetRegistry`] that can answer the
//! `status` query: per-worker last-seen, points/sec, outstanding
//! lease, and a predicted time-to-finish derived from the **live**
//! `sweep.solve_us` stream — the reporting-side replacement for the
//! static `--cost-from` pricing.
//!
//! ## Why cumulative snapshots, not deltas
//!
//! The wire loses messages (a worker re-sends a heartbeat whose ack
//! died) and workers restart (a killed process re-leases under the
//! same identity). Raw deltas double-count on redelivery; raw
//! cumulative-replace forgets the pre-crash contribution on restart.
//! The fold here keeps, per worker, a **settled** snapshot (the sum of
//! all dead incarnations) and a **live** one (the latest snapshot of
//! the current incarnation, replaced — never added — when a higher
//! sequence number arrives):
//!
//! * same incarnation, higher `seq` → replace `live` (idempotent on
//!   redelivery, monotone under reordering);
//! * new incarnation → merge `live` into `settled`, then start the new
//!   `live` (restart-tolerant);
//! * stale or duplicate `seq` → dropped.
//!
//! A worker's total is `settled ⊕ live`; the fleet total merges every
//! worker's total with [`MetricsSnapshot::merge`] (histograms add
//! bucket-wise, exactly as [`LogHistogram::merge`] does in-process).
//!
//! [`LogHistogram::merge`]: lrd_obs::LogHistogram::merge

use std::collections::BTreeMap;

use lrd_obs::MetricsSnapshot;

use super::proto::{WorkerReport, WorkerStatus};

/// The counter a worker reports its solved-point total under.
pub const POINTS_COUNTER: &str = "sweep.points";
/// The histogram a worker reports per-point solve durations under.
pub const SOLVE_US_HISTOGRAM: &str = "sweep.solve_us";

#[derive(Debug, Default)]
struct WorkerEntry {
    /// Sum of every finished incarnation's final snapshot.
    settled: MetricsSnapshot,
    /// Latest snapshot of the current incarnation.
    live: MetricsSnapshot,
    live_incarnation: String,
    live_seq: u64,
    first_seen_us: u64,
    last_seen_us: u64,
    lease: Option<usize>,
    reports: u64,
}

impl WorkerEntry {
    fn total(&self) -> MetricsSnapshot {
        let mut total = self.settled.clone();
        total.merge(&self.live);
        total
    }
}

/// Per-worker report folds plus the roster bookkeeping behind the
/// coordinator's `status` response.
#[derive(Debug, Default)]
pub struct FleetRegistry {
    workers: BTreeMap<String, WorkerEntry>,
}

impl FleetRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a contact from `worker` at `now_us` (any lease,
    /// heartbeat, or complete request), creating the roster entry on
    /// first sight.
    pub fn observe(&mut self, worker: &str, now_us: u64) {
        let entry = self
            .workers
            .entry(worker.to_string())
            .or_insert_with(|| WorkerEntry {
                first_seen_us: now_us,
                ..WorkerEntry::default()
            });
        entry.last_seen_us = entry.last_seen_us.max(now_us);
    }

    /// Updates which batch `worker` holds a lease on (`None` clears).
    pub fn set_lease(&mut self, worker: &str, lease: Option<usize>) {
        if let Some(entry) = self.workers.get_mut(worker) {
            entry.lease = lease;
        }
    }

    /// Folds one piggybacked report. Returns `true` when the report
    /// advanced the fold, `false` when it was a stale or duplicate
    /// delivery (same incarnation, `seq` not above the highest seen) —
    /// redelivering any prefix of the report stream is a no-op.
    pub fn fold(&mut self, worker: &str, report: &WorkerReport, now_us: u64) -> bool {
        self.observe(worker, now_us);
        let entry = self.workers.get_mut(worker).expect("observed above");
        if entry.live_incarnation != report.incarnation {
            // A respawned worker process: its predecessor will never
            // report again, so its last snapshot becomes settled.
            let live = std::mem::take(&mut entry.live);
            entry.settled.merge(&live);
            report.incarnation.clone_into(&mut entry.live_incarnation);
        } else if report.seq <= entry.live_seq && entry.reports > 0 {
            return false;
        }
        entry.live = report.snapshot.clone();
        entry.live_seq = report.seq;
        entry.reports += 1;
        true
    }

    /// The named worker's folded total (settled ⊕ live), if it ever
    /// contacted the coordinator.
    pub fn worker_total(&self, worker: &str) -> Option<MetricsSnapshot> {
        self.workers.get(worker).map(WorkerEntry::total)
    }

    /// The fleet-wide fold: every worker's total merged into one
    /// snapshot.
    pub fn fleet_total(&self) -> MetricsSnapshot {
        let mut fleet = MetricsSnapshot::new();
        for entry in self.workers.values() {
            fleet.merge(&entry.total());
        }
        fleet
    }

    /// Reports folded across the fleet (for telemetry counters).
    pub fn reports(&self) -> u64 {
        self.workers.values().map(|e| e.reports).sum()
    }

    /// The roster rows for a `status` response. `now_us` supplies the
    /// clock for last-seen ages and throughput windows;
    /// `batch_remaining(batch)` reports how many points of the
    /// worker's outstanding lease are still unsolved (the batch size
    /// is a fine answer — prediction errs conservative).
    pub fn roster(
        &self,
        now_us: u64,
        mut batch_remaining: impl FnMut(usize) -> usize,
    ) -> Vec<WorkerStatus> {
        self.workers
            .iter()
            .map(|(worker, entry)| {
                let total = entry.total();
                let points = total.counter(POINTS_COUNTER);
                let window_us = entry.last_seen_us.saturating_sub(entry.first_seen_us);
                let points_per_sec = if window_us > 0 {
                    points as f64 / (window_us as f64 / 1e6)
                } else {
                    0.0
                };
                // The live cost model: the worker's own measured mean
                // solve duration prices its outstanding lease.
                let mean_solve_us = total
                    .histogram(SOLVE_US_HISTOGRAM)
                    .map(|h| h.mean())
                    .filter(|m| m.is_finite())
                    .unwrap_or(0.0);
                let lease_remaining_us = entry
                    .lease
                    .map(|batch| batch_remaining(batch) as f64 * mean_solve_us)
                    .unwrap_or(0.0);
                WorkerStatus {
                    worker: worker.clone(),
                    last_seen_us: now_us.saturating_sub(entry.last_seen_us),
                    points,
                    points_per_sec,
                    lease: entry.lease,
                    lease_remaining_us,
                    reports: entry.reports,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(incarnation: &str, seq: u64, points: u64, solve_us: &[f64]) -> WorkerReport {
        let mut snapshot = MetricsSnapshot::new();
        snapshot.add_counter(POINTS_COUNTER, points);
        for &us in solve_us {
            snapshot.record_histogram(SOLVE_US_HISTOGRAM, us);
        }
        WorkerReport {
            incarnation: incarnation.to_string(),
            seq,
            snapshot,
        }
    }

    #[test]
    fn redelivered_reports_are_idempotent() {
        let mut fleet = FleetRegistry::new();
        assert!(fleet.fold("w-1", &report("i-a", 1, 3, &[10.0]), 100));
        assert!(fleet.fold("w-1", &report("i-a", 2, 7, &[10.0, 20.0]), 200));
        let before = fleet.fleet_total();

        // Redeliver both, out of order: neither changes the fold.
        assert!(!fleet.fold("w-1", &report("i-a", 1, 3, &[10.0]), 300));
        assert!(!fleet.fold("w-1", &report("i-a", 2, 7, &[10.0, 20.0]), 400));
        assert_eq!(fleet.fleet_total(), before);
        assert_eq!(before.counter(POINTS_COUNTER), 7);
        assert_eq!(before.histogram(SOLVE_US_HISTOGRAM).unwrap().count, 2);
    }

    #[test]
    fn respawn_settles_the_previous_incarnation() {
        let mut fleet = FleetRegistry::new();
        // First incarnation solves 5 points, then the process dies.
        fleet.fold("w-1", &report("i-a", 3, 5, &[10.0, 10.0]), 100);
        // The respawn starts its counters from zero.
        fleet.fold("w-1", &report("i-b", 1, 2, &[30.0]), 200);
        let total = fleet.worker_total("w-1").unwrap();
        assert_eq!(total.counter(POINTS_COUNTER), 7, "5 pre-crash + 2 fresh");
        assert_eq!(total.histogram(SOLVE_US_HISTOGRAM).unwrap().count, 3);
        // A seq-1 report from the *new* incarnation is not stale even
        // though the old one had reached seq 3.
        assert!(fleet.fold("w-1", &report("i-b", 2, 4, &[30.0, 40.0]), 300));
        assert_eq!(
            fleet.worker_total("w-1").unwrap().counter(POINTS_COUNTER),
            9
        );
    }

    #[test]
    fn fleet_total_merges_across_workers() {
        let mut fleet = FleetRegistry::new();
        fleet.fold("w-1", &report("i-a", 1, 3, &[8.0]), 100);
        fleet.fold("w-2", &report("i-b", 1, 4, &[128.0]), 100);
        let total = fleet.fleet_total();
        assert_eq!(total.counter(POINTS_COUNTER), 7);
        let h = total.histogram(SOLVE_US_HISTOGRAM).unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.min, 8.0);
        assert_eq!(h.max, 128.0);
    }

    #[test]
    fn roster_reports_throughput_lease_and_prediction() {
        let mut fleet = FleetRegistry::new();
        fleet.observe("w-1", 1_000_000);
        fleet.set_lease("w-1", Some(4));
        // 10 points over a 2-second contact window → 5 points/sec;
        // mean solve 100 µs over 3 remaining points → 300 µs left.
        fleet.fold("w-1", &report("i-a", 1, 10, &[100.0, 100.0]), 3_000_000);
        let roster = fleet.roster(3_500_000, |batch| {
            assert_eq!(batch, 4);
            3
        });
        assert_eq!(roster.len(), 1);
        let w = &roster[0];
        assert_eq!(w.worker, "w-1");
        assert_eq!(w.last_seen_us, 500_000);
        assert_eq!(w.points, 10);
        assert!((w.points_per_sec - 5.0).abs() < 1e-9, "{}", w.points_per_sec);
        assert_eq!(w.lease, Some(4));
        assert!((w.lease_remaining_us - 300.0).abs() < 1e-9);
        assert_eq!(w.reports, 1);

        // Completing the lease clears the prediction.
        fleet.set_lease("w-1", None);
        let roster = fleet.roster(3_500_000, |_| unreachable!("no lease to price"));
        assert_eq!(roster[0].lease, None);
        assert_eq!(roster[0].lease_remaining_us, 0.0);
    }

    #[test]
    fn observe_without_reports_keeps_an_empty_roster_row() {
        let mut fleet = FleetRegistry::new();
        fleet.observe("w-quiet", 50);
        let roster = fleet.roster(150, |_| 0);
        assert_eq!(roster.len(), 1);
        assert_eq!(roster[0].points, 0);
        assert_eq!(roster[0].reports, 0);
        assert_eq!(roster[0].last_seen_us, 100);
        assert!(fleet.fleet_total().is_empty());
    }
}
