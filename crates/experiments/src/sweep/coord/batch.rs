//! Cost-aware batch construction, and the scheduling models that
//! justify work-stealing over a static split.
//!
//! The coordinator hands out **batches** of lattice points rather than
//! single points so one lease round-trip amortises over several
//! solves, but keeps batches small enough that a crashed worker
//! strands little work and a fast worker can steal often. With a
//! [`CostProfile`](crate::sweep::CostProfile) from prior checkpoints,
//! batches are built to roughly equal *predicted cost* rather than
//! equal point count, so the queue drains evenly even when deep-loss
//! points dominate.

/// Default points per batch when the caller does not override it —
/// matches [`CHECKPOINT_CHUNK`](crate::sweep::CHECKPOINT_CHUNK) so one
/// batch is one checkpoint append.
pub const DEFAULT_BATCH_POINTS: usize = crate::sweep::CHECKPOINT_CHUNK;

/// Splits points `0..costs.len()` into contiguous-in-index batches of
/// roughly equal total cost, targeting `ceil(n / batch_points)`
/// batches. Every point lands in exactly one batch; no batch is empty.
///
/// Contiguity in stable index keeps batches cache- and
/// checkpoint-friendly; the *balance* comes from cutting the index
/// line where the cumulative cost crosses each batch's fair share, so
/// a run of expensive deep-loss points yields short batches and cheap
/// regions yield long ones.
pub fn plan_batches(costs: &[f64], batch_points: usize) -> Vec<Vec<usize>> {
    let n = costs.len();
    if n == 0 {
        return Vec::new();
    }
    let batch_points = batch_points.max(1);
    let target_batches = n.div_ceil(batch_points);
    let total: f64 = costs.iter().map(|c| c.max(0.0)).sum();
    let share = if total > 0.0 {
        total / target_batches as f64
    } else {
        f64::INFINITY
    };

    let mut batches: Vec<Vec<usize>> = Vec::with_capacity(target_batches);
    let mut current: Vec<usize> = Vec::new();
    let mut current_cost = 0.0;
    for (i, &c) in costs.iter().enumerate() {
        current.push(i);
        current_cost += c.max(0.0);
        let batches_left = target_batches.saturating_sub(batches.len() + 1);
        let points_left = n - i - 1;
        // Close the batch when it has its fair share of cost — unless
        // that would leave more batches to fill than points remain.
        if batches.len() + 1 < target_batches
            && (current_cost >= share || current.len() >= batch_points)
            && points_left > batches_left.saturating_sub(1)
            && points_left >= batches_left
        {
            batches.push(std::mem::take(&mut current));
            current_cost = 0.0;
        }
    }
    if !current.is_empty() {
        batches.push(current);
    }
    batches
}

/// Simulated makespan of work-stealing execution: list scheduling,
/// where each batch goes to the worker that frees up first.
/// `worker_speed[w]` is a cost multiplier (4.0 = four times slower).
/// This is the idealised model — no lease latency — but the protocol's
/// overhead is microseconds against solve times of milliseconds to
/// minutes, so it predicts real behaviour closely.
pub fn simulate_steal_makespan(
    batches: &[Vec<usize>],
    costs: &[f64],
    worker_speed: &[f64],
) -> f64 {
    let mut free_at = vec![0.0f64; worker_speed.len()];
    for batch in batches {
        let cost: f64 = batch.iter().map(|&p| costs[p].max(0.0)).sum();
        // The worker that frees up earliest takes the next batch.
        let (w, _) = free_at
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .expect("at least one worker");
        free_at[w] += cost * worker_speed[w];
    }
    free_at.into_iter().fold(0.0, f64::max)
}

/// Simulated makespan of a static split: each worker solves exactly
/// its pre-assigned point set, however long that takes.
pub fn static_makespan(assignment: &[Vec<usize>], costs: &[f64], worker_speed: &[f64]) -> f64 {
    assignment
        .iter()
        .zip(worker_speed)
        .map(|(points, speed)| points.iter().map(|&p| costs[p].max(0.0)).sum::<f64>() * speed)
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batches_partition_and_respect_target_count() {
        for n in [1usize, 2, 7, 8, 9, 56, 100] {
            let costs = vec![1.0; n];
            let batches = plan_batches(&costs, 8);
            assert_eq!(batches.len(), n.div_ceil(8), "n={n}");
            let mut seen = vec![false; n];
            for b in &batches {
                assert!(!b.is_empty());
                for &p in b {
                    assert!(!seen[p], "point {p} twice (n={n})");
                    seen[p] = true;
                }
            }
            assert!(seen.iter().all(|&s| s), "n={n}");
        }
        assert!(plan_batches(&[], 8).is_empty());
    }

    #[test]
    fn skewed_costs_produce_cost_balanced_batches() {
        // First 4 points are 50× the rest: equal-count batching would
        // put all the weight in batch 0.
        let mut costs = vec![1.0; 32];
        for c in costs.iter_mut().take(4) {
            *c = 50.0;
        }
        let batches = plan_batches(&costs, 8);
        assert_eq!(batches.len(), 4);
        let batch_costs: Vec<f64> = batches
            .iter()
            .map(|b| b.iter().map(|&p| costs[p]).sum())
            .collect();
        let max = batch_costs.iter().fold(0.0f64, |a, &b| a.max(b));
        let share: f64 = costs.iter().sum::<f64>() / 4.0;
        // No batch holds more than ~one expensive point beyond its
        // fair share.
        assert!(
            max <= share + 50.0,
            "batch costs {batch_costs:?} vs share {share}"
        );
    }

    #[test]
    fn straggler_makespan_steal_beats_static_split() {
        // The acceptance benchmark: one worker 4× slower than the
        // other, on the skewed cost surface a real sweep produces
        // (deep-loss corner points dominating). Work-stealing must be
        // strictly better than the best static LPT split computed from
        // the same cost profile — the static split is fixed before
        // anyone knows which *host* is slow, so the straggler drags
        // exactly its preassigned share, while stealing lets the fast
        // worker drain the queue.
        let n = 56; // fig04 full-profile lattice size
        let costs: Vec<f64> = (0..n)
            .map(|i| 1.0 + ((i * 7919) % 23) as f64 + if i % 9 == 0 { 40.0 } else { 0.0 })
            .collect();
        let speeds = [1.0, 4.0];

        // The static side gets every advantage: perfect knowledge of
        // every point's cost, LPT-packed into two balanced shards —
        // the same packing `sweep_plan` emits.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| costs[b].total_cmp(&costs[a]).then(a.cmp(&b)));
        let mut assignment: Vec<Vec<usize>> = vec![Vec::new(), Vec::new()];
        let mut loads = [0.0f64; 2];
        for p in order {
            let w = usize::from(loads[1] < loads[0]);
            assignment[w].push(p);
            loads[w] += costs[p];
        }
        // Try both host-to-shard mappings and take the better one —
        // stealing must beat even a lucky static placement.
        let static_best = static_makespan(&assignment, &costs, &speeds).min(static_makespan(
            &[assignment[1].clone(), assignment[0].clone()],
            &costs,
            &speeds,
        ));

        let batches = plan_batches(&costs, 8);
        let steal = simulate_steal_makespan(&batches, &costs, &speeds);

        assert!(
            steal < static_best,
            "steal makespan {steal} must beat best static {static_best}"
        );
    }

    #[test]
    fn steal_makespan_degenerates_to_static_with_one_worker() {
        let costs = vec![3.0, 1.0, 4.0, 1.0, 5.0];
        let batches = plan_batches(&costs, 2);
        let total: f64 = costs.iter().sum();
        assert!(
            (simulate_steal_makespan(&batches, &costs, &[2.0]) - total * 2.0).abs() < 1e-9
        );
    }
}
