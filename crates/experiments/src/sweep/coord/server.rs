//! The coordinator serve loop: a single-threaded nonblocking accept
//! loop over the lease table.
//!
//! One thread is enough because every request is a single tiny JSON
//! line and every decision is an in-memory table lookup — the solver
//! work all happens in the workers. Between accepts the loop scans for
//! expired leases, so reclaim latency is bounded by the poll interval
//! (~2 ms), not by the next incoming request.

use std::collections::BTreeSet;
use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use super::error::CoordError;
use super::fleet::FleetRegistry;
use super::lease::{CompleteDecision, HeartbeatDecision, LeaseConfig, LeaseDecision, LeaseTable};
use super::proto::{recv_line, send_line, trace_id, Endpoint, Listener, Request, Response};
use crate::sweep::{SweepError, SweepPlan};

/// How long the accept loop sleeps when no client is waiting.
const IDLE_POLL: Duration = Duration::from_millis(2);

/// Configuration for [`CoordServer::start`].
#[derive(Debug, Clone)]
pub struct CoordOptions {
    /// Where to listen (`host:port` or `unix:<path>`; TCP port 0 asks
    /// the OS for a free port, reported by [`CoordServer::endpoint`]).
    pub endpoint: Endpoint,
    /// Durable lease-log path. When the file already holds a lease
    /// log for this plan, the coordinator **resumes** it — completed
    /// batches stay completed, in-flight leases survive. `None` keeps
    /// the table in memory only (tests).
    pub lease_log: Option<std::path::PathBuf>,
    /// Lease timing.
    pub config: LeaseConfig,
    /// Points per batch (cost-weighted batches aim for this average).
    pub batch_points: usize,
    /// Optional per-point cost estimates (from a
    /// [`CostProfile`](crate::sweep::CostProfile)); batches are built
    /// to equal predicted cost when present.
    pub costs: Option<Vec<f64>>,
}

impl Default for CoordOptions {
    fn default() -> Self {
        CoordOptions {
            endpoint: Endpoint::Tcp("127.0.0.1:0".to_string()),
            lease_log: None,
            config: LeaseConfig::default(),
            batch_points: super::batch::DEFAULT_BATCH_POINTS,
            costs: None,
        }
    }
}

/// What the serve loop did, for the operator and the chaos harness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoordSummary {
    /// Total batches in the sweep.
    pub batches: usize,
    /// Total lattice points.
    pub points: usize,
    /// Lease grants issued (incl. re-issues).
    pub grants: u64,
    /// Leases reclaimed from expired workers.
    pub reclaims: u64,
    /// Whether the queue fully drained (false = shut down early).
    pub drained: bool,
}

/// A bound, ready-to-run coordinator.
pub struct CoordServer {
    listener: Listener,
    table: LeaseTable,
    stop: Arc<AtomicBool>,
}

impl CoordServer {
    /// Binds the endpoint and builds (or resumes) the lease table.
    ///
    /// With a lease log whose file already exists, the table is
    /// resumed from it — the restart path after a coordinator kill. A
    /// log whose manifest never flushed (torn) is discarded with a
    /// warning, exactly like a torn worker-checkpoint manifest.
    pub fn start(plan: &SweepPlan, options: CoordOptions) -> Result<CoordServer, CoordError> {
        let now = lrd_obs::now_us();
        let table = match &options.lease_log {
            Some(path) if path.exists() => {
                match LeaseTable::resume(plan, options.config, path, now) {
                    Ok(table) => table,
                    Err(CoordError::Sweep(SweepError::TornManifest { .. })) => {
                        eprintln!(
                            "warning: {}: lease log manifest is torn (previous coordinator \
                             was killed before its first flush); discarding and starting fresh",
                            path.display()
                        );
                        std::fs::remove_file(path).map_err(|e| {
                            CoordError::io(format!("removing {}", path.display()), &e)
                        })?;
                        let batches = super::lease::default_batches(
                            plan,
                            options.costs.as_deref(),
                            options.batch_points,
                        );
                        LeaseTable::new(plan, batches, options.config, Some(path))?
                    }
                    Err(e) => return Err(e),
                }
            }
            _ => {
                let batches = super::lease::default_batches(
                    plan,
                    options.costs.as_deref(),
                    options.batch_points,
                );
                LeaseTable::new(plan, batches, options.config, options.lease_log.as_deref())?
            }
        };
        let listener = Listener::bind(&options.endpoint)
            .map_err(|e| CoordError::io(format!("binding {}", options.endpoint), &e))?;
        Ok(CoordServer {
            listener,
            table,
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The endpoint actually bound (resolves TCP port 0).
    pub fn endpoint(&self) -> Endpoint {
        self.listener.local_endpoint()
    }

    /// A flag that makes [`CoordServer::run`] return at the next poll
    /// — the in-process equivalent of SIGKILLing the coordinator
    /// (nothing is flushed beyond what the lease log already holds).
    pub fn shutdown_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.stop)
    }

    /// Serves until the queue drains (and every worker that ever held
    /// a lease has been told so, or a linger cap passes), or until the
    /// shutdown flag is raised.
    pub fn run(mut self) -> Result<CoordSummary, CoordError> {
        let heartbeat_ms = self.table.config().heartbeat_ms;
        let lease_ttl_ms = self.table.config().lease_ttl_ms;
        // After draining, linger long enough for stragglers to ask one
        // more time and be told to exit; workers that died permanently
        // must not hold the coordinator open forever.
        let linger_us = (10 * lease_ttl_ms * 1000).max(5_000_000);
        // Seeded with the lease log's worker population (empty for a
        // fresh table): a worker named in a resumed log may be alive in
        // reconnect backoff, and exiting before it is told the queue
        // drained would strand it against a closed port. Workers that
        // are truly gone cost at most the linger cap, which exceeds the
        // client's worst-case retry span.
        let mut workers_seen: BTreeSet<String> = self.table.workers();
        let mut drain_acked: BTreeSet<String> = BTreeSet::new();
        let mut drained_at: Option<u64> = None;
        // The fleet fold behind `status` responses: piggybacked worker
        // reports, the roster, and the live cost model.
        let mut fleet = FleetRegistry::new();

        loop {
            if self.stop.load(Ordering::SeqCst) {
                let s = self.table.status();
                return Ok(CoordSummary {
                    batches: s.batches,
                    points: self.table.total_points(),
                    grants: self.table.grants(),
                    reclaims: s.reclaims,
                    drained: self.table.drained(),
                });
            }
            let now = lrd_obs::now_us();
            for (batch, worker, epoch) in self.table.reclaim_expired(now)? {
                eprintln!(
                    "coord: reclaimed batch {batch} (epoch {epoch}) from unresponsive \
                     worker {worker}"
                );
                fleet.set_lease(&worker, None);
                lrd_obs::event!(
                    "coord.lease_reclaimed",
                    batch = batch,
                    epoch = epoch,
                    worker = worker,
                    trace = trace_id(batch, epoch),
                );
                lrd_obs::counter("coord.reclaims", 1);
            }

            if self.table.drained() {
                let at = *drained_at.get_or_insert(now);
                // A coordinator resumed from an already-complete log
                // has seen no workers yet, which would make `all_acked`
                // vacuously true and close the port while the fleet is
                // still mid-reconnect-backoff — linger until at least
                // one straggler has been told the queue is drained (or
                // the cap passes; workers give up well after it).
                let all_acked = !workers_seen.is_empty()
                    && workers_seen.iter().all(|w| drain_acked.contains(w));
                if all_acked || now.saturating_sub(at) > linger_us {
                    let s = self.table.status();
                    return Ok(CoordSummary {
                        batches: s.batches,
                        points: self.table.total_points(),
                        grants: self.table.grants(),
                        reclaims: s.reclaims,
                        drained: true,
                    });
                }
            }

            let mut conn = match self.listener.accept() {
                Ok(conn) => conn,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(IDLE_POLL);
                    continue;
                }
                Err(e) => return Err(CoordError::io("accepting a connection", &e)),
            };
            // One request per connection; a peer that dies mid-exchange
            // costs us nothing but this iteration.
            let line = match recv_line(conn.as_mut()) {
                Ok(line) => line,
                Err(_) => continue,
            };
            let request = match Request::parse(&line) {
                Ok(request) => request,
                Err(e) => {
                    let _ = send_line(
                        conn.as_mut(),
                        &Response::Mismatch {
                            field: "request".to_string(),
                            expected: "a protocol request".to_string(),
                            found: e.to_string(),
                        }
                        .to_line(),
                    );
                    continue;
                }
            };
            let now = lrd_obs::now_us();
            let response = match request {
                Request::Lease {
                    figure,
                    plan_hash,
                    profile,
                    worker,
                    report,
                } => {
                    let (want_figure, want_hash, want_profile) = self.table.identity();
                    let mismatch = [
                        ("figure", want_figure.to_string(), figure),
                        ("plan_hash", want_hash.to_string(), plan_hash),
                        ("profile", want_profile.to_string(), profile),
                    ]
                    .into_iter()
                    .find(|(_, want, got)| want != got);
                    if let Some((field, expected, found)) = mismatch {
                        Response::Mismatch {
                            field: field.to_string(),
                            expected,
                            found,
                        }
                    } else {
                        workers_seen.insert(worker.clone());
                        if let Some(report) = &report {
                            if fleet.fold(&worker, report, now) {
                                lrd_obs::counter("coord.reports", 1);
                            }
                        } else {
                            fleet.observe(&worker, now);
                        }
                        match self.table.lease(&worker, now)? {
                            LeaseDecision::Grant {
                                batch,
                                epoch,
                                points,
                            } => {
                                let trace = trace_id(batch, epoch);
                                fleet.set_lease(&worker, Some(batch));
                                lrd_obs::event!(
                                    "coord.lease_granted",
                                    batch = batch,
                                    epoch = epoch,
                                    worker = worker,
                                    points = points.len(),
                                    trace = trace.clone(),
                                );
                                Response::Grant {
                                    batch,
                                    epoch,
                                    heartbeat_ms,
                                    points,
                                    trace,
                                }
                            }
                            LeaseDecision::Wait => Response::Wait {
                                backoff_ms: heartbeat_ms.max(10),
                            },
                            LeaseDecision::Drained => {
                                drain_acked.insert(worker);
                                Response::Drained
                            }
                        }
                    }
                }
                Request::Heartbeat {
                    worker,
                    batch,
                    epoch,
                    report,
                } => {
                    if let Some(report) = &report {
                        if fleet.fold(&worker, report, now) {
                            lrd_obs::counter("coord.reports", 1);
                        }
                    } else {
                        fleet.observe(&worker, now);
                    }
                    match self.table.heartbeat(&worker, batch, epoch, now) {
                        HeartbeatDecision::Alive { interval_us } => {
                            lrd_obs::histogram("coord.heartbeat_us", interval_us as f64);
                            Response::Ack
                        }
                        HeartbeatDecision::Expired => Response::Expired,
                    }
                }
                Request::Complete {
                    worker,
                    batch,
                    epoch,
                    report,
                } => {
                    if let Some(report) = &report {
                        if fleet.fold(&worker, report, now) {
                            lrd_obs::counter("coord.reports", 1);
                        }
                    } else {
                        fleet.observe(&worker, now);
                    }
                    match self.table.complete(&worker, batch, epoch)? {
                        CompleteDecision::Accepted | CompleteDecision::AcceptedStale => {
                            fleet.set_lease(&worker, None);
                            lrd_obs::event!(
                                "coord.batch_done",
                                batch = batch,
                                epoch = epoch,
                                worker = worker,
                                points = self.table.batch_len(batch),
                                trace = trace_id(batch, epoch),
                            );
                            Response::Ack
                        }
                        CompleteDecision::AlreadyDone => Response::Ack,
                        CompleteDecision::Stale => Response::Expired,
                    }
                }
                Request::Status => {
                    let mut status = self.table.status();
                    status.workers = fleet.roster(now, |batch| self.table.batch_len(batch));
                    status.fleet = fleet.fleet_total();
                    Response::Status(status)
                }
            };
            let _ = send_line(conn.as_mut(), &response.to_line());
        }
    }
}
