//! The wire protocol: one JSON line per request, one per response,
//! one request per connection.
//!
//! The framing is deliberately primitive — connection-per-request over
//! localhost TCP or a Unix socket, each side writing a single
//! newline-terminated JSON object built with the in-tree JSON layer.
//! There is no pipelining, no session state on the wire, and no
//! partial-read protocol to get wrong: every piece of durable state
//! lives in the coordinator's lease log and the workers' checkpoints,
//! so a connection dying at ANY byte loses nothing (the worker retries
//! with backoff; an unacknowledged `complete` is re-sent or resolved
//! as a duplicate at merge time).

use lrd_obs::{parse_json, write_json_string, Json, MetricsSnapshot};

use super::error::CoordError;

// The transport (endpoints, listeners, timeouts, line framing) lives
// in the shared `lrd-net` crate so the serving daemon can reuse it;
// these re-exports keep the historical coordinator-era import paths
// (`sweep::coord::proto::{connect, send_line, ...}`) working.
pub use lrd_net::{connect, recv_line, send_line, Conn, Endpoint, Listener, SetTimeouts};

/// A compact metrics report a worker piggybacks on heartbeats and
/// completions: the worker's **cumulative** [`MetricsSnapshot`] for
/// its current incarnation, sequence-numbered so redelivery (a re-sent
/// heartbeat after a lost ack) is idempotent at the coordinator.
///
/// Cumulative-per-incarnation beats raw deltas on an unreliable wire:
/// a lost or duplicated report never under- or over-counts, because
/// the coordinator replaces (not adds) the incarnation's live snapshot
/// and only *settles* it into the worker's total when a new
/// incarnation (a respawned worker process) appears.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WorkerReport {
    /// The reporting process incarnation (changes on respawn).
    pub incarnation: String,
    /// Monotonic per-incarnation sequence number; the coordinator
    /// keeps the highest seen and drops stale or duplicate deliveries.
    pub seq: u64,
    /// Cumulative metrics since this incarnation started.
    pub snapshot: MetricsSnapshot,
}

impl WorkerReport {
    fn write_json(&self, out: &mut String) {
        out.push_str("{\"incarnation\":");
        write_json_string(out, &self.incarnation);
        out.push_str(&format!(",\"seq\":{},\"snapshot\":", self.seq));
        self.snapshot.write_json(out);
        out.push('}');
    }

    fn from_json(json: &Json) -> Option<WorkerReport> {
        Some(WorkerReport {
            incarnation: json.get("incarnation")?.as_str()?.to_string(),
            seq: json.get("seq")?.as_u64()?,
            snapshot: MetricsSnapshot::from_json(json.get("snapshot")?)?,
        })
    }
}

/// A worker-to-coordinator message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Ask for a batch to solve. Carries the worker's sweep identity
    /// so a worker pointed at the wrong coordinator fails typed.
    Lease {
        /// Figure registry name the worker was asked to run.
        figure: String,
        /// [`SweepPlan::hash_hex`](crate::sweep::SweepPlan::hash_hex)
        /// of the worker's plan.
        plan_hash: String,
        /// Profile tag of the worker's plan.
        profile: String,
        /// The worker's stable identity.
        worker: String,
        /// Piggybacked metrics (absent from pre-report workers). A
        /// lease request follows every finished or abandoned batch and
        /// precedes the drain ack, so this carries the worker's final
        /// cumulative snapshot even when its last heartbeat was lost.
        report: Option<WorkerReport>,
    },
    /// Prove the worker holding `(batch, epoch)` is still alive.
    Heartbeat {
        /// The worker's stable identity.
        worker: String,
        /// The leased batch id.
        batch: usize,
        /// The lease epoch the worker holds.
        epoch: u64,
        /// Piggybacked metrics (absent from pre-report workers).
        report: Option<WorkerReport>,
    },
    /// Report that every point of `(batch, epoch)` is solved and
    /// durably appended to the worker's checkpoint.
    Complete {
        /// The worker's stable identity.
        worker: String,
        /// The leased batch id.
        batch: usize,
        /// The lease epoch the worker holds.
        epoch: u64,
        /// Piggybacked metrics (absent from pre-report workers).
        report: Option<WorkerReport>,
    },
    /// Ask for queue counters and the fleet roster (operator tooling;
    /// carries no identity and never affects drain bookkeeping).
    Status,
}

impl Request {
    /// Renders the request as one protocol line.
    pub fn to_line(&self) -> String {
        let mut out = String::from("{\"kind\":");
        match self {
            Request::Lease {
                figure,
                plan_hash,
                profile,
                worker,
                report,
            } => {
                out.push_str("\"lease\",\"figure\":");
                write_json_string(&mut out, figure);
                out.push_str(",\"plan_hash\":");
                write_json_string(&mut out, plan_hash);
                out.push_str(",\"profile\":");
                write_json_string(&mut out, profile);
                out.push_str(",\"worker\":");
                write_json_string(&mut out, worker);
                if let Some(report) = report {
                    out.push_str(",\"report\":");
                    report.write_json(&mut out);
                }
            }
            Request::Heartbeat {
                worker,
                batch,
                epoch,
                report,
            } => {
                out.push_str("\"heartbeat\",\"worker\":");
                write_json_string(&mut out, worker);
                out.push_str(&format!(",\"batch\":{batch},\"epoch\":{epoch}"));
                if let Some(report) = report {
                    out.push_str(",\"report\":");
                    report.write_json(&mut out);
                }
            }
            Request::Complete {
                worker,
                batch,
                epoch,
                report,
            } => {
                out.push_str("\"complete\",\"worker\":");
                write_json_string(&mut out, worker);
                out.push_str(&format!(",\"batch\":{batch},\"epoch\":{epoch}"));
                if let Some(report) = report {
                    out.push_str(",\"report\":");
                    report.write_json(&mut out);
                }
            }
            Request::Status => out.push_str("\"status\""),
        }
        out.push('}');
        out
    }

    /// Parses one protocol line into a request.
    pub fn parse(line: &str) -> Result<Request, CoordError> {
        let doc =
            parse_json(line).map_err(|e| CoordError::protocol(format!("bad request: {e}")))?;
        let str_field = |name: &str| {
            doc.get(name)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| CoordError::protocol(format!("request missing {name:?}")))
        };
        let int_field = |name: &str| {
            doc.get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| CoordError::protocol(format!("request missing {name:?}")))
        };
        match doc.get("kind").and_then(Json::as_str) {
            Some("lease") => Ok(Request::Lease {
                figure: str_field("figure")?,
                plan_hash: str_field("plan_hash")?,
                profile: str_field("profile")?,
                worker: str_field("worker")?,
                report: doc.get("report").and_then(WorkerReport::from_json),
            }),
            Some("heartbeat") => Ok(Request::Heartbeat {
                worker: str_field("worker")?,
                batch: int_field("batch")? as usize,
                epoch: int_field("epoch")?,
                report: doc.get("report").and_then(WorkerReport::from_json),
            }),
            Some("complete") => Ok(Request::Complete {
                worker: str_field("worker")?,
                batch: int_field("batch")? as usize,
                epoch: int_field("epoch")?,
                report: doc.get("report").and_then(WorkerReport::from_json),
            }),
            Some("status") => Ok(Request::Status),
            other => Err(CoordError::protocol(format!(
                "unknown request kind {other:?}"
            ))),
        }
    }
}

/// One roster row in a [`StatusReport`]: the coordinator's live view
/// of a worker, folded from its piggybacked [`WorkerReport`]s.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WorkerStatus {
    /// The worker's stable identity.
    pub worker: String,
    /// Microseconds since the worker last contacted the coordinator.
    pub last_seen_us: u64,
    /// Points the worker reports solved (its `sweep.points` counter).
    pub points: u64,
    /// Observed throughput in points per second (0 before the first
    /// two contacts).
    pub points_per_sec: f64,
    /// The batch the worker currently holds a lease on, if any.
    pub lease: Option<usize>,
    /// Predicted microseconds to finish the outstanding lease, from
    /// the live `sweep.solve_us` stream (0 without a lease or before
    /// any solve has been reported).
    pub lease_remaining_us: f64,
    /// Reports folded from this worker so far.
    pub reports: u64,
}

/// Queue counters and fleet roster returned for a [`Request::Status`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StatusReport {
    /// Total batches in the sweep.
    pub batches: usize,
    /// Batches completed and acknowledged.
    pub done: usize,
    /// Batches currently under a live lease.
    pub leased: usize,
    /// Leases reclaimed from expired workers so far.
    pub reclaims: u64,
    /// Total points in the sweep lattice.
    pub total_points: usize,
    /// Points covered by completed batches.
    pub done_points: usize,
    /// Per-worker roster (empty from pre-report coordinators).
    pub workers: Vec<WorkerStatus>,
    /// The fleet-wide metrics fold (all workers' reports merged).
    pub fleet: MetricsSnapshot,
}

/// A coordinator-to-worker message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// A lease: solve these points, heartbeat at least every
    /// `heartbeat_ms`, then send [`Request::Complete`].
    Grant {
        /// The leased batch id.
        batch: usize,
        /// The monotonic lease epoch (increments every re-issue).
        epoch: u64,
        /// The heartbeat interval the coordinator expects.
        heartbeat_ms: u64,
        /// Stable lattice indices of the batch's points.
        points: Vec<usize>,
        /// The trace id for this lease epoch
        /// ([`trace_id`]` (batch, epoch)`): workers stamp it on their
        /// batch spans so `sweep_trace` can join worker telemetry with
        /// the coordinator's lease ledger.
        trace: String,
    },
    /// Nothing available right now (all remaining batches are leased);
    /// retry after roughly `backoff_ms`.
    Wait {
        /// Suggested retry delay.
        backoff_ms: u64,
    },
    /// Every batch is done: the worker may exit.
    Drained,
    /// Heartbeat/complete acknowledged.
    Ack,
    /// The lease named in a heartbeat/complete is no longer held by
    /// this worker (it expired and was reclaimed, possibly re-issued).
    Expired,
    /// The worker's sweep identity does not match the one served.
    Mismatch {
        /// The disagreeing field.
        field: String,
        /// What the coordinator serves.
        expected: String,
        /// What the worker asked for.
        found: String,
    },
    /// Queue counters.
    Status(StatusReport),
}

/// The canonical trace id of lease epoch `epoch` on `batch` —
/// `t<batch>.<epoch>`. Deterministic on both sides of the wire, so the
/// lease ledger and worker telemetry join on it without storing it.
pub fn trace_id(batch: usize, epoch: u64) -> String {
    format!("t{batch}.{epoch}")
}

impl Response {
    /// Renders the response as one protocol line.
    pub fn to_line(&self) -> String {
        let mut out = String::from("{\"kind\":");
        match self {
            Response::Grant {
                batch,
                epoch,
                heartbeat_ms,
                points,
                trace,
            } => {
                out.push_str(&format!(
                    "\"grant\",\"batch\":{batch},\"epoch\":{epoch},\
                     \"heartbeat_ms\":{heartbeat_ms},\"trace\":"
                ));
                write_json_string(&mut out, trace);
                out.push_str(",\"points\":[");
                for (i, p) in points.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&p.to_string());
                }
                out.push(']');
            }
            Response::Wait { backoff_ms } => {
                out.push_str(&format!("\"wait\",\"backoff_ms\":{backoff_ms}"));
            }
            Response::Drained => out.push_str("\"drained\""),
            Response::Ack => out.push_str("\"ack\""),
            Response::Expired => out.push_str("\"expired\""),
            Response::Mismatch {
                field,
                expected,
                found,
            } => {
                out.push_str("\"mismatch\",\"field\":");
                write_json_string(&mut out, field);
                out.push_str(",\"expected\":");
                write_json_string(&mut out, expected);
                out.push_str(",\"found\":");
                write_json_string(&mut out, found);
            }
            Response::Status(s) => {
                out.push_str(&format!(
                    "\"status\",\"batches\":{},\"done\":{},\"leased\":{},\"reclaims\":{},\
                     \"total_points\":{},\"done_points\":{},\"workers\":[",
                    s.batches, s.done, s.leased, s.reclaims, s.total_points, s.done_points
                ));
                for (i, w) in s.workers.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str("{\"worker\":");
                    write_json_string(&mut out, &w.worker);
                    out.push_str(&format!(
                        ",\"last_seen_us\":{},\"points\":{},\"points_per_sec\":",
                        w.last_seen_us, w.points
                    ));
                    lrd_obs::write_json_f64(&mut out, w.points_per_sec);
                    match w.lease {
                        Some(batch) => out.push_str(&format!(",\"lease\":{batch}")),
                        None => out.push_str(",\"lease\":null"),
                    }
                    out.push_str(",\"lease_remaining_us\":");
                    lrd_obs::write_json_f64(&mut out, w.lease_remaining_us);
                    out.push_str(&format!(",\"reports\":{}}}", w.reports));
                }
                out.push_str("],\"fleet\":");
                s.fleet.write_json(&mut out);
            }
        }
        out.push('}');
        out
    }

    /// Parses one protocol line into a response.
    pub fn parse(line: &str) -> Result<Response, CoordError> {
        let doc =
            parse_json(line).map_err(|e| CoordError::protocol(format!("bad response: {e}")))?;
        let int_field = |name: &str| {
            doc.get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| CoordError::protocol(format!("response missing {name:?}")))
        };
        let str_field = |name: &str| {
            doc.get(name)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| CoordError::protocol(format!("response missing {name:?}")))
        };
        match doc.get("kind").and_then(Json::as_str) {
            Some("grant") => {
                let points = doc
                    .get("points")
                    .and_then(Json::as_array)
                    .and_then(|items| {
                        items
                            .iter()
                            .map(|v| v.as_u64().map(|p| p as usize))
                            .collect::<Option<Vec<usize>>>()
                    })
                    .ok_or_else(|| CoordError::protocol("grant missing point list"))?;
                let batch = int_field("batch")? as usize;
                let epoch = int_field("epoch")?;
                Ok(Response::Grant {
                    batch,
                    epoch,
                    heartbeat_ms: int_field("heartbeat_ms")?,
                    points,
                    // Absent from pre-trace coordinators: reconstruct
                    // the canonical id (it is a pure function of the
                    // lease).
                    trace: doc
                        .get("trace")
                        .and_then(Json::as_str)
                        .map(str::to_string)
                        .unwrap_or_else(|| trace_id(batch, epoch)),
                })
            }
            Some("wait") => Ok(Response::Wait {
                backoff_ms: int_field("backoff_ms")?,
            }),
            Some("drained") => Ok(Response::Drained),
            Some("ack") => Ok(Response::Ack),
            Some("expired") => Ok(Response::Expired),
            Some("mismatch") => Ok(Response::Mismatch {
                field: str_field("field")?,
                expected: str_field("expected")?,
                found: str_field("found")?,
            }),
            Some("status") => {
                // The roster and fleet fold are optional so a status
                // line from a pre-report coordinator still parses.
                let opt_int =
                    |name: &str| doc.get(name).and_then(Json::as_u64).unwrap_or(0) as usize;
                let mut workers = Vec::new();
                for w in doc
                    .get("workers")
                    .and_then(Json::as_array)
                    .unwrap_or(&[])
                {
                    workers.push(WorkerStatus {
                        worker: w
                            .get("worker")
                            .and_then(Json::as_str)
                            .ok_or_else(|| CoordError::protocol("roster row missing worker"))?
                            .to_string(),
                        last_seen_us: w.get("last_seen_us").and_then(Json::as_u64).unwrap_or(0),
                        points: w.get("points").and_then(Json::as_u64).unwrap_or(0),
                        points_per_sec: w
                            .get("points_per_sec")
                            .and_then(Json::as_num)
                            .unwrap_or(0.0),
                        lease: w.get("lease").and_then(Json::as_u64).map(|b| b as usize),
                        lease_remaining_us: w
                            .get("lease_remaining_us")
                            .and_then(Json::as_num)
                            .unwrap_or(0.0),
                        reports: w.get("reports").and_then(Json::as_u64).unwrap_or(0),
                    });
                }
                Ok(Response::Status(StatusReport {
                    batches: int_field("batches")? as usize,
                    done: int_field("done")? as usize,
                    leased: int_field("leased")? as usize,
                    reclaims: int_field("reclaims")?,
                    total_points: opt_int("total_points"),
                    done_points: opt_int("done_points"),
                    workers,
                    fleet: doc
                        .get("fleet")
                        .and_then(MetricsSnapshot::from_json)
                        .unwrap_or_default(),
                }))
            }
            other => Err(CoordError::protocol(format!(
                "unknown response kind {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let cases = vec![
            Request::Lease {
                figure: "fig04_mtv_model".to_string(),
                plan_hash: "0123456789abcdef".to_string(),
                profile: "quick".to_string(),
                worker: "w-1a2b".to_string(),
                report: None,
            },
            Request::Heartbeat {
                worker: "w \"quoted\"".to_string(),
                batch: 3,
                epoch: 17,
                report: None,
            },
            Request::Heartbeat {
                worker: "w-1a2b".to_string(),
                batch: 3,
                epoch: 17,
                report: Some(sample_report()),
            },
            Request::Complete {
                worker: "w-1a2b".to_string(),
                batch: 0,
                epoch: 1,
                report: None,
            },
            Request::Complete {
                worker: "w-1a2b".to_string(),
                batch: 0,
                epoch: 1,
                report: Some(sample_report()),
            },
            Request::Status,
        ];
        for req in cases {
            let line = req.to_line();
            assert_eq!(Request::parse(&line).unwrap(), req, "{line}");
        }
        assert!(Request::parse("{\"kind\":\"gimme\"}").is_err());
        assert!(Request::parse("not json").is_err());

        // A pre-report heartbeat line (no "report" member) still
        // parses — rolling fleet upgrades must not wedge.
        let legacy = "{\"kind\":\"heartbeat\",\"worker\":\"w\",\"batch\":1,\"epoch\":2}";
        assert_eq!(
            Request::parse(legacy).unwrap(),
            Request::Heartbeat {
                worker: "w".to_string(),
                batch: 1,
                epoch: 2,
                report: None,
            }
        );
    }

    fn sample_report() -> WorkerReport {
        let mut snapshot = MetricsSnapshot::new();
        snapshot.add_counter("sweep.points", 12);
        snapshot.add_counter("sweep.hb_sent", 40);
        snapshot.record_histogram("sweep.solve_us", 1500.0);
        snapshot.record_histogram("sweep.solve_us", 96000.0);
        WorkerReport {
            incarnation: "i-77-abc".to_string(),
            seq: 9,
            snapshot,
        }
    }

    #[test]
    fn responses_round_trip() {
        let cases = vec![
            Response::Grant {
                batch: 2,
                epoch: 5,
                heartbeat_ms: 500,
                points: vec![0, 7, 12],
                trace: trace_id(2, 5),
            },
            Response::Grant {
                batch: 0,
                epoch: 1,
                heartbeat_ms: 50,
                points: vec![],
                trace: trace_id(0, 1),
            },
            Response::Wait { backoff_ms: 40 },
            Response::Drained,
            Response::Ack,
            Response::Expired,
            Response::Mismatch {
                field: "plan_hash".to_string(),
                expected: "aaaa".to_string(),
                found: "bbbb".to_string(),
            },
            Response::Status(StatusReport {
                batches: 7,
                done: 3,
                leased: 2,
                reclaims: 1,
                ..StatusReport::default()
            }),
            Response::Status(StatusReport {
                batches: 7,
                done: 3,
                leased: 2,
                reclaims: 1,
                total_points: 56,
                done_points: 24,
                workers: vec![
                    WorkerStatus {
                        worker: "w-1".to_string(),
                        last_seen_us: 120,
                        points: 24,
                        points_per_sec: 3.5,
                        lease: Some(4),
                        lease_remaining_us: 2.5e6,
                        reports: 11,
                    },
                    WorkerStatus {
                        worker: "w-2".to_string(),
                        lease: None,
                        ..WorkerStatus::default()
                    },
                ],
                fleet: sample_report().snapshot,
            }),
        ];
        for resp in cases {
            let line = resp.to_line();
            assert_eq!(Response::parse(&line).unwrap(), resp, "{line}");
        }
        assert!(Response::parse("{\"kind\":\"grant\"}").is_err());

        // Pre-trace / pre-roster lines still parse: the trace id is
        // reconstructed and the roster defaults empty.
        let legacy_grant =
            "{\"kind\":\"grant\",\"batch\":3,\"epoch\":2,\"heartbeat_ms\":500,\"points\":[1,2]}";
        match Response::parse(legacy_grant).unwrap() {
            Response::Grant { trace, .. } => assert_eq!(trace, "t3.2"),
            other => panic!("expected grant, got {other:?}"),
        }
        let legacy_status =
            "{\"kind\":\"status\",\"batches\":7,\"done\":3,\"leased\":2,\"reclaims\":1}";
        match Response::parse(legacy_status).unwrap() {
            Response::Status(s) => {
                assert_eq!(s.batches, 7);
                assert!(s.workers.is_empty());
                assert!(s.fleet.is_empty());
            }
            other => panic!("expected status, got {other:?}"),
        }
    }

}
