//! The worker side of work-stealing: lease a batch, heartbeat while
//! solving, stream results to this worker's own checkpoint, complete,
//! repeat until the queue drains.
//!
//! The worker's checkpoint is the only place its solved values live —
//! the coordinator never sees a result, only batch lifecycle messages.
//! That keeps the crash story simple: whatever the worker durably
//! appended before dying is merged; whatever it did not is re-solved by
//! whoever takes over the reclaimed lease, and the overlap (if the
//! original worker had appended points the coordinator re-issued)
//! resolves first-writer-wins at merge with bit-equality asserted.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

use lrd_obs::{HistogramSnapshot, LogHistogram, MetricsSnapshot};
use lrd_rng::rngs::SmallRng;
use lrd_rng::{Rng, SeedableRng};

use super::error::CoordError;
use super::fleet::{POINTS_COUNTER, SOLVE_US_HISTOGRAM};
use super::proto::{connect, recv_line, send_line, Endpoint, Request, Response, WorkerReport};
use crate::sweep::checkpoint::{open_checkpoint, CheckpointOrigin};
use crate::sweep::runner::{append_with_retry, wave_chunks, FigureSweep, WarmPool};
use crate::sweep::{point_line, PointSpec, CHECKPOINT_CHUNK};

/// Fault injection for the chaos harness: deliberately mistreat the
/// heartbeat channel. Zeroed in production ([`ChaosConfig::none`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosConfig {
    /// Probability that any given heartbeat is silently dropped.
    pub heartbeat_drop: f64,
    /// Extra delay injected before each heartbeat is sent.
    pub heartbeat_delay_ms: u64,
    /// Seed for the injection RNG (deterministic chaos).
    pub seed: u64,
}

impl ChaosConfig {
    /// No fault injection.
    pub fn none() -> ChaosConfig {
        ChaosConfig {
            heartbeat_drop: 0.0,
            heartbeat_delay_ms: 0,
            seed: 0,
        }
    }

    /// Reads injection knobs from `LRD_CHAOS_HB_DROP`,
    /// `LRD_CHAOS_HB_DELAY_MS`, and `LRD_CHAOS_SEED` — how the chaos
    /// harness configures spawned worker processes without widening
    /// their CLI.
    pub fn from_env() -> ChaosConfig {
        let var = |name: &str| std::env::var(name).ok();
        ChaosConfig {
            heartbeat_drop: var("LRD_CHAOS_HB_DROP")
                .and_then(|v| v.parse::<f64>().ok())
                .map(|p| p.clamp(0.0, 1.0))
                .unwrap_or(0.0),
            heartbeat_delay_ms: var("LRD_CHAOS_HB_DELAY_MS")
                .and_then(|v| v.parse().ok())
                .unwrap_or(0),
            seed: var("LRD_CHAOS_SEED")
                .and_then(|v| v.parse().ok())
                .unwrap_or(0),
        }
    }
}

/// Configuration for [`run_steal`].
#[derive(Debug, Clone)]
pub struct StealOptions {
    /// Where the coordinator listens.
    pub endpoint: Endpoint,
    /// Connection attempts per request before giving up with
    /// [`CoordError::Unreachable`]. Covers coordinator restarts: a
    /// worker retries across the gap and never notices the new
    /// process.
    pub max_attempts: u32,
    /// Base backoff between connection attempts (doubled each retry,
    /// with jitter).
    pub base_backoff_ms: u64,
    /// Test hook: abandon the run — heartbeats and all, *without*
    /// completing the current lease — after durably appending this
    /// many new points. Simulates a worker crash at an exact point
    /// count.
    pub stop_after_points: Option<usize>,
    /// Heartbeat fault injection.
    pub chaos: ChaosConfig,
}

impl Default for StealOptions {
    fn default() -> Self {
        StealOptions {
            endpoint: Endpoint::Tcp("127.0.0.1:0".to_string()),
            max_attempts: 10,
            base_backoff_ms: 20,
            stop_after_points: None,
            chaos: ChaosConfig::none(),
        }
    }
}

/// What a worker did before exiting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StealSummary {
    /// The worker's stable identity.
    pub worker: String,
    /// Points newly solved this run.
    pub solved: usize,
    /// Points reused from a previous run's checkpoint.
    pub reused: usize,
    /// Batches completed (acknowledged by the coordinator).
    pub batches: usize,
    /// Leases that expired under this worker (chaos or genuine
    /// slowness) — their points still merge from the checkpoint.
    pub expired: usize,
    /// Whether the worker exited because the queue drained (false =
    /// the `stop_after_points` crash hook fired).
    pub drained: bool,
}

/// A stable worker identity: adopted from an existing steal checkpoint
/// (so a restarted worker keeps its name and its solved points), else
/// derived from the process id and wall clock.
///
/// Cached per checkpoint path for the life of the process, because the
/// wall-clock fallback is not a pure function: the telemetry installer
/// stamps JSONL records with this identity *before* [`run_steal`]
/// creates the checkpoint, and both must agree or `sweep_trace` cannot
/// join a worker's spans with its leases.
pub fn worker_identity(checkpoint: &Path) -> String {
    static CACHE: OnceLock<Mutex<HashMap<PathBuf, String>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut cache = cache.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(id) = cache.get(checkpoint) {
        return id.clone();
    }
    let id = (|| {
        if let Ok(ck) = crate::sweep::read_checkpoint(checkpoint) {
            if let CheckpointOrigin::Steal { worker } = &ck.manifest.origin {
                return worker.clone();
            }
        }
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.subsec_nanos())
            .unwrap_or(0);
        format!("w-{:x}-{:x}", std::process::id(), nanos)
    })();
    cache.insert(checkpoint.to_path_buf(), id.clone());
    id
}

/// The worker-side metrics shared between the solve loop and the
/// heartbeat pump. Every heartbeat and completion carries a cumulative
/// snapshot of it as a [`WorkerReport`]; the coordinator's fold keys on
/// `(incarnation, seq)`, so redelivered or reordered reports are
/// harmless (see [`fleet`](super::fleet)).
#[derive(Debug)]
struct WorkerTelemetry {
    /// Fresh per process: lets the coordinator separate a respawned
    /// worker's counters from its predecessor's.
    incarnation: String,
    seq: AtomicU64,
    points: AtomicU64,
    points_reused: AtomicU64,
    batches: AtomicU64,
    expired: AtomicU64,
    hb_sent: AtomicU64,
    hb_miss: AtomicU64,
    reconnect: AtomicU64,
    solve_us: Mutex<LogHistogram>,
}

impl WorkerTelemetry {
    fn new(reused: usize) -> Arc<WorkerTelemetry> {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        Arc::new(WorkerTelemetry {
            incarnation: format!("i-{:x}-{nanos:x}", std::process::id()),
            seq: AtomicU64::new(0),
            points: AtomicU64::new(0),
            points_reused: AtomicU64::new(reused as u64),
            batches: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            hb_sent: AtomicU64::new(0),
            hb_miss: AtomicU64::new(0),
            reconnect: AtomicU64::new(0),
            solve_us: Mutex::new(LogHistogram::new()),
        })
    }

    /// Records one solved point (duration in µs, when the span watch
    /// captured one) into the cumulative stream behind the
    /// coordinator's live cost model.
    fn record_solve(&self, us: Option<f64>) {
        self.points.fetch_add(1, Ordering::Relaxed);
        if let Some(us) = us {
            self.solve_us
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .record(us);
        }
    }

    /// The next cumulative report (bumps `seq`).
    fn report(&self) -> WorkerReport {
        let mut snapshot = MetricsSnapshot::new();
        for (name, value) in [
            (POINTS_COUNTER, &self.points),
            ("sweep.points_reused", &self.points_reused),
            ("sweep.batches", &self.batches),
            ("sweep.expired", &self.expired),
            ("sweep.hb_sent", &self.hb_sent),
            ("sweep.hb_miss", &self.hb_miss),
            ("sweep.reconnect", &self.reconnect),
        ] {
            let value = value.load(Ordering::Relaxed);
            if value > 0 {
                snapshot.add_counter(name, value);
            }
        }
        let solve_us = self.solve_us.lock().unwrap_or_else(|e| e.into_inner());
        if solve_us.count() > 0 {
            snapshot.set_histogram(SOLVE_US_HISTOGRAM, HistogramSnapshot::from(&*solve_us));
        }
        drop(solve_us);
        WorkerReport {
            incarnation: self.incarnation.clone(),
            seq: self.seq.fetch_add(1, Ordering::Relaxed) + 1,
            snapshot,
        }
    }
}

/// One request/response exchange with bounded, jittered reconnect
/// retries — the only place the client touches the socket, so every
/// path (including across a coordinator kill-and-restart) shares the
/// same backoff discipline.
fn exchange(
    endpoint: &Endpoint,
    request: &Request,
    max_attempts: u32,
    base_backoff_ms: u64,
    rng: &mut SmallRng,
    telemetry: Option<&WorkerTelemetry>,
) -> Result<Response, CoordError> {
    let mut last_error = String::new();
    for attempt in 0..max_attempts.max(1) {
        if attempt > 0 {
            // Exponential backoff with full jitter, capped so a worker
            // probes a restarting coordinator at least every second.
            let cap = (base_backoff_ms.max(1) << attempt.min(6)).min(1000);
            std::thread::sleep(Duration::from_millis(rng.gen_range(0..cap.max(1))));
            if let Some(telemetry) = telemetry {
                telemetry.reconnect.fetch_add(1, Ordering::Relaxed);
            }
            lrd_obs::counter("sweep.reconnect", 1);
        }
        let result = connect(endpoint).and_then(|mut conn| {
            send_line(conn.as_mut(), &request.to_line())?;
            recv_line(conn.as_mut())
        });
        match result {
            Ok(line) => return Response::parse(&line),
            Err(e) => last_error = e.to_string(),
        }
    }
    Err(CoordError::Unreachable {
        endpoint: endpoint.to_string(),
        attempts: max_attempts.max(1),
        last_error,
    })
}

/// The heartbeat pump for one lease: beats at half the advertised
/// interval (so one lost packet cannot expire a healthy lease) until
/// told to stop or told its lease is gone.
struct HeartbeatPump {
    stop: Arc<AtomicBool>,
    expired: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl HeartbeatPump {
    fn start(
        endpoint: Endpoint,
        worker: String,
        batch: usize,
        epoch: u64,
        heartbeat_ms: u64,
        chaos: ChaosConfig,
        telemetry: Arc<WorkerTelemetry>,
    ) -> HeartbeatPump {
        let stop = Arc::new(AtomicBool::new(false));
        let expired = Arc::new(AtomicBool::new(false));
        let handle = {
            let stop = Arc::clone(&stop);
            let expired = Arc::clone(&expired);
            std::thread::spawn(move || {
                let mut rng =
                    SmallRng::seed_from_u64(chaos.seed ^ ((batch as u64) << 32) ^ epoch);
                let beat_every = Duration::from_millis((heartbeat_ms / 2).max(1));
                loop {
                    // Sleep in small slices so stop is honoured fast.
                    let mut slept = Duration::ZERO;
                    while slept < beat_every {
                        if stop.load(Ordering::SeqCst) {
                            return;
                        }
                        let slice = Duration::from_millis(2).min(beat_every - slept);
                        std::thread::sleep(slice);
                        slept += slice;
                    }
                    if chaos.heartbeat_drop > 0.0 && rng.gen_bool(chaos.heartbeat_drop) {
                        // An injected loss is indistinguishable from a
                        // transport miss to the operator; count it so
                        // the chaos shows up in the fleet status.
                        telemetry.hb_miss.fetch_add(1, Ordering::Relaxed);
                        lrd_obs::counter("sweep.hb_miss", 1);
                        continue;
                    }
                    if chaos.heartbeat_delay_ms > 0 {
                        std::thread::sleep(Duration::from_millis(chaos.heartbeat_delay_ms));
                    }
                    if stop.load(Ordering::SeqCst) {
                        return;
                    }
                    // Rebuilt per beat: each heartbeat piggybacks the
                    // current cumulative metrics snapshot upstream.
                    let request = Request::Heartbeat {
                        worker: worker.clone(),
                        batch,
                        epoch,
                        report: Some(telemetry.report()),
                    };
                    let sent = connect(&endpoint).and_then(|mut conn| {
                        send_line(conn.as_mut(), &request.to_line())?;
                        recv_line(conn.as_mut())
                    });
                    // Transport failures are tolerated — the next beat
                    // retries, and the ttl absorbs several misses.
                    match sent {
                        Ok(line) => {
                            telemetry.hb_sent.fetch_add(1, Ordering::Relaxed);
                            lrd_obs::counter("sweep.hb_sent", 1);
                            if let Ok(Response::Expired) = Response::parse(&line) {
                                expired.store(true, Ordering::SeqCst);
                                return;
                            }
                        }
                        Err(_) => {
                            telemetry.hb_miss.fetch_add(1, Ordering::Relaxed);
                            lrd_obs::counter("sweep.hb_miss", 1);
                        }
                    }
                }
            })
        };
        HeartbeatPump {
            stop,
            expired,
            handle: Some(handle),
        }
    }

    fn lease_expired(&self) -> bool {
        self.expired.load(Ordering::SeqCst)
    }

    fn stop(mut self) -> bool {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
        self.expired.load(Ordering::SeqCst)
    }
}

/// Runs `sweep` as a work-stealing worker against the coordinator at
/// `options.endpoint`, streaming solved points to `checkpoint` (a
/// steal-origin file owned by this worker alone — never shared).
///
/// The loop: lease a batch → heartbeat while solving its points in
/// [`CHECKPOINT_CHUNK`]-sized appends → complete → repeat, until the
/// coordinator says the queue is drained. Points already in the
/// checkpoint (from a previous run of this worker) are not re-solved.
/// If the lease expires mid-batch (the coordinator reclaimed it), the
/// worker abandons the rest of the batch — whatever it already
/// appended stays, and merge-time dedup keeps the first writer.
pub fn run_steal(
    sweep: &FigureSweep<'_>,
    checkpoint: &Path,
    options: &StealOptions,
) -> Result<StealSummary, CoordError> {
    let worker = worker_identity(checkpoint);
    let origin = CheckpointOrigin::Steal {
        worker: worker.clone(),
    };
    let (mut done, mut file) = open_checkpoint(checkpoint, &sweep.plan, &origin)?;
    let reused = done.len();
    let telemetry = WorkerTelemetry::new(reused);
    if reused > 0 {
        lrd_obs::counter("sweep.points_reused", reused as u64);
    }

    let mut rng = SmallRng::seed_from_u64(
        options.chaos.seed ^ u64::from(std::process::id()).rotate_left(17),
    );
    let mut summary = StealSummary {
        worker: worker.clone(),
        solved: 0,
        reused,
        batches: 0,
        expired: 0,
        drained: false,
    };

    loop {
        let lease = Request::Lease {
            figure: sweep.plan.figure.clone(),
            plan_hash: sweep.plan.hash_hex(),
            profile: sweep.plan.profile.tag().to_string(),
            worker: worker.clone(),
            // A lease request follows every finished or abandoned
            // batch and precedes the drain ack, so the coordinator's
            // fleet view converges even when heartbeats were lost.
            report: Some(telemetry.report()),
        };
        let response = exchange(
            &options.endpoint,
            &lease,
            options.max_attempts,
            options.base_backoff_ms,
            &mut rng,
            Some(&*telemetry),
        )?;
        match response {
            Response::Grant {
                batch,
                epoch,
                heartbeat_ms,
                points,
                trace,
            } => {
                lrd_obs::event!(
                    "sweep.lease",
                    trace = trace.clone(),
                    batch = batch,
                    epoch = epoch,
                    points = points.len(),
                );
                let pump = HeartbeatPump::start(
                    options.endpoint.clone(),
                    worker.clone(),
                    batch,
                    epoch,
                    heartbeat_ms,
                    options.chaos,
                    Arc::clone(&telemetry),
                );
                let todo: Vec<PointSpec> = points
                    .iter()
                    .filter(|&&p| !done.contains_key(&p))
                    .map(|&p| sweep.plan.point(p))
                    .collect();
                // The whole lease is one span carrying the grant's
                // trace id — `sweep_trace` joins it with the
                // coordinator's lease log by that id.
                let mut lease_span = lrd_obs::span!(
                    "sweep.batch",
                    trace = trace.clone(),
                    batch = batch,
                    epoch = epoch,
                    points = todo.len(),
                );
                let mut abandoned = false;
                let mut crashed = false;
                // Warm states live for this lease only: a donor in an
                // earlier wave of the same batch seeds its acceptor,
                // one in another batch (or a previous run's
                // checkpoint) does not — so a reclaimed lease's
                // duplicate solves differ at most in iteration count,
                // and merge's first-writer-wins value assertion holds.
                let mut pool = WarmPool::new();
                for chunk in wave_chunks(&sweep.plan, &todo, CHECKPOINT_CHUNK) {
                    if pump.lease_expired() {
                        // Reclaimed under us: stop burning time on a
                        // batch someone else now owns.
                        abandoned = true;
                        break;
                    }
                    let results = pool.solve_chunk(sweep, chunk, true);
                    let mut text = String::new();
                    for (spec, result) in chunk.iter().zip(&results) {
                        text.push_str(&point_line(&spec.coords, result));
                        text.push('\n');
                    }
                    append_with_retry(&mut file, checkpoint, &text)?;
                    summary.solved += results.len();
                    lrd_obs::counter("sweep.points", results.len() as u64);
                    for result in results {
                        telemetry.record_solve(result.solve_us);
                        done.insert(result.index, result);
                    }
                    if options
                        .stop_after_points
                        .is_some_and(|limit| summary.solved >= limit)
                    {
                        crashed = true;
                        break;
                    }
                }
                lease_span.record("abandoned", abandoned);
                if crashed {
                    // Simulated crash: vanish without completing, like
                    // SIGKILL would. The lease expires and is reclaimed.
                    pump.stop();
                    return Ok(summary);
                }
                let expired = pump.stop();
                if expired || abandoned {
                    summary.expired += 1;
                    telemetry.expired.fetch_add(1, Ordering::Relaxed);
                    eprintln!(
                        "worker {worker}: warning: abandoning batch {batch} (epoch {epoch}): \
                         lease expired and was reclaimed by the coordinator"
                    );
                    lrd_obs::event!(
                        "sweep.lease_abandoned",
                        trace = trace,
                        batch = batch,
                        epoch = epoch,
                        level = "warn",
                    );
                    continue;
                }
                let complete = Request::Complete {
                    worker: worker.clone(),
                    batch,
                    epoch,
                    report: Some(telemetry.report()),
                };
                match exchange(
                    &options.endpoint,
                    &complete,
                    options.max_attempts,
                    options.base_backoff_ms,
                    &mut rng,
                    Some(&*telemetry),
                )? {
                    Response::Ack => {
                        summary.batches += 1;
                        telemetry.batches.fetch_add(1, Ordering::Relaxed);
                        lrd_obs::counter("sweep.batches", 1);
                    }
                    Response::Expired => {
                        summary.expired += 1;
                        telemetry.expired.fetch_add(1, Ordering::Relaxed);
                    }
                    other => {
                        return Err(CoordError::protocol(format!(
                            "unexpected completion response {other:?}"
                        )))
                    }
                }
            }
            Response::Wait { backoff_ms } => {
                // Jitter so parked workers do not thunder back in sync.
                let ms = backoff_ms.max(1);
                std::thread::sleep(Duration::from_millis(rng.gen_range(ms..ms * 2 + 1)));
            }
            Response::Drained => {
                summary.drained = true;
                return Ok(summary);
            }
            Response::Mismatch {
                field,
                expected,
                found,
            } => {
                return Err(CoordError::Mismatch {
                    field,
                    expected,
                    found,
                })
            }
            other => {
                return Err(CoordError::protocol(format!(
                    "unexpected lease response {other:?}"
                )))
            }
        }
    }
}
