//! The lease table: which worker holds which batch, under what epoch,
//! until what deadline — itself a resumable append-only checkpoint.
//!
//! Every transition (grant, reclaim, done) is appended to an optional
//! JSONL **lease log** before it takes effect, so a coordinator killed
//! at any instant restarts from the log with at most one torn trailing
//! line — exactly the recovery contract worker checkpoints already
//! honour. Restored in-flight leases get a fresh deadline: a live
//! worker keeps heartbeating across the coordinator restart and
//! retains its lease; a dead one misses the deadline and is reclaimed.
//!
//! Epochs are **monotonic per batch** and never reused, even across a
//! coordinator restart (resume continues past the largest logged
//! epoch). A heartbeat or completion carrying a stale epoch is
//! therefore unambiguous — there is no ABA window where a reclaimed
//! and re-issued lease could be confused with the original.
//!
//! The table takes `now` (monotonic microseconds) as an argument on
//! every call rather than reading a clock, so tests drive expiry
//! deterministically.

use std::collections::BTreeSet;
use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};

use lrd_obs::{parse_json, write_json_string, Json};

use super::error::CoordError;
use crate::sweep::{write_manifest_durable, SweepError, SweepPlan};

/// Lease timing knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeaseConfig {
    /// How often workers must heartbeat (advertised in every grant).
    pub heartbeat_ms: u64,
    /// How long a lease survives without a heartbeat before it is
    /// reclaimed. Should comfortably exceed `heartbeat_ms` so one
    /// dropped beat does not kill a healthy lease.
    pub lease_ttl_ms: u64,
}

impl Default for LeaseConfig {
    fn default() -> Self {
        LeaseConfig {
            heartbeat_ms: 500,
            lease_ttl_ms: 2000,
        }
    }
}

/// One batch's life cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
enum BatchState {
    /// Not leased. `reclaimed_from` remembers the most recent expired
    /// lease so a late completion from that worker is still honoured.
    Available {
        reclaimed_from: Option<(String, u64)>,
    },
    /// Held by `worker` under `epoch` until `deadline_us`.
    Leased {
        worker: String,
        epoch: u64,
        deadline_us: u64,
        last_beat_us: u64,
    },
    /// Completed (and the completion durably logged).
    Done { worker: String },
}

/// What [`LeaseTable::lease`] decided.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LeaseDecision {
    /// Solve these points under `(batch, epoch)`.
    Grant {
        /// The leased batch id.
        batch: usize,
        /// The monotonic lease epoch.
        epoch: u64,
        /// Stable lattice indices to solve.
        points: Vec<usize>,
    },
    /// Everything unleased is done but leases are in flight; retry.
    Wait,
    /// Every batch is done.
    Drained,
}

/// What [`LeaseTable::heartbeat`] decided.
#[derive(Debug, Clone, PartialEq)]
pub enum HeartbeatDecision {
    /// Lease extended. `interval_us` is the time since the previous
    /// beat (or grant), for the heartbeat-latency histogram.
    Alive {
        /// Microseconds since the previous beat.
        interval_us: u64,
    },
    /// The named lease is not held by this worker under this epoch.
    Expired,
}

/// What [`LeaseTable::complete`] decided.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompleteDecision {
    /// The live lease finished normally.
    Accepted,
    /// The lease had expired and been reclaimed, but the worker
    /// finished anyway (slow, not dead) before the batch was
    /// re-granted — its results are used and the batch closed.
    AcceptedStale,
    /// The batch is already done (idempotent duplicate completion).
    AlreadyDone,
    /// The lease lapsed and the batch has moved on (re-leased or
    /// finished by someone else). The worker's solved points are not
    /// wasted: they sit in its checkpoint and dedup at merge.
    Stale,
}

/// The coordinator's whole mutable state.
#[derive(Debug)]
pub struct LeaseTable {
    figure: String,
    plan_hash: String,
    profile: String,
    total_points: usize,
    batches: Vec<Vec<usize>>,
    state: Vec<BatchState>,
    /// Largest epoch ever issued per batch (never reused).
    last_epoch: Vec<u64>,
    config: LeaseConfig,
    reclaims: u64,
    grants: u64,
    log: Option<(PathBuf, File)>,
}

fn log_io(path: &Path, e: &std::io::Error) -> CoordError {
    CoordError::io(format!("appending lease log {}", path.display()), e)
}

impl LeaseTable {
    /// Builds a fresh table for `plan` with the given point batches,
    /// optionally durably logged to `log_path`.
    pub fn new(
        plan: &SweepPlan,
        batches: Vec<Vec<usize>>,
        config: LeaseConfig,
        log_path: Option<&Path>,
    ) -> Result<LeaseTable, CoordError> {
        validate_batches(&batches, plan.len())?;
        let log = match log_path {
            None => None,
            Some(path) => {
                let mut text = String::from("{\"kind\":\"coord_manifest\",\"figure\":");
                write_json_string(&mut text, &plan.figure);
                text.push_str(",\"plan_hash\":");
                write_json_string(&mut text, &plan.hash_hex());
                text.push_str(",\"profile\":");
                write_json_string(&mut text, plan.profile.tag());
                text.push_str(&format!(",\"points\":{},\"batches\":[", plan.len()));
                for (i, batch) in batches.iter().enumerate() {
                    if i > 0 {
                        text.push(',');
                    }
                    text.push('[');
                    for (j, p) in batch.iter().enumerate() {
                        if j > 0 {
                            text.push(',');
                        }
                        text.push_str(&p.to_string());
                    }
                    text.push(']');
                }
                text.push_str("]}\n");
                write_manifest_durable(path, &text)?;
                let file = std::fs::OpenOptions::new()
                    .append(true)
                    .open(path)
                    .map_err(|e| log_io(path, &e))?;
                Some((path.to_path_buf(), file))
            }
        };
        let n = batches.len();
        Ok(LeaseTable {
            figure: plan.figure.clone(),
            plan_hash: plan.hash_hex(),
            profile: plan.profile.tag().to_string(),
            total_points: plan.len(),
            batches,
            state: vec![
                BatchState::Available {
                    reclaimed_from: None
                };
                n
            ],
            last_epoch: vec![0; n],
            config,
            reclaims: 0,
            grants: 0,
            log,
        })
    }

    /// Rebuilds the table from a lease log left by a killed
    /// coordinator, replaying every intact event. Batches that were
    /// leased at the kill are restored as leased with a fresh deadline
    /// of `now + ttl`: their workers keep heartbeating across the
    /// restart and never notice; a worker that died with the
    /// coordinator misses the new deadline and is reclaimed normally.
    pub fn resume(
        plan: &SweepPlan,
        config: LeaseConfig,
        log_path: &Path,
        now_us: u64,
    ) -> Result<LeaseTable, CoordError> {
        let text = std::fs::read_to_string(log_path)
            .map_err(|e| CoordError::io(format!("reading lease log {}", log_path.display()), &e))?;
        if !text.contains('\n') {
            // Killed before the manifest flushed: no state recorded.
            // (write_manifest_durable makes this window one syscall
            // wide, but it still exists.) Surface the same typed error
            // worker checkpoints use; the server discards the file and
            // starts fresh with its own batching options.
            return Err(CoordError::Sweep(SweepError::TornManifest {
                path: log_path.to_path_buf(),
            }));
        }
        let mut lines = text.lines();
        let first = lines.next().unwrap_or_default();
        let doc = parse_json(first).map_err(|e| {
            CoordError::protocol(format!("lease log {}: {e}", log_path.display()))
        })?;
        if doc.get("kind").and_then(Json::as_str) != Some("coord_manifest") {
            return Err(CoordError::protocol(format!(
                "lease log {}: first line is not a coord_manifest",
                log_path.display()
            )));
        }
        let logged_hash = doc
            .get("plan_hash")
            .and_then(Json::as_str)
            .unwrap_or_default()
            .to_string();
        if logged_hash != plan.hash_hex() {
            return Err(CoordError::Sweep(SweepError::PlanHashMismatch {
                expected: plan.hash_hex(),
                found: logged_hash,
            }));
        }
        let batches: Vec<Vec<usize>> = doc
            .get("batches")
            .and_then(Json::as_array)
            .and_then(|items| {
                items
                    .iter()
                    .map(|b| {
                        b.as_array().and_then(|ps| {
                            ps.iter()
                                .map(|p| p.as_u64().map(|v| v as usize))
                                .collect::<Option<Vec<usize>>>()
                        })
                    })
                    .collect()
            })
            .ok_or_else(|| {
                CoordError::protocol(format!(
                    "lease log {}: coord_manifest missing batches",
                    log_path.display()
                ))
            })?;
        validate_batches(&batches, plan.len())?;

        let n = batches.len();
        let mut state = vec![
            BatchState::Available {
                reclaimed_from: None
            };
            n
        ];
        let mut last_epoch = vec![0u64; n];
        let mut reclaims = 0u64;
        let mut grants = 0u64;
        let mut rest = lines.enumerate().peekable();
        while let Some((i, line)) = rest.next() {
            let is_last = rest.peek().is_none();
            let parsed = parse_json(line).ok().and_then(|doc| {
                let kind = doc.get("kind")?.as_str()?.to_string();
                let batch = doc.get("batch")?.as_u64()? as usize;
                let epoch = doc.get("epoch")?.as_u64()?;
                let worker = doc.get("worker")?.as_str()?.to_string();
                Some((kind, batch, epoch, worker))
            });
            let Some((kind, batch, epoch, worker)) = parsed else {
                if is_last {
                    // A torn trailing line from the kill: the event it
                    // described never durably happened. Drop it.
                    break;
                }
                return Err(CoordError::protocol(format!(
                    "lease log {} line {}: unreadable event",
                    log_path.display(),
                    i + 2
                )));
            };
            if batch >= n {
                return Err(CoordError::protocol(format!(
                    "lease log {} line {}: batch {batch} out of range",
                    log_path.display(),
                    i + 2
                )));
            }
            last_epoch[batch] = last_epoch[batch].max(epoch);
            match kind.as_str() {
                "grant" => {
                    grants += 1;
                    state[batch] = BatchState::Leased {
                        worker,
                        epoch,
                        deadline_us: now_us + config.lease_ttl_ms * 1000,
                        last_beat_us: now_us,
                    };
                }
                "reclaim" => {
                    reclaims += 1;
                    state[batch] = BatchState::Available {
                        reclaimed_from: Some((worker, epoch)),
                    };
                }
                "done" => {
                    state[batch] = BatchState::Done { worker };
                }
                other => {
                    return Err(CoordError::protocol(format!(
                        "lease log {} line {}: unknown event {other:?}",
                        log_path.display(),
                        i + 2
                    )));
                }
            }
        }
        // Truncate any torn tail, then reopen for appending.
        let mut clean = String::with_capacity(text.len());
        let mut kept = 0usize;
        for line in text.lines() {
            if parse_json(line).is_err() {
                break;
            }
            clean.push_str(line);
            clean.push('\n');
            kept += 1;
        }
        let _ = kept;
        write_manifest_durable(log_path, &clean)?;
        let file = std::fs::OpenOptions::new()
            .append(true)
            .open(log_path)
            .map_err(|e| log_io(log_path, &e))?;
        Ok(LeaseTable {
            figure: plan.figure.clone(),
            plan_hash: plan.hash_hex(),
            profile: plan.profile.tag().to_string(),
            total_points: plan.len(),
            batches,
            state,
            last_epoch,
            config,
            reclaims,
            grants,
            log: Some((log_path.to_path_buf(), file)),
        })
    }

    fn log_event(&mut self, kind: &str, batch: usize, epoch: u64, worker: &str) -> Result<(), CoordError> {
        let Some((path, file)) = &mut self.log else {
            return Ok(());
        };
        let mut line = String::from("{\"kind\":");
        write_json_string(&mut line, kind);
        line.push_str(&format!(",\"batch\":{batch},\"epoch\":{epoch},\"worker\":"));
        write_json_string(&mut line, worker);
        // Wall-clock stamp so `sweep_trace` can place lease events on
        // the same timeline as worker telemetry (whose meta line
        // anchors its process clock to unix time). Resume ignores it.
        line.push_str(&format!(",\"us\":{}", unix_us()));
        line.push_str("}\n");
        file.write_all(line.as_bytes())
            .and_then(|()| file.flush())
            .map_err(|e| log_io(path, &e))
    }

    /// The sweep identity the table serves, for lease-request
    /// validation: `(figure, plan_hash, profile)`.
    pub fn identity(&self) -> (&str, &str, &str) {
        (&self.figure, &self.plan_hash, &self.profile)
    }

    /// The configured lease timing.
    pub fn config(&self) -> LeaseConfig {
        self.config
    }

    /// Grants the lowest available batch to `worker`, or tells it to
    /// wait (leases in flight) or that the sweep is drained.
    pub fn lease(&mut self, worker: &str, now_us: u64) -> Result<LeaseDecision, CoordError> {
        let Some(batch) = self
            .state
            .iter()
            .position(|s| matches!(s, BatchState::Available { .. }))
        else {
            let any_leased = self
                .state
                .iter()
                .any(|s| matches!(s, BatchState::Leased { .. }));
            return Ok(if any_leased {
                LeaseDecision::Wait
            } else {
                LeaseDecision::Drained
            });
        };
        let epoch = self.last_epoch[batch] + 1;
        // Log first: a grant that survives only in memory could be
        // re-issued under the same epoch after a coordinator restart.
        self.log_event("grant", batch, epoch, worker)?;
        self.last_epoch[batch] = epoch;
        self.state[batch] = BatchState::Leased {
            worker: worker.to_string(),
            epoch,
            deadline_us: now_us + self.config.lease_ttl_ms * 1000,
            last_beat_us: now_us,
        };
        self.grants += 1;
        Ok(LeaseDecision::Grant {
            batch,
            epoch,
            points: self.batches[batch].clone(),
        })
    }

    /// Extends the lease `(batch, epoch)` if `worker` still holds it.
    pub fn heartbeat(
        &mut self,
        worker: &str,
        batch: usize,
        epoch: u64,
        now_us: u64,
    ) -> HeartbeatDecision {
        match self.state.get_mut(batch) {
            Some(BatchState::Leased {
                worker: holder,
                epoch: held,
                deadline_us,
                last_beat_us,
            }) if holder == worker && *held == epoch => {
                let interval = now_us.saturating_sub(*last_beat_us);
                *last_beat_us = now_us;
                *deadline_us = now_us + self.config.lease_ttl_ms * 1000;
                HeartbeatDecision::Alive {
                    interval_us: interval,
                }
            }
            _ => HeartbeatDecision::Expired,
        }
    }

    /// Marks `(batch, epoch)` complete if the completion is honourable
    /// (live lease, or a reclaimed-but-unregranted one).
    pub fn complete(
        &mut self,
        worker: &str,
        batch: usize,
        epoch: u64,
    ) -> Result<CompleteDecision, CoordError> {
        let decision = match self.state.get(batch) {
            Some(BatchState::Leased {
                worker: holder,
                epoch: held,
                ..
            }) if holder == worker && *held == epoch => CompleteDecision::Accepted,
            Some(BatchState::Available {
                reclaimed_from: Some((w, e)),
            }) if w == worker && *e == epoch => CompleteDecision::AcceptedStale,
            Some(BatchState::Done { .. }) => CompleteDecision::AlreadyDone,
            _ => CompleteDecision::Stale,
        };
        if matches!(
            decision,
            CompleteDecision::Accepted | CompleteDecision::AcceptedStale
        ) {
            self.log_event("done", batch, epoch, worker)?;
            self.state[batch] = BatchState::Done {
                worker: worker.to_string(),
            };
        }
        Ok(decision)
    }

    /// Reclaims every lease whose deadline has passed, returning
    /// `(batch, worker, epoch)` for each so the server can emit
    /// telemetry.
    pub fn reclaim_expired(&mut self, now_us: u64) -> Result<Vec<(usize, String, u64)>, CoordError> {
        let mut reclaimed = Vec::new();
        for batch in 0..self.state.len() {
            let BatchState::Leased {
                worker,
                epoch,
                deadline_us,
                ..
            } = &self.state[batch]
            else {
                continue;
            };
            if *deadline_us > now_us {
                continue;
            }
            let (worker, epoch) = (worker.clone(), *epoch);
            self.log_event("reclaim", batch, epoch, &worker)?;
            self.state[batch] = BatchState::Available {
                reclaimed_from: Some((worker.clone(), epoch)),
            };
            self.reclaims += 1;
            reclaimed.push((batch, worker, epoch));
        }
        Ok(reclaimed)
    }

    /// Whether every batch is done.
    pub fn drained(&self) -> bool {
        self.state.iter().all(|s| matches!(s, BatchState::Done { .. }))
    }

    /// Queue counters for status responses and the final summary. The
    /// roster and fleet fold live in the server's
    /// [`FleetRegistry`](super::fleet::FleetRegistry), not here — the
    /// table only knows batches.
    pub fn status(&self) -> super::proto::StatusReport {
        super::proto::StatusReport {
            batches: self.state.len(),
            done: self
                .state
                .iter()
                .filter(|s| matches!(s, BatchState::Done { .. }))
                .count(),
            leased: self
                .state
                .iter()
                .filter(|s| matches!(s, BatchState::Leased { .. }))
                .count(),
            reclaims: self.reclaims,
            total_points: self.total_points,
            done_points: self.done_points(),
            ..super::proto::StatusReport::default()
        }
    }

    /// Points covered by completed batches.
    pub fn done_points(&self) -> usize {
        self.state
            .iter()
            .zip(&self.batches)
            .filter(|(s, _)| matches!(s, BatchState::Done { .. }))
            .map(|(_, b)| b.len())
            .sum()
    }

    /// Total lease grants issued (including re-issues after reclaims).
    pub fn grants(&self) -> u64 {
        self.grants
    }

    /// Total points across all batches.
    pub fn total_points(&self) -> usize {
        self.total_points
    }

    /// Number of points in `batch` (0 when out of range).
    pub fn batch_len(&self, batch: usize) -> usize {
        self.batches.get(batch).map_or(0, Vec::len)
    }

    /// Every worker identity the table currently knows of — lease
    /// holders, completers, and the most recent reclaimees. After a
    /// resume this is the log's worker population: identities that may
    /// still be alive, mid-reconnect-backoff, and owed a drain notice.
    pub fn workers(&self) -> BTreeSet<String> {
        let mut workers = BTreeSet::new();
        for state in &self.state {
            match state {
                BatchState::Available {
                    reclaimed_from: Some((worker, _)),
                } => workers.insert(worker.clone()),
                BatchState::Leased { worker, .. } | BatchState::Done { worker } => {
                    workers.insert(worker.clone())
                }
                BatchState::Available {
                    reclaimed_from: None,
                } => false,
            };
        }
        workers
    }
}

/// Wall-clock microseconds since the unix epoch (0 if the clock is
/// before it, which only a badly skewed VM clock produces).
pub(crate) fn unix_us() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0)
}

/// Every point `0..total` appears in exactly one batch, and no batch
/// is empty.
fn validate_batches(batches: &[Vec<usize>], total: usize) -> Result<(), CoordError> {
    let mut seen = BTreeSet::new();
    for batch in batches {
        if batch.is_empty() {
            return Err(CoordError::protocol("empty point batch"));
        }
        for &p in batch {
            if p >= total || !seen.insert(p) {
                return Err(CoordError::protocol(format!(
                    "batches do not partition the lattice: point {p} repeated or out of range"
                )));
            }
        }
    }
    if seen.len() != total {
        return Err(CoordError::protocol(format!(
            "batches cover {} of {total} points",
            seen.len()
        )));
    }
    Ok(())
}

/// The batch list a coordinator uses when none is resumed: cost-aware
/// if a [`CostProfile`](crate::sweep::CostProfile) is supplied,
/// uniform otherwise.
pub fn default_batches(
    plan: &SweepPlan,
    costs: Option<&[f64]>,
    batch_points: usize,
) -> Vec<Vec<usize>> {
    match costs {
        Some(costs) if costs.len() == plan.len() => {
            super::batch::plan_batches(costs, batch_points)
        }
        _ => super::batch::plan_batches(&vec![1.0; plan.len()], batch_points),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::Profile;
    use crate::sweep::Axis;
    use lrd_fluidq::SolverOptions;

    fn plan() -> SweepPlan {
        SweepPlan::grid_plan(
            "demo",
            Profile::Quick,
            "loss_rate",
            Axis::new("b", vec![0.1, 1.0, 10.0]),
            Axis::new("tc", vec![0.5, 5.0, f64::INFINITY]),
            SolverOptions::sweep_profile(),
        )
    }

    fn batches() -> Vec<Vec<usize>> {
        vec![vec![0, 1, 2], vec![3, 4, 5], vec![6, 7, 8]]
    }

    fn tmplog(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("lrd-lease-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("coord.jsonl")
    }

    const CFG: LeaseConfig = LeaseConfig {
        heartbeat_ms: 10,
        lease_ttl_ms: 50,
    };

    #[test]
    fn lease_heartbeat_complete_happy_path() {
        let p = plan();
        let mut t = LeaseTable::new(&p, batches(), CFG, None).unwrap();
        let LeaseDecision::Grant {
            batch,
            epoch,
            points,
        } = t.lease("w0", 0).unwrap()
        else {
            panic!("expected a grant");
        };
        assert_eq!((batch, epoch), (0, 1));
        assert_eq!(points, vec![0, 1, 2]);
        assert!(matches!(
            t.heartbeat("w0", batch, epoch, 10_000),
            HeartbeatDecision::Alive {
                interval_us: 10_000
            }
        ));
        assert_eq!(t.complete("w0", batch, epoch).unwrap(), CompleteDecision::Accepted);
        // Second completion is idempotent.
        assert_eq!(
            t.complete("w0", batch, epoch).unwrap(),
            CompleteDecision::AlreadyDone
        );
        // Other two batches drain normally.
        for _ in 0..2 {
            let LeaseDecision::Grant { batch, epoch, .. } = t.lease("w0", 0).unwrap() else {
                panic!("expected a grant");
            };
            t.complete("w0", batch, epoch).unwrap();
        }
        assert!(t.drained());
        assert_eq!(t.lease("w0", 0).unwrap(), LeaseDecision::Drained);
        assert_eq!(t.status().done, 3);
    }

    #[test]
    fn expired_leases_are_reclaimed_and_reissued_with_higher_epoch() {
        let p = plan();
        let mut t = LeaseTable::new(&p, batches(), CFG, None).unwrap();
        let LeaseDecision::Grant { batch, epoch, .. } = t.lease("w0", 0).unwrap() else {
            panic!("expected a grant");
        };
        // No beat before the ttl: reclaimed.
        let reclaimed = t.reclaim_expired(CFG.lease_ttl_ms * 1000 + 1).unwrap();
        assert_eq!(reclaimed, vec![(batch, "w0".to_string(), epoch)]);
        assert_eq!(t.status().reclaims, 1);
        // Dead worker's heartbeat and the re-issue: new epoch, never
        // reused.
        assert_eq!(
            t.heartbeat("w0", batch, epoch, 60_000),
            HeartbeatDecision::Expired
        );
        let LeaseDecision::Grant {
            batch: b2,
            epoch: e2,
            ..
        } = t.lease("w1", 60_000).unwrap()
        else {
            panic!("expected a grant");
        };
        assert_eq!(b2, batch);
        assert!(e2 > epoch);
        // The original holder's completion is now stale; w1's lands.
        assert_eq!(t.complete("w0", batch, epoch).unwrap(), CompleteDecision::Stale);
        assert_eq!(t.complete("w1", b2, e2).unwrap(), CompleteDecision::Accepted);
    }

    #[test]
    fn slow_but_alive_worker_completion_is_honoured_after_reclaim() {
        let p = plan();
        let mut t = LeaseTable::new(&p, batches(), CFG, None).unwrap();
        let LeaseDecision::Grant { batch, epoch, .. } = t.lease("w0", 0).unwrap() else {
            panic!("expected a grant");
        };
        t.reclaim_expired(u64::MAX).unwrap();
        // Reclaimed but not yet re-granted: the straggler's completion
        // still counts.
        assert_eq!(
            t.complete("w0", batch, epoch).unwrap(),
            CompleteDecision::AcceptedStale
        );
        assert_eq!(t.status().done, 1);
    }

    #[test]
    fn heartbeats_keep_a_lease_alive_indefinitely() {
        let p = plan();
        let mut t = LeaseTable::new(&p, batches(), CFG, None).unwrap();
        let LeaseDecision::Grant { batch, epoch, .. } = t.lease("w0", 0).unwrap() else {
            panic!("expected a grant");
        };
        let ttl_us = CFG.lease_ttl_ms * 1000;
        let mut now = 0u64;
        for _ in 0..20 {
            now += ttl_us / 2;
            assert!(matches!(
                t.heartbeat("w0", batch, epoch, now),
                HeartbeatDecision::Alive { .. }
            ));
            assert!(t.reclaim_expired(now).unwrap().is_empty());
        }
    }

    #[test]
    fn table_resumes_from_lease_log_with_epochs_continuing() {
        let p = plan();
        let log = tmplog("resume");
        {
            let mut t = LeaseTable::new(&p, batches(), CFG, Some(&log)).unwrap();
            // Batch 0 done by w0; batch 1 leased to w1 (in flight at
            // the kill); batch 2 reclaimed from w2.
            let LeaseDecision::Grant { batch, epoch, .. } = t.lease("w0", 0).unwrap() else {
                panic!()
            };
            t.complete("w0", batch, epoch).unwrap();
            let LeaseDecision::Grant { .. } = t.lease("w1", 0).unwrap() else {
                panic!()
            };
            let LeaseDecision::Grant { batch: b2, .. } = t.lease("w2", 0).unwrap() else {
                panic!()
            };
            assert_eq!(b2, 2);
            t.reclaim_expired(u64::MAX).unwrap();
            // w1's lease was also reclaimed by now_us = MAX; re-grant
            // batch 1 to w1 so the log ends with it leased again.
            let LeaseDecision::Grant { batch: b1, epoch: e1, .. } = t.lease("w1", 0).unwrap()
            else {
                panic!()
            };
            assert_eq!((b1, e1), (1, 2));
            // Coordinator "killed" here: table dropped.
        }
        let now = 1_000_000u64;
        let mut t = LeaseTable::resume(&p, CFG, &log, now).unwrap();
        let status = t.status();
        assert_eq!((status.batches, status.done, status.leased), (3, 1, 1));
        // w1 keeps its lease across the restart as long as it beats.
        assert!(matches!(
            t.heartbeat("w1", 1, 2, now + 10_000),
            HeartbeatDecision::Alive { .. }
        ));
        // Batch 2 was reclaimed from w2 pre-kill; its epoch continues
        // past the logged maximum on re-grant.
        let LeaseDecision::Grant { batch, epoch, points } = t.lease("w3", now).unwrap() else {
            panic!()
        };
        assert_eq!(batch, 2);
        assert_eq!(epoch, 2);
        assert_eq!(points, vec![6, 7, 8]);
        // And w2's ancient completion for epoch 1 is honoured as
        // stale-but-too-late now that the batch is re-leased.
        assert_eq!(t.complete("w2", 2, 1).unwrap(), CompleteDecision::Stale);
    }

    #[test]
    fn resume_tolerates_torn_tail_and_rejects_other_plans() {
        let p = plan();
        let log = tmplog("torn");
        {
            let mut t = LeaseTable::new(&p, batches(), CFG, Some(&log)).unwrap();
            let LeaseDecision::Grant { batch, epoch, .. } = t.lease("w0", 0).unwrap() else {
                panic!()
            };
            t.complete("w0", batch, epoch).unwrap();
        }
        // Tear the last line mid-write.
        let text = std::fs::read_to_string(&log).unwrap();
        std::fs::write(&log, &text[..text.len() - 7]).unwrap();
        let t = LeaseTable::resume(&p, CFG, &log, 0).unwrap();
        // The torn "done" never durably happened: batch 0 is back to
        // available-after-grant replay… actually the grant survives,
        // so it is leased.
        assert_eq!(t.status().leased, 1);
        assert_eq!(t.status().done, 0);

        // A different plan refuses to adopt the log.
        let mut other = plan();
        other.axes[0].values[0] = 0.2;
        let err = LeaseTable::resume(&other, CFG, &log, 0).unwrap_err();
        assert!(matches!(
            err,
            CoordError::Sweep(SweepError::PlanHashMismatch { .. })
        ));
    }

    #[test]
    fn batches_must_partition_the_lattice() {
        let p = plan();
        for bad in [
            vec![vec![0, 1, 2]],                                   // misses points
            vec![vec![0, 1, 2, 3, 4, 5, 6, 7, 8, 9]],              // out of range
            vec![vec![0, 1, 2, 3], vec![3, 4, 5, 6, 7, 8]],        // repeat
            vec![vec![0, 1, 2, 3, 4, 5, 6, 7, 8], vec![]],         // empty batch
        ] {
            assert!(LeaseTable::new(&p, bad, CFG, None).is_err());
        }
    }
}
