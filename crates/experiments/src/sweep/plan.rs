//! The declarative sweep description: axes, point lattice, plan hash.

use crate::figures::Profile;
use crate::output::Grid;
use crate::sweep::ShardSpec;
use lrd_fluidq::{LossSolution, SolverOptions};

/// One named sweep axis: an ordered list of coordinate values.
#[derive(Debug, Clone, PartialEq)]
pub struct Axis {
    /// Axis label; becomes the grid/CSV axis label (`"buffer_s"`).
    pub name: String,
    /// The coordinate values, in sweep order.
    pub values: Vec<f64>,
}

impl Axis {
    /// An axis over explicit values.
    ///
    /// # Panics
    ///
    /// Panics on an empty value list — a lattice axis needs at least
    /// one point.
    pub fn new(name: impl Into<String>, values: Vec<f64>) -> Axis {
        assert!(!values.is_empty(), "axis needs at least one value");
        Axis {
            name: name.into(),
            values,
        }
    }

    /// Logarithmically spaced values from `lo` to `hi` inclusive.
    pub fn log_space(name: impl Into<String>, lo: f64, hi: f64, count: usize) -> Axis {
        Axis::new(name, crate::figures::log_space(lo, hi, count))
    }

    /// Linearly spaced values from `lo` to `hi` inclusive.
    pub fn lin_space(name: impl Into<String>, lo: f64, hi: f64, count: usize) -> Axis {
        Axis::new(name, crate::figures::lin_space(lo, hi, count))
    }

    /// Appends one extra value (the idiom for the `T_c = ∞` column).
    pub fn with_value(mut self, value: f64) -> Axis {
        self.values.push(value);
        self
    }

    /// Number of lattice points along this axis.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the axis is empty (never true for a constructed axis).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// One lattice point: its stable index and per-axis coordinates.
#[derive(Debug, Clone, PartialEq)]
pub struct PointSpec {
    /// Stable row-major index into the plan's lattice.
    pub index: usize,
    /// Coordinates, one per plan axis, in axis order.
    pub coords: Vec<f64>,
}

impl PointSpec {
    /// The coordinate along axis `axis`.
    pub fn coord(&self, axis: usize) -> f64 {
        self.coords[axis]
    }
}

/// The solved value at one lattice point plus the solver diagnostics
/// the bench/regression layers track.
#[derive(Debug, Clone, PartialEq)]
pub struct PointResult {
    /// Stable point index (matches [`PointSpec::index`]).
    pub index: usize,
    /// The figure value at this point (loss-rate midpoint).
    pub value: f64,
    /// Solver iterations spent on this point.
    pub iterations: u64,
    /// Final grid resolution `M`.
    pub bins: u64,
    /// Whether the solver's gap criterion was met.
    pub converged: bool,
    /// Measured wall-clock solve cost in µs, read from the point's
    /// `solver.solve` telemetry span by the checkpointing runner.
    /// `None` when the point was solved without a checkpoint or read
    /// from a duration-less (pre-cost-model) checkpoint. Never enters
    /// the plan hash or the solved values — it exists for the
    /// cost-weighted re-split planner alone.
    pub solve_us: Option<f64>,
}

impl PointResult {
    /// Builds the result for point `index` from a solver verdict.
    pub fn from_solution(index: usize, solution: &LossSolution) -> PointResult {
        PointResult {
            index,
            value: solution.loss(),
            iterations: solution.iterations as u64,
            bins: solution.bins as u64,
            converged: solution.converged,
            solve_us: None,
        }
    }
}

/// A declarative sweep: named axes, a profile, the solver options every
/// point shares, and a stable total order over the point lattice.
///
/// The order is row-major over the axes (first axis slowest), matching
/// the nested loops the figures historically ran — so a ported figure
/// reproduces its historical surface bit-for-bit.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPlan {
    /// The figure this plan belongs to (registry name / results stem).
    pub figure: String,
    /// Grid-resolution profile the axes were built for.
    pub profile: Profile,
    /// Label of the solved value (`"loss_rate"`).
    pub value_label: String,
    /// The axes, slowest-varying first. Two axes for grid figures:
    /// `axes[0]` becomes the grid rows (y), `axes[1]` the columns (x).
    pub axes: Vec<Axis>,
    /// Solver options applied at every point; hashed into the plan
    /// identity so shards solved under different protocols never merge.
    pub solver: SolverOptions,
    /// The axis along which neighbouring points may donate solver
    /// [`WarmState`](lrd_fluidq::WarmState)s (the buffer axis, for
    /// every current figure). `None` disables warm starts.
    ///
    /// Declaring a warm axis asserts the figure's point models differ
    /// **only in the buffer size** along that axis — the donor
    /// precondition of
    /// [`try_solve_warm`](lrd_fluidq::try_solve_warm). Figures whose
    /// axes change anything else about the model (Hurst, marginal
    /// scaling, stream count) must leave it `None`.
    ///
    /// Deliberately **excluded from [`hash`](SweepPlan::hash)**: a
    /// warm start never changes solved values (only iteration counts),
    /// so surfaces solved with and without it merge bit-identically —
    /// and old checkpoints stay resumable.
    pub warm_axis: Option<usize>,
}

impl SweepPlan {
    /// A two-axis (grid) plan; `y` varies slowest.
    pub fn grid_plan(
        figure: impl Into<String>,
        profile: Profile,
        value_label: impl Into<String>,
        y: Axis,
        x: Axis,
        solver: SolverOptions,
    ) -> SweepPlan {
        SweepPlan {
            figure: figure.into(),
            profile,
            value_label: value_label.into(),
            axes: vec![y, x],
            solver,
            warm_axis: None,
        }
    }

    /// Declares `axis` as the warm-start (buffer) axis. See
    /// [`SweepPlan::warm_axis`] for the contract this asserts.
    ///
    /// # Panics
    ///
    /// Panics when `axis` is out of range.
    pub fn with_warm_axis(mut self, axis: usize) -> SweepPlan {
        assert!(axis < self.axes.len(), "warm axis {axis} out of range");
        self.warm_axis = Some(axis);
        self
    }

    /// Row-major stride of `axis`: the index distance between two
    /// points that differ by one step along it.
    fn stride(&self, axis: usize) -> usize {
        self.axes[axis + 1..].iter().map(Axis::len).product()
    }

    /// The fixed lattice predecessor that donates a warm state to
    /// `index`: the same point one step earlier along the warm axis.
    /// `None` when the plan has no warm axis or `index` sits on the
    /// axis's first value (those points always run cold).
    ///
    /// The donor is a pure function of the plan — independent of
    /// execution order, shard split, batch composition, or thread
    /// count — which is what keeps the wavefront schedule
    /// deterministic: whether a donor's state is *available* at solve
    /// time depends only on the deterministic chunk partition, never
    /// on which worker thread finished first.
    pub fn donor(&self, index: usize) -> Option<usize> {
        let axis = self.warm_axis?;
        let stride = self.stride(axis);
        let pos = (index / stride) % self.axes[axis].len();
        (pos > 0).then(|| index - stride)
    }

    /// The wavefront a point belongs to: its position along the warm
    /// axis (0 for every point when no warm axis is declared). A
    /// point's donor always lives in the previous wave, so executing
    /// wave-by-wave guarantees every in-partition donor has been
    /// solved before its acceptor starts.
    pub fn wave_of(&self, index: usize) -> usize {
        match self.warm_axis {
            Some(axis) => (index / self.stride(axis)) % self.axes[axis].len(),
            None => 0,
        }
    }

    /// Total number of lattice points (product of the axis lengths).
    pub fn len(&self) -> usize {
        self.axes.iter().map(Axis::len).product()
    }

    /// Whether the lattice is empty (never true for constructed axes).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The lattice point at stable index `index` (row-major decode).
    ///
    /// # Panics
    ///
    /// Panics when `index >= self.len()`.
    pub fn point(&self, index: usize) -> PointSpec {
        assert!(index < self.len(), "point index {index} out of range");
        let mut coords = vec![0.0; self.axes.len()];
        let mut rest = index;
        for (slot, axis) in coords.iter_mut().zip(&self.axes).rev() {
            *slot = axis.values[rest % axis.len()];
            rest /= axis.len();
        }
        PointSpec { index, coords }
    }

    /// The lattice points owned by `shard`, in stable-index order.
    pub fn points_for(&self, shard: &ShardSpec) -> Vec<PointSpec> {
        (0..self.len())
            .filter(|&i| shard.owns(i))
            .map(|i| self.point(i))
            .collect()
    }

    /// FNV-1a 64-bit content hash over the canonical plan description:
    /// figure, profile, value label, every axis name and value
    /// (`f64::to_bits`, so `∞` and signed zeros are distinguished) and
    /// every solver-option field. Equal hashes ⇒ bit-identical
    /// surfaces; the checkpoint manifests carry it so merge can reject
    /// shards solved under a different plan.
    pub fn hash(&self) -> u64 {
        let mut h = Fnv::new();
        h.update(self.figure.as_bytes());
        h.sep();
        h.update(self.profile.tag().as_bytes());
        h.sep();
        h.update(self.value_label.as_bytes());
        h.sep();
        h.u64(self.axes.len() as u64);
        for axis in &self.axes {
            h.update(axis.name.as_bytes());
            h.sep();
            h.u64(axis.len() as u64);
            for &v in &axis.values {
                h.u64(v.to_bits());
            }
        }
        let s = &self.solver;
        h.u64(s.initial_bins as u64);
        h.u64(s.max_bins as u64);
        h.u64(s.rel_gap.to_bits());
        h.u64(s.zero_floor.to_bits());
        h.u64(s.max_iterations_per_level as u64);
        h.u64(s.stall_tolerance.to_bits());
        h.u64(s.stall_window as u64);
        h.u64(s.max_total_cost.to_bits());
        h.finish()
    }

    /// The plan hash as the 16-digit hex string stored in manifests.
    pub fn hash_hex(&self) -> String {
        format!("{:016x}", self.hash())
    }

    /// Assembles the full surface into a [`Grid`] (rows = `axes[0]`,
    /// columns = `axes[1]`).
    ///
    /// # Panics
    ///
    /// Panics when the plan is not two-axis or `results` is not the
    /// complete lattice in stable-index order — callers obtain results
    /// from [`run_points`](crate::sweep::run_points) (full shard) or
    /// [`merge_checkpoints`](crate::sweep::merge_checkpoints), both of
    /// which guarantee completeness.
    pub fn to_grid(&self, results: &[PointResult]) -> Grid {
        assert_eq!(self.axes.len(), 2, "to_grid needs a two-axis plan");
        assert_eq!(results.len(), self.len(), "incomplete surface");
        let nx = self.axes[1].len();
        let values = results
            .chunks(nx)
            .map(|row| {
                row.iter()
                    .enumerate()
                    .map(|(j, r)| {
                        debug_assert_eq!(r.index % nx, j, "results out of order");
                        r.value
                    })
                    .collect()
            })
            .collect();
        Grid {
            x_label: self.axes[1].name.clone(),
            y_label: self.axes[0].name.clone(),
            value_label: self.value_label.clone(),
            xs: self.axes[1].values.clone(),
            ys: self.axes[0].values.clone(),
            values,
        }
    }
}

/// Minimal FNV-1a 64-bit hasher (the workspace carries no external
/// hash crates; stability across platforms and releases matters more
/// than speed here).
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Field separator so `("ab","c")` and `("a","bc")` hash apart.
    fn sep(&mut self) {
        self.update(&[0xff]);
    }

    fn u64(&mut self, v: u64) {
        self.update(&v.to_le_bytes());
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> SweepPlan {
        SweepPlan::grid_plan(
            "demo",
            Profile::Quick,
            "loss_rate",
            Axis::new("b", vec![0.1, 1.0]),
            Axis::new("tc", vec![0.5, 5.0, f64::INFINITY]),
            SolverOptions::sweep_profile(),
        )
    }

    #[test]
    fn row_major_point_order() {
        let p = plan();
        assert_eq!(p.len(), 6);
        assert_eq!(p.point(0).coords, vec![0.1, 0.5]);
        assert_eq!(p.point(2).coords, vec![0.1, f64::INFINITY]);
        assert_eq!(p.point(3).coords, vec![1.0, 0.5]);
        assert_eq!(p.point(5).coords, vec![1.0, f64::INFINITY]);
    }

    #[test]
    fn hash_is_stable_and_sensitive() {
        let p = plan();
        assert_eq!(p.hash_hex(), plan().hash_hex());
        assert_eq!(p.hash_hex().len(), 16);

        let mut other = plan();
        other.axes[1].values[0] = 0.500000001;
        assert_ne!(p.hash_hex(), other.hash_hex(), "axis values must matter");

        let mut other = plan();
        other.profile = Profile::Full;
        assert_ne!(p.hash_hex(), other.hash_hex(), "profile must matter");

        let mut other = plan();
        other.solver.max_total_cost = 2e7;
        assert_ne!(p.hash_hex(), other.hash_hex(), "solver options must matter");

        let mut other = plan();
        other.figure = "demo2".into();
        assert_ne!(p.hash_hex(), other.hash_hex(), "figure must matter");
    }

    #[test]
    fn donor_is_the_previous_point_along_the_warm_axis() {
        let p = plan().with_warm_axis(0); // 2 buffers × 3 cutoffs
        // First buffer row: no predecessor, always cold.
        assert_eq!(p.donor(0), None);
        assert_eq!(p.donor(2), None);
        // Second row: donor is the same cutoff one buffer earlier.
        assert_eq!(p.donor(3), Some(0));
        assert_eq!(p.donor(5), Some(2));
        assert_eq!(p.wave_of(2), 0);
        assert_eq!(p.wave_of(3), 1);

        // Without a warm axis nothing donates and all points share
        // wave 0 (one unsynchronised batch).
        let cold = plan();
        assert!((0..cold.len()).all(|i| cold.donor(i).is_none()));
        assert!((0..cold.len()).all(|i| cold.wave_of(i) == 0));
    }

    #[test]
    fn warm_axis_never_enters_the_plan_hash() {
        // Warm starts change iteration counts, not values, so surfaces
        // solved either way must keep merging against each other.
        assert_eq!(plan().hash_hex(), plan().with_warm_axis(0).hash_hex());
    }

    #[test]
    fn shard_points_partition_the_lattice() {
        let p = plan();
        let all: Vec<usize> = (0..p.len()).collect();
        for count in 1..=4u32 {
            let mut seen = Vec::new();
            for index in 0..count {
                let shard = ShardSpec::new(index, count).unwrap();
                seen.extend(p.points_for(&shard).iter().map(|pt| pt.index));
            }
            seen.sort_unstable();
            assert_eq!(seen, all, "count={count}");
        }
    }

    #[test]
    fn grid_assembly_matches_axes() {
        let p = plan();
        let results: Vec<PointResult> = (0..p.len())
            .map(|i| PointResult {
                index: i,
                value: i as f64 * 0.25,
                iterations: 1,
                bins: 128,
                converged: true,
                solve_us: None,
            })
            .collect();
        let g = p.to_grid(&results);
        g.validate();
        assert_eq!(g.ys, vec![0.1, 1.0]);
        assert_eq!(g.values[1][2], 5.0 * 0.25);
        assert_eq!(g.x_label, "tc");
    }
}
