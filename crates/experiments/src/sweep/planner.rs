//! Cost-weighted re-split planning: turn measured per-point solve
//! durations into an explicit shard assignment that balances predicted
//! wall-clock instead of point count.
//!
//! Round-robin sharding balances *point counts*, which balances time
//! only when every lattice point costs about the same. Deep-loss
//! corners of a surface can be orders of magnitude slower than the
//! rest, so a round-robin split leaves most hosts idle while one
//! straggler finishes the expensive corner. The pieces here close that
//! gap:
//!
//! * [`CostProfile`] — aggregates the `solve_us` durations recorded in
//!   one or more prior checkpoint files (complete or partial — a
//!   profiling pass killed early is fine) into a mean cost per
//!   measured lattice point.
//! * [`CostProfile::costs`] — extends the measured points to the full
//!   lattice by wavefront neighbour interpolation: each unmeasured
//!   point takes the mean of its already-costed lattice neighbours,
//!   wave by wave, so cost estimates follow the smooth structure of
//!   the surface. With no measurements at all, every point costs 1.0
//!   and the planner degrades to a point-count balance.
//! * [`plan_assignment`] — LPT (longest-processing-time-first) greedy
//!   bin-packing of the costed points into `n` shards, compared
//!   against the round-robin split on the same costs; whichever has
//!   the smaller predicted makespan wins, so the emitted assignment is
//!   **never worse than round-robin** on the recorded durations.
//! * [`SweepAssignment`] — the serialized plan (one JSON object tied
//!   to the plan hash) that the `sweep_plan` binary writes and the
//!   figure binaries consume via `--assignment`, turning each shard
//!   into the explicit owned-set form of [`ShardSpec`].
//!
//! Determinism matters as much here as in the solver: ties in the LPT
//! order and in shard loads break toward the lower index, so the same
//! checkpoints always produce byte-identical assignment files.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use lrd_obs::{parse_json, write_json_f64, write_json_string, Json};

use crate::sweep::{read_checkpoint, ShardSpec, SweepError, SweepPlan};

/// Mean measured solve cost per lattice point, aggregated from prior
/// checkpoint files of the same plan.
#[derive(Debug, Clone, PartialEq)]
pub struct CostProfile {
    /// Figure the checkpoints were solved for.
    pub figure: String,
    /// Plan hash every checkpoint agreed on.
    pub plan_hash: String,
    /// Profile tag every checkpoint agreed on.
    pub profile: String,
    /// Total lattice points of the plan (not just the measured ones).
    pub total_points: usize,
    /// Mean measured `solve_us` per point index. Sparse: points never
    /// solved, or solved by a duration-less (pre-cost-model) run, are
    /// absent and get interpolated by [`CostProfile::costs`].
    measured: BTreeMap<usize, f64>,
}

impl CostProfile {
    /// Builds a profile from checkpoint files.
    ///
    /// The files must agree on figure, plan hash, profile and lattice
    /// size ([`SweepError::ManifestMismatch`] names the first
    /// disagreeing field), but — unlike
    /// [`merge_checkpoints`](crate::sweep::merge_checkpoints) — they
    /// need not form a complete partition: a profiling pass killed
    /// half-way, a single shard of many, or several repeated runs of
    /// the same shard are all usable. A point measured more than once
    /// contributes the mean of its durations.
    pub fn from_checkpoints(paths: &[PathBuf]) -> Result<CostProfile, SweepError> {
        let (first_path, rest) = paths.split_first().ok_or(SweepError::NoCheckpoints)?;
        let first = read_checkpoint(first_path)?;
        let reference = first.manifest.clone();

        let mut sums: BTreeMap<usize, (f64, u32)> = BTreeMap::new();
        let mut absorb = |path: &Path, ck: crate::sweep::Checkpoint| -> Result<(), SweepError> {
            let m = &ck.manifest;
            let mismatch = |field, expected: &dyn ToString, found: &dyn ToString| {
                Err(SweepError::ManifestMismatch {
                    path: path.to_path_buf(),
                    field,
                    expected: expected.to_string(),
                    found: found.to_string(),
                })
            };
            if m.figure != reference.figure {
                return mismatch("figure", &reference.figure, &m.figure);
            }
            if m.plan_hash != reference.plan_hash {
                return mismatch("plan_hash", &reference.plan_hash, &m.plan_hash);
            }
            if m.profile != reference.profile {
                return mismatch("profile", &reference.profile, &m.profile);
            }
            if m.total_points != reference.total_points {
                return mismatch("points", &reference.total_points, &m.total_points);
            }
            for point in &ck.points {
                if point.index >= m.total_points {
                    return Err(SweepError::ForeignPoint {
                        path: path.to_path_buf(),
                        index: point.index,
                    });
                }
                if let Some(us) = point.solve_us {
                    let slot = sums.entry(point.index).or_insert((0.0, 0));
                    slot.0 += us;
                    slot.1 += 1;
                }
            }
            Ok(())
        };

        absorb(first_path, first)?;
        for path in rest {
            let ck = read_checkpoint(path)?;
            absorb(path, ck)?;
        }

        Ok(CostProfile {
            figure: reference.figure,
            plan_hash: reference.plan_hash,
            profile: reference.profile,
            total_points: reference.total_points,
            measured: sums
                .into_iter()
                .map(|(i, (sum, n))| (i, sum / n as f64))
                .collect(),
        })
    }

    /// How many lattice points carry a measured duration.
    pub fn measured_points(&self) -> usize {
        self.measured.len()
    }

    /// The full per-point cost vector: measured means where available,
    /// wavefront neighbour interpolation elsewhere.
    ///
    /// Interpolation runs in waves over the lattice graph (points are
    /// neighbours when they differ by one step along one axis): every
    /// uncosted point adjacent to at least one costed point takes the
    /// mean of its costed neighbours, then the wave advances. The
    /// lattice is connected, so a single measured point is enough to
    /// cost everything; with none, every point costs 1.0 (point-count
    /// balancing).
    ///
    /// # Errors
    ///
    /// [`SweepError::PlanHashMismatch`] when `plan` is not the plan the
    /// profiled checkpoints were solved under.
    pub fn costs(&self, plan: &SweepPlan) -> Result<Vec<f64>, SweepError> {
        if plan.hash_hex() != self.plan_hash {
            return Err(SweepError::PlanHashMismatch {
                expected: plan.hash_hex(),
                found: self.plan_hash.clone(),
            });
        }
        let n = self.total_points;
        let mut cost = vec![0.0f64; n];
        let mut known = vec![false; n];
        for (&i, &c) in &self.measured {
            cost[i] = c;
            known[i] = true;
        }
        if self.measured.is_empty() {
            return Ok(vec![1.0; n]);
        }

        let dims: Vec<usize> = plan.axes.iter().map(|a| a.len()).collect();
        loop {
            let mut wave: Vec<(usize, f64)> = Vec::new();
            for p in 0..n {
                if known[p] {
                    continue;
                }
                let mut sum = 0.0;
                let mut count = 0u32;
                for q in lattice_neighbours(p, &dims) {
                    if known[q] {
                        sum += cost[q];
                        count += 1;
                    }
                }
                if count > 0 {
                    wave.push((p, sum / count as f64));
                }
            }
            if wave.is_empty() {
                break;
            }
            for (p, c) in wave {
                cost[p] = c;
                known[p] = true;
            }
        }
        // The lattice graph is connected so the waves reach every
        // point; the fallback guards a degenerate axis-less plan.
        let mean = self.measured.values().sum::<f64>() / self.measured.len() as f64;
        for p in 0..n {
            if !known[p] {
                cost[p] = mean;
            }
        }
        Ok(cost)
    }
}

/// Stable-index neighbours of point `p` in the row-major lattice with
/// axis lengths `dims` (one step along one axis, in bounds).
fn lattice_neighbours(p: usize, dims: &[usize]) -> Vec<usize> {
    let mut out = Vec::with_capacity(2 * dims.len());
    let mut stride = 1usize;
    for &len in dims.iter().rev() {
        let coord = (p / stride) % len;
        if coord > 0 {
            out.push(p - stride);
        }
        if coord + 1 < len {
            out.push(p + stride);
        }
        stride *= len;
    }
    out
}

/// One shard of a planned assignment: its owned points and the
/// predicted cost of solving them.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardPlan {
    /// The owned point indices, sorted ascending.
    pub points: Vec<usize>,
    /// Predicted shard cost: the sum of the per-point cost estimates,
    /// in the units of the profile (µs when measured, dimensionless
    /// 1.0-per-point when unmeasured).
    pub predicted_us: f64,
}

/// An explicit per-shard point assignment, tied to one plan.
///
/// Serialized as a single JSON object so a planning host can hand the
/// file to every worker; each worker turns its row into the owned-set
/// [`ShardSpec`] via [`SweepAssignment::shard_spec`].
#[derive(Debug, Clone, PartialEq)]
pub struct SweepAssignment {
    /// Figure the assignment was planned for.
    pub figure: String,
    /// [`SweepPlan::hash_hex`] the costs were measured under; workers
    /// and merge refuse an assignment whose hash disagrees with the
    /// registry-rebuilt plan.
    pub plan_hash: String,
    /// Profile tag of the plan.
    pub profile: String,
    /// Total lattice points; the shards partition `0..total_points`.
    pub total_points: usize,
    /// One entry per shard, indexed by shard number.
    pub shards: Vec<ShardPlan>,
}

impl SweepAssignment {
    /// Predicted makespan: the cost of the most loaded shard.
    pub fn makespan(&self) -> f64 {
        self.shards
            .iter()
            .map(|s| s.predicted_us)
            .fold(0.0, f64::max)
    }

    /// The owned-set [`ShardSpec`] for shard `index`, or `None` when
    /// the index is out of range.
    pub fn shard_spec(&self, index: u32) -> Option<ShardSpec> {
        let points = self.shards.get(index as usize)?.points.clone();
        ShardSpec::owned(index, self.shards.len() as u32, points)
    }

    /// Checks the assignment against the registry-rebuilt `plan`:
    /// matching hash ([`SweepError::PlanHashMismatch`]) and an exact
    /// partition of the lattice ([`SweepError::DuplicatePoint`] /
    /// [`SweepError::MissingPoints`], attributed to `path`).
    pub fn validate_against(&self, plan: &SweepPlan, path: &Path) -> Result<(), SweepError> {
        if plan.hash_hex() != self.plan_hash {
            return Err(SweepError::PlanHashMismatch {
                expected: plan.hash_hex(),
                found: self.plan_hash.clone(),
            });
        }
        let mut seen = vec![false; self.total_points];
        for shard in &self.shards {
            for &p in &shard.points {
                if p >= self.total_points {
                    return Err(SweepError::ForeignPoint {
                        path: path.to_path_buf(),
                        index: p,
                    });
                }
                if seen[p] {
                    return Err(SweepError::DuplicatePoint {
                        path: path.to_path_buf(),
                        index: p,
                    });
                }
                seen[p] = true;
            }
        }
        let missing = seen.iter().filter(|&&s| !s).count();
        if missing > 0 {
            let first = seen.iter().position(|&s| !s).unwrap_or(0);
            return Err(SweepError::MissingPoints { missing, first });
        }
        Ok(())
    }

    /// Renders the assignment as its single-line JSON form.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"kind\":\"assignment\",\"figure\":");
        write_json_string(&mut out, &self.figure);
        out.push_str(",\"plan_hash\":");
        write_json_string(&mut out, &self.plan_hash);
        out.push_str(",\"profile\":");
        write_json_string(&mut out, &self.profile);
        out.push_str(&format!(",\"points\":{},\"shards\":[", self.total_points));
        for (i, shard) in self.shards.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"points\":[");
            for (j, &p) in shard.points.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&p.to_string());
            }
            out.push_str("],\"predicted_us\":");
            write_json_f64(&mut out, shard.predicted_us);
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// Writes the JSON form (plus trailing newline) to `path`.
    pub fn write(&self, path: &Path) -> Result<(), SweepError> {
        std::fs::write(path, format!("{}\n", self.to_json())).map_err(|e| SweepError::io(path, &e))
    }

    /// Reads an assignment file written by [`SweepAssignment::write`].
    pub fn read(path: &Path) -> Result<SweepAssignment, SweepError> {
        let malformed = |reason: &str| SweepError::Malformed {
            path: path.to_path_buf(),
            line: 1,
            reason: reason.to_string(),
        };
        let text = std::fs::read_to_string(path).map_err(|e| SweepError::io(path, &e))?;
        let doc = parse_json(text.trim_end_matches('\n'))
            .map_err(|e| malformed(&e.to_string()))?;
        if doc.get("kind").and_then(Json::as_str) != Some("assignment") {
            return Err(malformed("not an assignment file"));
        }
        let str_field = |name: &str| -> Result<String, SweepError> {
            doc.get(name)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| malformed(&format!("missing string field {name:?}")))
        };
        let shards = doc
            .get("shards")
            .and_then(Json::as_array)
            .ok_or_else(|| malformed("missing \"shards\" array"))?
            .iter()
            .map(|s| -> Option<ShardPlan> {
                let points = s
                    .get("points")?
                    .as_array()?
                    .iter()
                    .map(|v| v.as_u64().map(|p| p as usize))
                    .collect::<Option<Vec<usize>>>()?;
                Some(ShardPlan {
                    points,
                    predicted_us: s.get("predicted_us")?.as_num()?,
                })
            })
            .collect::<Option<Vec<ShardPlan>>>()
            .ok_or_else(|| malformed("unreadable shard entry"))?;
        if shards.is_empty() {
            return Err(malformed("assignment has no shards"));
        }
        Ok(SweepAssignment {
            figure: str_field("figure")?,
            plan_hash: str_field("plan_hash")?,
            profile: str_field("profile")?,
            total_points: doc
                .get("points")
                .and_then(Json::as_u64)
                .ok_or_else(|| malformed("missing integer field \"points\""))? as usize,
            shards,
        })
    }
}

/// Greedy LPT bin-packing: points in descending cost order (ties to
/// the lower index), each onto the currently least-loaded shard (ties
/// to the lower shard).
fn lpt_split(costs: &[f64], shard_count: u32) -> Vec<Vec<usize>> {
    let mut order: Vec<usize> = (0..costs.len()).collect();
    order.sort_by(|&a, &b| {
        costs[b]
            .partial_cmp(&costs[a])
            .expect("costs are finite")
            .then(a.cmp(&b))
    });
    let mut loads = vec![0.0f64; shard_count as usize];
    let mut sets: Vec<Vec<usize>> = vec![Vec::new(); shard_count as usize];
    for &p in &order {
        let best = (0..loads.len())
            .min_by(|&i, &j| loads[i].partial_cmp(&loads[j]).unwrap().then(i.cmp(&j)))
            .expect("shard_count >= 1");
        sets[best].push(p);
        loads[best] += costs[p];
    }
    for set in &mut sets {
        set.sort_unstable();
    }
    sets
}

/// The round-robin point sets (`p % n == i`) — the split `--shard i/n`
/// runs by default.
fn round_robin_split(total_points: usize, shard_count: u32) -> Vec<Vec<usize>> {
    (0..shard_count as usize)
        .map(|i| (i..total_points).step_by(shard_count as usize).collect())
        .collect()
}

fn split_makespan(sets: &[Vec<usize>], costs: &[f64]) -> f64 {
    sets.iter()
        .map(|set| set.iter().map(|&p| costs[p]).sum::<f64>())
        .fold(0.0, f64::max)
}

/// Plans an explicit `shard_count`-way assignment of `plan`'s lattice
/// weighted by `profile`'s measured costs.
///
/// The LPT packing is compared against the round-robin split on the
/// same cost vector and the cheaper (smaller predicted makespan) of
/// the two is emitted, so the result is never worse than what
/// `--shard i/n` would have done — the planner can only help.
///
/// # Panics
///
/// Panics when `shard_count` is zero.
pub fn plan_assignment(
    plan: &SweepPlan,
    profile: &CostProfile,
    shard_count: u32,
) -> Result<SweepAssignment, SweepError> {
    assert!(shard_count > 0, "shard_count must be at least 1");
    let costs = profile.costs(plan)?;
    let lpt = lpt_split(&costs, shard_count);
    let rr = round_robin_split(costs.len(), shard_count);
    let sets = if split_makespan(&lpt, &costs) <= split_makespan(&rr, &costs) {
        lpt
    } else {
        rr
    };
    Ok(SweepAssignment {
        figure: profile.figure.clone(),
        plan_hash: profile.plan_hash.clone(),
        profile: profile.profile.clone(),
        total_points: costs.len(),
        shards: sets
            .into_iter()
            .map(|points| {
                let predicted_us = points.iter().map(|&p| costs[p]).sum();
                ShardPlan {
                    points,
                    predicted_us,
                }
            })
            .collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::Profile;
    use crate::sweep::{manifest_line, point_line, Axis, PointResult};
    use lrd_fluidq::SolverOptions;

    fn plan() -> SweepPlan {
        SweepPlan::grid_plan(
            "demo",
            Profile::Quick,
            "loss_rate",
            Axis::new("b", vec![0.1, 1.0]),
            Axis::new("tc", vec![0.5, 5.0, f64::INFINITY]),
            SolverOptions::sweep_profile(),
        )
    }

    fn profile_with(plan: &SweepPlan, measured: &[(usize, f64)]) -> CostProfile {
        CostProfile {
            figure: plan.figure.clone(),
            plan_hash: plan.hash_hex(),
            profile: plan.profile.tag().to_string(),
            total_points: plan.len(),
            measured: measured.iter().copied().collect(),
        }
    }

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("lrd-planner-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// Writes a checkpoint for `shard` whose points carry the given
    /// durations (`None` = duration-less line).
    fn write_checkpoint(
        plan: &SweepPlan,
        shard: &ShardSpec,
        durations: &[(usize, Option<f64>)],
        path: &Path,
    ) {
        let mut text = manifest_line(plan, shard);
        text.push('\n');
        for &(index, solve_us) in durations {
            let result = PointResult {
                index,
                value: index as f64 * 0.5,
                iterations: 7,
                bins: 128,
                converged: true,
                solve_us,
            };
            text.push_str(&point_line(&plan.point(index).coords, &result));
            text.push('\n');
        }
        std::fs::write(path, text).unwrap();
    }

    #[test]
    fn profile_aggregates_means_across_checkpoints() {
        let p = plan();
        let dir = tmpdir("aggregate");
        let a = dir.join("a.jsonl");
        let b = dir.join("b.jsonl");
        write_checkpoint(
            &p,
            &ShardSpec::new(0, 2).unwrap(),
            &[(0, Some(100.0)), (2, Some(30.0)), (4, None)],
            &a,
        );
        // A second profiling pass re-measured point 0.
        write_checkpoint(&p, &ShardSpec::new(0, 2).unwrap(), &[(0, Some(300.0))], &b);

        let profile = CostProfile::from_checkpoints(&[a, b]).unwrap();
        assert_eq!(profile.total_points, 6);
        assert_eq!(profile.measured_points(), 2);
        assert_eq!(profile.measured.get(&0), Some(&200.0));
        assert_eq!(profile.measured.get(&2), Some(&30.0));
        // The duration-less point contributes nothing.
        assert_eq!(profile.measured.get(&4), None);
    }

    #[test]
    fn profile_rejects_mixed_plans_but_accepts_partial_coverage() {
        let p = plan();
        let dir = tmpdir("mixed");
        let a = dir.join("a.jsonl");
        write_checkpoint(&p, &ShardSpec::new(0, 3).unwrap(), &[(0, Some(10.0))], &a);

        // Partial coverage (one shard of three, two points unsolved) is
        // exactly the profiling-pass use case.
        assert!(CostProfile::from_checkpoints(std::slice::from_ref(&a)).is_ok());

        let mut other = plan();
        other.axes[0].values[0] = 0.7;
        let b = dir.join("b.jsonl");
        write_checkpoint(&other, &ShardSpec::FULL, &[(1, Some(5.0))], &b);
        assert!(matches!(
            CostProfile::from_checkpoints(&[a, b]).unwrap_err(),
            SweepError::ManifestMismatch {
                field: "plan_hash",
                ..
            }
        ));
    }

    #[test]
    fn interpolation_fills_unmeasured_neighbours_wave_by_wave() {
        let p = plan(); // 2x3 lattice, indices 0..6
        let profile = profile_with(&p, &[(0, 90.0)]);
        let costs = profile.costs(&p).unwrap();
        // Wave 1: neighbours of 0 (point 1 across, point 3 down).
        assert_eq!(costs[0], 90.0);
        assert_eq!(costs[1], 90.0);
        assert_eq!(costs[3], 90.0);
        // Later waves inherit through the lattice; everything costed.
        assert!(costs.iter().all(|&c| c == 90.0));

        // Two measured corners: the middle of the top row averages
        // them on the first wave.
        let profile = profile_with(&p, &[(0, 10.0), (2, 30.0)]);
        let costs = profile.costs(&p).unwrap();
        assert_eq!(costs[1], 20.0);

        // No measurements at all: uniform unit costs.
        let profile = profile_with(&p, &[]);
        assert_eq!(profile.costs(&p).unwrap(), vec![1.0; 6]);

        // Wrong plan: typed hash mismatch.
        let mut other = plan();
        other.figure = "other".into();
        assert!(matches!(
            profile.costs(&other).unwrap_err(),
            SweepError::PlanHashMismatch { .. }
        ));
    }

    #[test]
    fn lattice_neighbours_respect_bounds() {
        // 2x3 lattice: index 0 = (0,0), 5 = (1,2).
        let dims = [2, 3];
        let sorted = |mut v: Vec<usize>| {
            v.sort_unstable();
            v
        };
        assert_eq!(sorted(lattice_neighbours(0, &dims)), vec![1, 3]);
        assert_eq!(sorted(lattice_neighbours(1, &dims)), vec![0, 2, 4]);
        assert_eq!(sorted(lattice_neighbours(5, &dims)), vec![2, 4]);
    }

    #[test]
    fn lpt_pins_the_skewed_vector() {
        // One dominant point: LPT isolates it; round-robin would lump
        // it with two others.
        let p = plan();
        let profile = profile_with(
            &p,
            &[
                (0, 100.0),
                (1, 10.0),
                (2, 10.0),
                (3, 10.0),
                (4, 10.0),
                (5, 10.0),
            ],
        );
        let assignment = plan_assignment(&p, &profile, 2).unwrap();
        assert_eq!(assignment.shards[0].points, vec![0]);
        assert_eq!(assignment.shards[1].points, vec![1, 2, 3, 4, 5]);
        assert_eq!(assignment.shards[0].predicted_us, 100.0);
        assert_eq!(assignment.shards[1].predicted_us, 50.0);
        assert_eq!(assignment.makespan(), 100.0);

        // Round-robin on the same costs: shard 0 = {0,2,4} = 120.
        let rr = round_robin_split(6, 2);
        let costs = profile.costs(&p).unwrap();
        assert_eq!(split_makespan(&rr, &costs), 120.0);
    }

    #[test]
    fn assignment_is_never_worse_than_round_robin() {
        let p = plan();
        use lrd_rng::rngs::SmallRng;
        use lrd_rng::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(0x10ad_ba1a);
        for trial in 0..50 {
            let mut measured: Vec<(usize, f64)> = Vec::new();
            for i in 0..p.len() {
                if rng.gen_bool(0.7) {
                    measured.push((i, rng.gen_range(1.0..1e4)));
                }
            }
            let profile = profile_with(&p, &measured);
            let costs = profile.costs(&p).unwrap();
            for shards in [1u32, 2, 3, 4] {
                let assignment = plan_assignment(&p, &profile, shards).unwrap();
                let rr = split_makespan(&round_robin_split(p.len(), shards), &costs);
                assert!(
                    assignment.makespan() <= rr,
                    "trial {trial}, {shards} shards: {} > {rr}",
                    assignment.makespan()
                );
            }
        }
    }

    #[test]
    fn assignment_round_trips_and_validates() {
        let p = plan();
        let profile = profile_with(&p, &[(0, 40.0), (5, 4.0)]);
        let assignment = plan_assignment(&p, &profile, 3).unwrap();
        let dir = tmpdir("roundtrip");
        let path = dir.join("assignment.json");
        assignment.write(&path).unwrap();
        let back = SweepAssignment::read(&path).unwrap();
        assert_eq!(back, assignment);
        back.validate_against(&p, &path).unwrap();

        // Every shard materialises as an owned-set ShardSpec and the
        // set of specs partitions the lattice.
        let mut owners = vec![0u32; p.len()];
        for i in 0..3u32 {
            let spec = back.shard_spec(i).unwrap();
            assert!(spec.is_explicit());
            for (point, count) in owners.iter_mut().enumerate() {
                if spec.owns(point) {
                    *count += 1;
                }
            }
        }
        assert_eq!(owners, vec![1; p.len()]);

        // Tampered partitions are rejected with typed errors.
        let mut dup = back.clone();
        dup.shards[0].points = dup.shards[1].points.clone();
        match dup.validate_against(&p, &path).unwrap_err() {
            SweepError::DuplicatePoint { .. } | SweepError::MissingPoints { .. } => {}
            other => panic!("expected partition error, got {other:?}"),
        }
        let mut gap = back.clone();
        let removed = gap.shards.iter_mut().find(|s| !s.points.is_empty()).unwrap();
        removed.points.pop();
        assert!(matches!(
            gap.validate_against(&p, &path).unwrap_err(),
            SweepError::MissingPoints { missing: 1, .. }
        ));
        let mut stale = back;
        stale.plan_hash = "0000000000000000".into();
        assert!(matches!(
            stale.validate_against(&p, &path).unwrap_err(),
            SweepError::PlanHashMismatch { .. }
        ));
    }

    #[test]
    fn end_to_end_from_real_checkpoints() {
        // Profile a partial round-robin pass, plan a 2-way re-split,
        // and check the re-split beats round-robin on the recorded
        // durations (the acceptance criterion of the cost model).
        let p = plan();
        let dir = tmpdir("endtoend");
        let a = dir.join("profiling.jsonl");
        // Point 2 is the expensive corner; points 0 and 4 are cheap.
        write_checkpoint(
            &p,
            &ShardSpec::new(0, 2).unwrap(),
            &[(0, Some(5.0)), (2, Some(400.0)), (4, Some(5.0))],
            &a,
        );
        let profile = CostProfile::from_checkpoints(std::slice::from_ref(&a)).unwrap();
        let assignment = plan_assignment(&p, &profile, 2).unwrap();
        let costs = profile.costs(&p).unwrap();
        let rr = split_makespan(&round_robin_split(p.len(), 2), &costs);
        assert!(assignment.makespan() <= rr);
        assignment
            .validate_against(&p, &dir.join("assignment.json"))
            .unwrap();
    }
}
