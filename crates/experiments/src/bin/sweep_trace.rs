//! Cross-process trace export: joins a coordinator lease log with
//! per-worker telemetry captures into one Chrome trace-event timeline.
//!
//! ```text
//! sweep_trace --lease-log coord_lease.jsonl [--out trace.json] \
//!     <worker1.jsonl> [<worker2.jsonl>...]
//! ```
//!
//! The output (`trace.json`, Chrome trace-event format — load it in
//! `chrome://tracing` or Perfetto) has one track per worker showing:
//!
//! * **lease-held slices** from the coordinator's lease log (grant →
//!   done/reclaim), labelled with the lease's trace id
//!   (`t<batch>.<epoch>`) and its outcome;
//! * **batch and solve spans** from that worker's own `--telemetry`
//!   capture, placed on the same wall-clock axis via the capture's
//!   `meta` anchor line (`unix_us - t_us`);
//! * **instant markers** for reclaims and lease abandonments.
//!
//! The join needs no shared state: grants carry a deterministic trace
//! id that workers stamp on their batch spans, worker captures carry
//! the worker identity on every line, and both sides stamp wall-clock
//! microseconds. A worker capture whose identity never appears in the
//! lease log still gets a track (its solve spans are real work), and a
//! lease whose worker capture is missing still gets its slice — the
//! timeline degrades, never lies.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;

use lrd_obs::{parse_json, write_json_string, Json};

struct Args {
    lease_log: PathBuf,
    out: PathBuf,
    workers: Vec<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut lease_log = None;
    let mut out = PathBuf::from("trace.json");
    let mut workers = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &'static str| -> Result<String, String> {
            args.next().ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--help" | "-h" => {
                println!(
                    "usage: sweep_trace --lease-log <coord_lease.jsonl> [--out trace.json]\n\
                     \u{20}        <worker.jsonl>...\n\
                     \n\
                     Joins a sweep_coord lease log with worker --telemetry captures\n\
                     into a Chrome trace-event timeline (one track per worker)."
                );
                std::process::exit(0);
            }
            "--lease-log" => lease_log = Some(PathBuf::from(value("--lease-log")?)),
            "--out" => out = PathBuf::from(value("--out")?),
            other if other.starts_with('-') => {
                return Err(format!("unknown argument `{other}` (see sweep_trace --help)"))
            }
            other => workers.push(PathBuf::from(other)),
        }
    }
    Ok(Args {
        lease_log: lease_log.ok_or("--lease-log <path> is required")?,
        out,
        workers,
    })
}

/// One event for the output timeline, in wall-clock microseconds.
struct TraceEvent {
    name: String,
    worker: String,
    ts_us: f64,
    /// `Some(dur)` renders a complete slice (`ph:"X"`), `None` an
    /// instant marker (`ph:"i"`).
    dur_us: Option<f64>,
    args: Vec<(&'static str, String)>,
}

/// A lease grant awaiting its closing event.
struct OpenLease {
    worker: String,
    us: u64,
}

/// Parses the coordinator lease log into lease slices and reclaim
/// markers. Returns the events plus every granted `(batch, epoch)` —
/// the coverage set `telemetry_check --fleet` verifies against.
fn read_lease_log(
    path: &PathBuf,
    events: &mut Vec<TraceEvent>,
) -> Result<Vec<(usize, u64)>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read lease log {}: {e}", path.display()))?;
    let mut batch_sizes: Vec<usize> = Vec::new();
    let mut open: BTreeMap<(usize, u64), OpenLease> = BTreeMap::new();
    let mut granted = Vec::new();
    let mut last_us = 0u64;
    for (i, line) in text.lines().enumerate() {
        let Ok(doc) = parse_json(line) else {
            // A torn tail from a killed coordinator is expected; any
            // earlier unreadable line would have broken resume too.
            break;
        };
        let kind = doc.get("kind").and_then(Json::as_str).unwrap_or_default();
        if i == 0 {
            if kind != "coord_manifest" {
                return Err(format!(
                    "{}: first line is not a coord_manifest",
                    path.display()
                ));
            }
            if let Some(batches) = doc.get("batches").and_then(Json::as_array) {
                batch_sizes = batches
                    .iter()
                    .map(|b| b.as_array().map_or(0, <[Json]>::len))
                    .collect();
            }
            continue;
        }
        let field = |name: &str| doc.get(name).and_then(Json::as_u64);
        let (Some(batch), Some(epoch)) = (field("batch"), field("epoch")) else {
            continue;
        };
        let batch = batch as usize;
        let worker = doc
            .get("worker")
            .and_then(Json::as_str)
            .unwrap_or("?")
            .to_string();
        // Pre-PR-7 logs carry no wall clock; fall back to a synthetic
        // monotone axis so old logs still render (with bogus spacing).
        let us = field("us").unwrap_or(last_us + 1);
        last_us = last_us.max(us);
        match kind {
            "grant" => {
                granted.push((batch, epoch));
                open.insert((batch, epoch), OpenLease { worker, us });
            }
            "done" | "reclaim" => {
                if kind == "reclaim" {
                    events.push(TraceEvent {
                        name: format!("reclaim t{batch}.{epoch}"),
                        worker: worker.clone(),
                        ts_us: us as f64,
                        dur_us: None,
                        args: vec![("trace", format!("t{batch}.{epoch}"))],
                    });
                }
                if let Some(lease) = open.remove(&(batch, epoch)) {
                    events.push(lease_slice(lease, batch, epoch, us, kind, &batch_sizes));
                }
            }
            _ => {}
        }
    }
    // Leases still open at the end of the log (coordinator killed, or
    // log copied mid-flight): close them at the last stamp seen.
    for ((batch, epoch), lease) in open {
        let end = last_us.max(lease.us);
        events.push(lease_slice(lease, batch, epoch, end, "open", &batch_sizes));
    }
    Ok(granted)
}

fn lease_slice(
    lease: OpenLease,
    batch: usize,
    epoch: u64,
    end_us: u64,
    outcome: &str,
    batch_sizes: &[usize],
) -> TraceEvent {
    TraceEvent {
        name: format!("lease t{batch}.{epoch}"),
        worker: lease.worker,
        ts_us: lease.us as f64,
        dur_us: Some(end_us.saturating_sub(lease.us) as f64),
        args: vec![
            ("trace", format!("t{batch}.{epoch}")),
            ("outcome", outcome.to_string()),
            (
                "points",
                batch_sizes.get(batch).copied().unwrap_or(0).to_string(),
            ),
        ],
    }
}

/// Reads one worker `--telemetry` capture, anchoring its process clock
/// to wall time via the leading `meta` line.
fn read_worker_capture(path: &PathBuf, events: &mut Vec<TraceEvent>) -> Result<String, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read worker capture {}: {e}", path.display()))?;
    let mut who = String::new();
    let mut offset_us = 0i64;
    let mut anchored = false;
    for line in text.lines() {
        let Ok(doc) = parse_json(line) else {
            break; // torn tail from a killed worker
        };
        let kind = doc.get("kind").and_then(Json::as_str).unwrap_or_default();
        let t_us = doc.get("t_us").and_then(Json::as_num).unwrap_or(0.0);
        if kind == "meta" {
            who = doc
                .get("who")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string();
            if let Some(unix) = doc.get("unix_us").and_then(Json::as_num) {
                offset_us = (unix - t_us) as i64;
                anchored = true;
            }
            continue;
        }
        if !anchored {
            // No anchor line (pre-PR-7 capture): nothing can be placed
            // on the shared axis.
            continue;
        }
        let name = doc.get("name").and_then(Json::as_str).unwrap_or_default();
        let ts_us = t_us + offset_us as f64;
        let fields = doc.get("fields");
        let field_str = |key: &str| -> Option<String> {
            let f = fields?.get(key)?;
            f.as_str()
                .map(str::to_string)
                .or_else(|| f.as_num().map(|n| n.to_string()))
        };
        match (kind, name) {
            ("span", "sweep.batch") | ("span", "solver.solve") => {
                let dur = doc.get("dur_us").and_then(Json::as_num).unwrap_or(0.0);
                let mut args = Vec::new();
                if let Some(trace) = field_str("trace") {
                    args.push(("trace", trace));
                }
                events.push(TraceEvent {
                    name: match field_str("trace") {
                        Some(trace) if name == "sweep.batch" => format!("batch {trace}"),
                        _ => name.to_string(),
                    },
                    worker: who.clone(),
                    // Span records stamp their *start*; dur follows.
                    ts_us,
                    dur_us: Some(dur),
                    args,
                })
            }
            ("event", "sweep.lease") | ("event", "sweep.lease_abandoned") => {
                let mut args = Vec::new();
                if let Some(trace) = field_str("trace") {
                    args.push(("trace", trace));
                }
                events.push(TraceEvent {
                    name: name.to_string(),
                    worker: who.clone(),
                    ts_us,
                    dur_us: None,
                    args,
                })
            }
            _ => {}
        }
    }
    if who.is_empty() {
        return Err(format!(
            "{}: no meta line with a worker identity (not a --telemetry capture?)",
            path.display()
        ));
    }
    Ok(who)
}

/// Renders the Chrome trace-event JSON: thread-name metadata first,
/// then every event, all on pid 1 with one tid per worker.
fn render_trace(events: &[TraceEvent]) -> String {
    let mut tids: BTreeMap<&str, usize> = BTreeMap::new();
    for e in events {
        let next = tids.len() + 1;
        tids.entry(&e.worker).or_insert(next);
    }
    // Normalize so timestamps start near zero (viewers cope badly
    // with 52-bit microsecond offsets).
    let t0 = events.iter().map(|e| e.ts_us).fold(f64::INFINITY, f64::min);
    let t0 = if t0.is_finite() { t0 } else { 0.0 };
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    let push = |out: &mut String, first: &mut bool, body: String| {
        if !*first {
            out.push(',');
        }
        *first = false;
        out.push_str(&body);
    };
    for (worker, tid) in &tids {
        let mut line = String::from(
            "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":",
        );
        line.push_str(&tid.to_string());
        line.push_str(",\"args\":{\"name\":");
        write_json_string(&mut line, worker);
        line.push_str("}}");
        push(&mut out, &mut first, line);
    }
    for e in events {
        let tid = tids[e.worker.as_str()];
        let mut line = String::from("{\"name\":");
        write_json_string(&mut line, &e.name);
        match e.dur_us {
            Some(dur) => line.push_str(&format!(
                ",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{dur:.3}",
                e.ts_us - t0
            )),
            None => line.push_str(&format!(
                ",\"ph\":\"i\",\"s\":\"t\",\"ts\":{:.3}",
                e.ts_us - t0
            )),
        }
        line.push_str(&format!(",\"pid\":1,\"tid\":{tid},\"args\":{{"));
        for (i, (key, value)) in e.args.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            write_json_string(&mut line, key);
            line.push(':');
            write_json_string(&mut line, value);
        }
        line.push_str("}}");
        push(&mut out, &mut first, line);
    }
    out.push_str("]}");
    out
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let mut events = Vec::new();
    let granted = read_lease_log(&args.lease_log, &mut events)?;
    let mut workers = Vec::new();
    for path in &args.workers {
        workers.push(read_worker_capture(path, &mut events)?);
    }
    events.sort_by(|a, b| a.ts_us.total_cmp(&b.ts_us));
    let trace = render_trace(&events);
    std::fs::write(&args.out, &trace)
        .map_err(|e| format!("cannot write {}: {e}", args.out.display()))?;
    eprintln!(
        "sweep_trace: {} event(s) from {} lease grant(s) and {} worker capture(s) -> {}",
        events.len(),
        granted.len(),
        workers.len(),
        args.out.display(),
    );
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
