//! Prints the corpus statistics table used at the top of EXPERIMENTS.md.

fn main() -> std::process::ExitCode {
    lrd_experiments::figure_main("corpus_report")
}
