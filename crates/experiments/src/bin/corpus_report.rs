//! Prints the corpus statistics table used at the top of
//! `EXPERIMENTS.md`: trace lengths, means, measured Hurst parameters
//! (wavelet and local Whittle), and the calibrated θ per bundle.

use lrd_experiments::{output, Corpus};
use lrd_stats::{wavelet_estimate, whittle_estimate};

fn main() {
    let config = lrd_experiments::cli::run_config();
    let _telemetry = config.install_telemetry();
    let quick = config.quick;
    let corpus = if quick { Corpus::quick() } else { Corpus::full() };
    let mut out = String::from(
        "trace,samples,dt_s,mean_rate_mbps,std_mbps,target_h,wavelet_h,whittle_h,mean_epoch_s,theta_s\n",
    );
    for b in [&corpus.mtv, &corpus.bellcore] {
        let wavelet = wavelet_estimate(b.trace.rates()).h;
        let whittle = whittle_estimate(b.trace.rates()).h;
        out.push_str(&format!(
            "{},{},{},{:.4},{:.4},{},{:.3},{:.3},{:.4},{:.5}\n",
            b.name,
            b.trace.len(),
            b.trace.dt(),
            b.trace.mean_rate(),
            lrd_stats::std_dev(b.trace.rates()),
            b.hurst,
            wavelet,
            whittle,
            b.mean_epoch,
            b.theta,
        ));
    }
    print!("{out}");
    match output::write_results_file("corpus.csv", &out) {
        Ok(p) => eprintln!("wrote {}", p.display()),
        Err(e) => eprintln!("could not write results file: {e}"),
    }
}
