//! Solver runtime survey (the paper's footnote 1: "the typical runtime
//! was less than a second on a workstation; however, when the expected
//! interarrival time is very small, B is very large, and the
//! utilization close to one, the runtime can be considerably longer").
//!
//! Times one solve per parameter corner and prints a CSV of
//! `(utilization, buffer_s, cutoff_s, loss, iterations, bins,
//! converged, millis)` so the footnote's easy/hard regimes can be seen
//! directly. The timing comes from the solver's own `solver.solve`
//! telemetry span — the same clock every figure binary reports through
//! `--telemetry-summary` — rather than an ad-hoc stopwatch around the
//! call.

use lrd_experiments::{output, Corpus};
use lrd_fluidq::SolveSession;
use std::sync::Arc;

fn main() {
    let config = lrd_experiments::cli::run_config();
    // Observe the runs through a collector fanned in alongside any
    // sinks the command line asked for.
    let collector = Arc::new(lrd_obs::CollectingSubscriber::new());
    let mut sinks = match config.build_subscribers() {
        Ok(sinks) => sinks,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    sinks.push(collector.clone());
    let _telemetry = lrd_obs::install_fanout(sinks);
    let quick = config.quick;
    let corpus = if quick { Corpus::quick() } else { Corpus::full() };
    let opts = lrd_fluidq::SolverOptions::sweep_profile();

    let mut csv =
        String::from("utilization,buffer_s,cutoff_s,loss,iterations,bins,converged,millis\n");
    let utils = [0.5, 0.8, 0.95];
    let buffers = [0.05, 0.5, 5.0];
    let cutoffs = [0.1, 10.0, f64::INFINITY];
    for &u in &utils {
        for &b in &buffers {
            for &tc in &cutoffs {
                let model = corpus.mtv.model(u, b, tc);
                let sol = SolveSession::builder(&model).options(&opts).solve();
                let ms = collector
                    .spans("solver.solve")
                    .last()
                    .and_then(|s| s.dur_us())
                    .map_or(f64::NAN, |us| us / 1e3);
                csv.push_str(&format!(
                    "{u},{b},{tc},{:.6e},{},{},{},{:.2}\n",
                    sol.loss(),
                    sol.iterations,
                    sol.bins,
                    sol.converged,
                    ms
                ));
            }
        }
    }
    print!("{csv}");
    match output::write_results_file("runtime_report.csv", &csv) {
        Ok(p) => eprintln!("wrote {}", p.display()),
        Err(e) => eprintln!("could not write results file: {e}"),
    }
    eprintln!(
        "The easy corners solve in milliseconds; the hard corner \
         (high load, large buffer, long correlation) is where the \
         paper's footnote 1 warns the runtime grows."
    );
}
