//! Extension: Eq. 26 correlation-horizon validation via the solver.

use lrd_experiments::figures::{ch_validation, Profile};
use lrd_experiments::{output, Corpus};

fn main() {
    let config = lrd_experiments::cli::run_config();
    let _telemetry = config.install_telemetry();
    let quick = config.quick;
    let profile = if quick { Profile::Quick } else { Profile::Full };
    let corpus = if quick { Corpus::quick() } else { Corpus::full() };
    let v = ch_validation::run(&corpus, profile);
    let mut csv = String::from("buffer_s,empirical_ch_s,eq26_tch_s\n");
    for (e, p) in v.empirical.iter().zip(&v.predicted) {
        csv.push_str(&format!("{},{},{}\n", e.0, e.1, p.1));
    }
    print!("{csv}");
    match output::write_results_file("ch_validation.csv", &csv) {
        Ok(p) => eprintln!("wrote {}", p.display()),
        Err(e) => eprintln!("could not write results file: {e}"),
    }
    eprintln!(
        "empirical CH vs buffer: log-log slope {:.2} (r² {:.2}); Eq. 26 is exactly linear.",
        v.fit.slope, v.fit.r_squared
    );
}
