//! Extension: Eq. 26 correlation-horizon validation via the solver.

fn main() -> std::process::ExitCode {
    lrd_experiments::figure_main("ch_validation")
}
