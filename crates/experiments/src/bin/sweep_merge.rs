//! Assembles a figure from a complete set of shard checkpoints.
//!
//! ```text
//! sweep_merge shard0.jsonl shard1.jsonl ... shardN.jsonl
//! ```
//!
//! The manifests are cross-validated (same figure, profile, plan hash
//! and shard count; every shard present exactly once; every lattice
//! point present exactly once), the plan is rebuilt from the registry
//! and its hash checked against the manifests, and the figure is then
//! emitted exactly as an unsharded run would have emitted it: same
//! stdout CSV bytes, same files under `results/`.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut paths = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--help" | "-h" => {
                println!(
                    "usage: sweep_merge <shard.jsonl>...\n\
                     \n\
                     Merges the checkpoint files of a complete shard set\n\
                     (produced by a figure binary run with --shard i/n\n\
                     --checkpoint <path>) and emits the figure exactly as\n\
                     an unsharded run would: CSV on stdout, table/notes on\n\
                     stderr, results files under results/."
                );
                return ExitCode::SUCCESS;
            }
            other if other.starts_with("--") => {
                eprintln!("error: unknown argument `{other}` (expected checkpoint paths)");
                return ExitCode::FAILURE;
            }
            other => paths.push(PathBuf::from(other)),
        }
    }
    match lrd_experiments::run_merge(&paths) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
