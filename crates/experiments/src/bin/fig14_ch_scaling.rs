//! Regenerates Fig. 14: the correlation horizon scales linearly with the buffer size.

fn main() -> std::process::ExitCode {
    lrd_experiments::figure_main("fig14_ch_scaling")
}
