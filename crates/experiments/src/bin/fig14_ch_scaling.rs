//! Regenerates Fig. 14: the correlation horizon scales linearly with
//! the buffer size.

use lrd_experiments::figures::{fig14, Profile};
use lrd_experiments::{output, Corpus};

fn main() {
    let config = lrd_experiments::cli::run_config();
    let _telemetry = config.install_telemetry();
    let quick = config.quick;
    let profile = if quick { Profile::Quick } else { Profile::Full };
    let corpus = if quick { Corpus::quick() } else { Corpus::full() };
    let fig = fig14::run(&corpus, profile);
    eprintln!("{}", fig.grid.to_table());
    let mut csv = fig.grid.to_csv();
    csv.push_str("\nbuffer_s,empirical_ch_s\n");
    for &(b, h) in &fig.horizons {
        csv.push_str(&format!("{b},{h}\n"));
    }
    csv.push_str("\nbuffer_s,eq26_tch_s\n");
    for &(b, t) in &fig.predicted {
        csv.push_str(&format!("{b},{t}\n"));
    }
    print!("{csv}");
    match output::write_results_file("fig14_ch_scaling.csv", &csv) {
        Ok(p) => eprintln!("wrote {}", p.display()),
        Err(e) => eprintln!("could not write results file: {e}"),
    }
    let gp = lrd_experiments::gnuplot::grid_to_gnuplot(&fig.grid, "fig14_ch_scaling", "fig14_ch_scaling");
    match output::write_results_file("fig14_ch_scaling.gp", &gp) {
        Ok(p) => eprintln!("wrote {} (render with gnuplot)", p.display()),
        Err(e) => eprintln!("could not write gnuplot script: {e}"),
    }
    eprintln!(
        "Fig. 14 reproduced: log-log fit of empirical CH vs buffer has slope {:.2} \
         (r² = {:.2}); Eq. 26 predicts exactly linear scaling.",
        fig.fit.slope, fig.fit.r_squared
    );
}
