//! Regenerates Fig. 12: loss vs (buffer, marginal scaling), MTV, T_c = infinity.

fn main() -> std::process::ExitCode {
    lrd_experiments::figure_main("fig12_mtv_buffer_scaling")
}
