//! Extension: truncated-Pareto vs mean-matched exponential interval models across buffer sizes.

fn main() -> std::process::ExitCode {
    lrd_experiments::figure_main("markov_baseline")
}
