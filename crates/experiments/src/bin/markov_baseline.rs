//! Extension experiment: truncated-Pareto (LRD) vs mean-matched
//! exponential (Markovian) interval model across buffer sizes.

use lrd_experiments::figures::{markov_baseline, Profile};
use lrd_experiments::{output, Corpus};

fn main() {
    let config = lrd_experiments::cli::run_config();
    let _telemetry = config.install_telemetry();
    let quick = config.quick;
    let profile = if quick { Profile::Quick } else { Profile::Full };
    let corpus = if quick { Corpus::quick() } else { Corpus::full() };
    let series = markov_baseline::run(&corpus, profile);
    let csv = output::series_to_csv("buffer_s", &series);
    print!("{csv}");
    match output::write_results_file("markov_baseline.csv", &csv) {
        Ok(p) => eprintln!("wrote {}", p.display()),
        Err(e) => eprintln!("could not write results file: {e}"),
    }
    eprintln!(
        "Extension: Markovian and LRD interval models agree for small buffers \
         (below the correlation horizon) and diverge as the buffer grows."
    );
}
