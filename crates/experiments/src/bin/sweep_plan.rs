//! Plans a cost-weighted shard re-split from prior checkpoint files.
//!
//! ```text
//! sweep_plan --shards N [--output assignment.json] <checkpoint.jsonl>...
//! ```
//!
//! The checkpoints — a complete sharded run, a single shard, or a
//! profiling pass that was killed early — supply measured per-point
//! `solve_us` durations. The plan is rebuilt from the figure registry
//! and checked against the manifests' plan hash, unmeasured lattice
//! points are costed by neighbour interpolation, and the points are
//! LPT-bin-packed into `N` shards. The emitted assignment's predicted
//! makespan is never worse than the round-robin split's on the same
//! costs; both are printed so the expected speed-up is visible before
//! any host commits to the re-split.
//!
//! Workers consume the file with
//! `<figure> --shard i/N --assignment assignment.json --checkpoint …`,
//! and `sweep_merge` assembles their checkpoints exactly as for a
//! round-robin run.

use std::path::PathBuf;
use std::process::ExitCode;

use lrd_experiments::figures::Profile;
use lrd_experiments::run::FigureKind;
use lrd_experiments::sweep::{plan_assignment, CostProfile};
use lrd_experiments::Corpus;

fn fmt_us(us: f64) -> String {
    if us >= 1e6 {
        format!("{:.2} s", us / 1e6)
    } else if us >= 1e3 {
        format!("{:.2} ms", us / 1e3)
    } else {
        format!("{us:.0} µs")
    }
}

fn run() -> Result<(), String> {
    let mut shards: Option<u32> = None;
    let mut output = PathBuf::from("assignment.json");
    let mut paths: Vec<PathBuf> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                println!(
                    "usage: sweep_plan --shards <n> [--output <path>] <checkpoint.jsonl>...\n\
                     \n\
                     Reads the solve_us durations recorded in prior checkpoint\n\
                     files (complete or partial), rebuilds the figure's sweep\n\
                     plan from the registry, and bin-packs the lattice into n\n\
                     shards balanced on measured cost. Writes the assignment\n\
                     file (default assignment.json) that the figure binaries\n\
                     accept via --assignment, and prints the predicted\n\
                     per-shard makespan next to the round-robin baseline."
                );
                std::process::exit(0);
            }
            "--shards" => {
                let v = args.next().ok_or("--shards requires a value")?;
                let n: u32 = v
                    .parse()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| format!("--shards requires a positive integer, got `{v}`"))?;
                shards = Some(n);
            }
            "--output" => {
                let v = args.next().ok_or("--output requires a value")?;
                output = PathBuf::from(v);
            }
            other if other.starts_with("--shards=") => {
                let v = &other["--shards=".len()..];
                let n: u32 = v
                    .parse()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| format!("--shards requires a positive integer, got `{v}`"))?;
                shards = Some(n);
            }
            other if other.starts_with("--output=") => {
                output = PathBuf::from(&other["--output=".len()..]);
            }
            other if other.starts_with("--") => {
                return Err(format!(
                    "unknown argument `{other}` (expected --shards <n>, --output <path> \
                     and checkpoint paths)"
                ));
            }
            other => paths.push(PathBuf::from(other)),
        }
    }
    let shards = shards.ok_or("--shards <n> is required")?;
    if paths.is_empty() {
        return Err("no checkpoint files given".to_string());
    }

    let profile = CostProfile::from_checkpoints(&paths).map_err(|e| e.to_string())?;
    let spec = lrd_experiments::find_figure(&profile.figure)
        .ok_or_else(|| format!("unknown figure `{}`", profile.figure))?;
    let prof = Profile::from_tag(&profile.profile)
        .ok_or_else(|| format!("unknown profile tag `{}`", profile.profile))?;
    let FigureKind::Sweep { build, .. } = &spec.kind else {
        return Err(format!("{} is not a sweep figure", spec.name));
    };
    let corpus = match prof {
        Profile::Quick => Corpus::quick(),
        Profile::Full => Corpus::full(),
    };
    let sweep = build(&corpus, prof);

    let assignment = plan_assignment(&sweep.plan, &profile, shards).map_err(|e| e.to_string())?;
    assignment.write(&output).map_err(|e| e.to_string())?;

    let costs = profile.costs(&sweep.plan).map_err(|e| e.to_string())?;
    let round_robin_makespan = (0..shards as usize)
        .map(|i| {
            (i..costs.len())
                .step_by(shards as usize)
                .map(|p| costs[p])
                .sum::<f64>()
        })
        .fold(0.0, f64::max);

    eprintln!(
        "{}: {} of {} lattice points measured across {} checkpoint file(s)",
        spec.name,
        profile.measured_points(),
        profile.total_points,
        paths.len()
    );
    eprintln!("shard  points  predicted");
    for (i, shard) in assignment.shards.iter().enumerate() {
        eprintln!(
            "{i:>5}  {:>6}  {:>9}",
            shard.points.len(),
            fmt_us(shard.predicted_us)
        );
    }
    eprintln!(
        "predicted makespan {} vs round-robin {} ({:.0}% of baseline)",
        fmt_us(assignment.makespan()),
        fmt_us(round_robin_makespan),
        if round_robin_makespan > 0.0 {
            100.0 * assignment.makespan() / round_robin_makespan
        } else {
            100.0
        }
    );
    eprintln!(
        "wrote {} — run each worker with --shard i/{} --assignment {} --checkpoint <path>",
        output.display(),
        shards,
        output.display()
    );
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
