//! Regenerates Fig. 5: model loss vs (buffer, cutoff), Bellcore at utilization 0.4.

use lrd_experiments::figures::{fig04_05, Profile};
use lrd_experiments::{output, Corpus};

fn main() {
    let config = lrd_experiments::cli::run_config();
    let _telemetry = config.install_telemetry();
    let quick = config.quick;
    let profile = if quick { Profile::Quick } else { Profile::Full };
    let corpus = if quick { Corpus::quick() } else { Corpus::full() };
    let grid = fig04_05::fig05(&corpus, profile);
    eprintln!("{}", grid.to_table());
    let csv = grid.to_csv();
    print!("{csv}");
    match output::write_results_file("fig05_bc_model.csv", &csv) {
        Ok(p) => eprintln!("wrote {}", p.display()),
        Err(e) => eprintln!("could not write results file: {e}"),
    }
    let gp = lrd_experiments::gnuplot::grid_to_gnuplot(&grid, "fig05_bc_model", "fig05_bc_model");
    match output::write_results_file("fig05_bc_model.gp", &gp) {
        Ok(p) => eprintln!("wrote {} (render with gnuplot)", p.display()),
        Err(e) => eprintln!("could not write gnuplot script: {e}"),
    }
}
