//! Regenerates Fig. 5: model loss vs (buffer, cutoff), Bellcore at utilization 0.4.

fn main() -> std::process::ExitCode {
    lrd_experiments::figure_main("fig05_bc_model")
}
