//! Regenerates Fig. 4: model loss vs (buffer, cutoff), MTV at utilization 0.8.

fn main() -> std::process::ExitCode {
    lrd_experiments::figure_main("fig04_mtv_model")
}
