//! Regenerates Fig. 8: shuffle-simulation loss vs (buffer, cutoff), Bellcore.

fn main() -> std::process::ExitCode {
    lrd_experiments::figure_main("fig08_bc_shuffle")
}
