//! Live fleet monitor for a work-stealing sweep.
//!
//! ```text
//! sweep_top --coord 127.0.0.1:7077 [--interval-ms 1000] [--once]
//!     [--json] [--straggler-k 4]
//! ```
//!
//! Polls the coordinator's read-only `status` query and renders a
//! refreshing per-worker table: points solved, throughput, last
//! contact, the outstanding lease and its predicted remaining cost
//! (from the live `solve_us` stream the workers report — no
//! `--cost-from` profile needed), plus a fleet ETA and a straggler
//! flag for any worker whose throughput falls below the fleet median
//! divided by `--straggler-k`.
//!
//! `--once` prints a single table and exits (CI smoke); `--json`
//! prints the raw status response line instead of the table, for
//! scripting. Status queries are invisible to drain bookkeeping: the
//! coordinator never waits for `sweep_top` before exiting, so the
//! monitor simply reports "coordinator gone" and exits 0 once the
//! sweep drains.

use std::process::ExitCode;
use std::time::Duration;

use lrd_cli::require_value;
use lrd_experiments::sweep::coord::proto::{connect, recv_line, send_line};
use lrd_experiments::sweep::coord::{Endpoint, Request, Response, StatusReport};

struct Args {
    coord: Endpoint,
    interval: Duration,
    once: bool,
    json: bool,
    straggler_k: f64,
}

fn parse_args() -> Result<Args, String> {
    let mut coord = None;
    let mut interval = Duration::from_millis(1000);
    let mut once = false;
    let mut json = false;
    let mut straggler_k = 4.0;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                println!(
                    "usage: sweep_top --coord <endpoint> [--interval-ms <n>] [--once]\n\
                     \u{20}        [--json] [--straggler-k <k>]\n\
                     \n\
                     Polls a sweep_coord status endpoint and renders a per-worker\n\
                     fleet table with throughput, lease predictions and an ETA.\n\
                     --once prints one table and exits; --json prints the raw\n\
                     status response instead."
                );
                std::process::exit(0);
            }
            "--coord" => {
                let v = require_value("--coord", &mut args).map_err(|e| e.to_string())?;
                let v = lrd_cli::parse_endpoint(&v).map_err(|e| e.to_string())?;
                coord = Some(Endpoint::parse(&v).expect("parse_endpoint validated the grammar"));
            }
            "--interval-ms" => {
                let v = require_value("--interval-ms", &mut args).map_err(|e| e.to_string())?;
                let ms = v
                    .parse::<u64>()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| format!("--interval-ms requires a positive integer, got `{v}`"))?;
                interval = Duration::from_millis(ms);
            }
            "--once" => once = true,
            "--json" => json = true,
            "--straggler-k" => {
                let v = require_value("--straggler-k", &mut args).map_err(|e| e.to_string())?;
                straggler_k = v
                    .parse::<f64>()
                    .ok()
                    .filter(|&k| k.is_finite() && k >= 1.0)
                    .ok_or_else(|| format!("--straggler-k requires a number >= 1, got `{v}`"))?;
            }
            other => return Err(format!("unknown argument `{other}` (see sweep_top --help)")),
        }
    }
    Ok(Args {
        coord: coord.ok_or("--coord <endpoint> is required")?,
        interval,
        once,
        json,
        straggler_k,
    })
}

/// One status round trip. `Ok(None)` means the coordinator is gone
/// (connection refused / reset) — normal once the sweep drains.
fn poll(endpoint: &Endpoint) -> Result<Option<StatusReport>, String> {
    let line = match connect(endpoint).and_then(|mut conn| {
        send_line(conn.as_mut(), &Request::Status.to_line())?;
        recv_line(conn.as_mut())
    }) {
        Ok(line) => line,
        Err(_) => return Ok(None),
    };
    match Response::parse(&line).map_err(|e| e.to_string())? {
        Response::Status(status) => Ok(Some(status)),
        other => Err(format!("unexpected status response {other:?}")),
    }
}

/// The fleet median of the positive per-worker throughputs.
fn median_throughput(status: &StatusReport) -> f64 {
    let mut rates: Vec<f64> = status
        .workers
        .iter()
        .map(|w| w.points_per_sec)
        .filter(|r| *r > 0.0)
        .collect();
    if rates.is_empty() {
        return 0.0;
    }
    rates.sort_by(|a, b| a.partial_cmp(b).expect("finite throughputs"));
    rates[rates.len() / 2]
}

fn render(status: &StatusReport, straggler_k: f64) -> String {
    let mut out = String::new();
    let total = status.total_points.max(1);
    let remaining = status.total_points.saturating_sub(status.done_points);
    // Fleet ETA from observed throughput; fall back to the fleet mean
    // solve duration when no worker has reported a rate yet.
    let fleet_rate: f64 = status.workers.iter().map(|w| w.points_per_sec).sum();
    let eta = if remaining == 0 {
        Some(0.0)
    } else if fleet_rate > 0.0 {
        Some(remaining as f64 / fleet_rate * 1e6)
    } else {
        status
            .fleet
            .histogram("sweep.solve_us")
            .map(|h| h.mean())
            .filter(|m| m.is_finite())
            .map(|mean_us| remaining as f64 * mean_us)
    };
    out.push_str(&format!(
        "points {}/{} ({:.1}%)   batches {}/{} done, {} leased   reclaims {}   ETA {}\n",
        status.done_points,
        status.total_points,
        status.done_points as f64 / total as f64 * 100.0,
        status.done,
        status.batches,
        status.leased,
        status.reclaims,
        eta.map_or_else(|| "?".to_string(), lrd_obs::fmt_us),
    ));
    if status.workers.is_empty() {
        out.push_str("(no workers have contacted the coordinator yet)\n");
        return out;
    }
    let median = median_throughput(status);
    let floor = median / straggler_k;
    out.push_str(&format!(
        "{:<22} {:>8} {:>9} {:>11} {:>7} {:>11} {:>8}\n",
        "worker", "points", "pts/s", "last seen", "lease", "remaining", "reports"
    ));
    for w in &status.workers {
        let straggler = median > 0.0 && w.points_per_sec < floor;
        out.push_str(&format!(
            "{:<22} {:>8} {:>9.2} {:>11} {:>7} {:>11} {:>8}{}\n",
            w.worker,
            w.points,
            w.points_per_sec,
            lrd_obs::fmt_us(w.last_seen_us as f64),
            w.lease.map_or_else(|| "-".to_string(), |b| format!("#{b}")),
            if w.lease.is_some() {
                lrd_obs::fmt_us(w.lease_remaining_us)
            } else {
                "-".to_string()
            },
            w.reports,
            if straggler { "   !! straggler" } else { "" },
        ));
    }
    out
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let mut ever_connected = false;
    loop {
        match poll(&args.coord)? {
            Some(status) => {
                ever_connected = true;
                if args.json {
                    // The raw protocol line, for scripting.
                    println!("{}", Response::Status(status).to_line());
                } else {
                    if !args.once {
                        // Home the cursor and clear: a refreshing view.
                        print!("\x1b[2J\x1b[H");
                    }
                    println!("sweep_top — {}", args.coord);
                    print!("{}", render(&status, args.straggler_k));
                }
                if args.once {
                    return Ok(());
                }
            }
            None if args.once => {
                return Err(format!("coordinator at {} is not answering", args.coord));
            }
            None => {
                if ever_connected {
                    // The sweep drained (or the coordinator was killed)
                    // — either way there is nothing left to watch.
                    println!("sweep_top: coordinator at {} gone; exiting", args.coord);
                    return Ok(());
                }
                // Not up yet: keep probing quietly.
            }
        }
        std::thread::sleep(args.interval);
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
