//! Process-level fault injector for the work-stealing sweep stack.
//!
//! ```text
//! sweep_chaos --figure fig04_mtv_model [--quick] [--workers <n>] \
//!     [--kill none|worker:<i>|coordinator|both] [--seed <n>] \
//!     [--dir <path>] [--tear-tail] [--hb-drop <p>] \
//!     [--heartbeat-ms <n>] [--lease-ttl-ms <n>] [--batch-points <n>] \
//!     [--coord-telemetry <path>]
//! ```
//!
//! Spawns a real `sweep_coord` process plus `--workers` real figure
//! processes in `--steal` mode, then — at a seed-randomized instant —
//! SIGKILLs the chosen victim(s), optionally tears the tail off the
//! killed worker's checkpoint, and respawns them. When every process
//! has exited it merges the worker checkpoints in-process and prints
//! the figure CSV to stdout, so a byte-diff against an undisturbed run
//! proves the crash changed nothing.
//!
//! The chaos property deliberately tolerates fast sweeps: if a victim
//! already exited when the kill fires, the kill is a logged no-op and
//! the merge check still applies.

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, ExitCode, Stdio};
use std::time::{Duration, Instant};

use lrd_rng::rngs::SmallRng;
use lrd_rng::{Rng, SeedableRng};

/// Which process(es) the harness SIGKILLs mid-sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum KillMode {
    /// Run undisturbed (baseline for the byte-diff).
    None,
    /// Kill worker `i`, tear its checkpoint tail if asked, respawn it.
    Worker(usize),
    /// Kill the coordinator, respawn it on the same endpoint with the
    /// same lease log.
    Coordinator,
    /// Kill worker 0 *and* the coordinator.
    Both,
}

struct Args {
    figure: String,
    quick: bool,
    workers: usize,
    kill: KillMode,
    seed: u64,
    dir: PathBuf,
    tear_tail: bool,
    hb_drop: f64,
    heartbeat_ms: u64,
    lease_ttl_ms: u64,
    batch_points: Option<u64>,
    coord_telemetry: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut figure = None;
    let mut quick = false;
    let mut workers = 2usize;
    let mut kill = KillMode::None;
    let mut seed = 1u64;
    let mut dir = None;
    let mut tear_tail = false;
    let mut hb_drop = 0.0f64;
    let mut heartbeat_ms = 50u64;
    let mut lease_ttl_ms = 250u64;
    let mut batch_points = None;
    let mut coord_telemetry = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &'static str| -> Result<String, String> {
            args.next().ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--help" | "-h" => {
                println!(
                    "usage: sweep_chaos --figure <name> [--quick] [--workers <n>]\n\
                     \u{20}        [--kill none|worker:<i>|coordinator|both] [--seed <n>]\n\
                     \u{20}        [--dir <path>] [--tear-tail] [--hb-drop <p>]\n\
                     \u{20}        [--heartbeat-ms <n>] [--lease-ttl-ms <n>]\n\
                     \u{20}        [--batch-points <n>] [--coord-telemetry <path>]\n\
                     \n\
                     Runs a coordinator plus N steal workers as real processes,\n\
                     SIGKILLs the chosen victim(s) at a random instant, respawns\n\
                     them, then merges the worker checkpoints and prints the\n\
                     figure CSV to stdout for byte-diffing against a clean run."
                );
                std::process::exit(0);
            }
            "--figure" => figure = Some(value("--figure")?),
            "--quick" => quick = true,
            "--workers" => {
                let v = value("--workers")?;
                workers = v
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| format!("--workers requires a positive integer, got `{v}`"))?;
            }
            "--kill" => {
                let v = value("--kill")?;
                kill = match v.as_str() {
                    "none" => KillMode::None,
                    "coordinator" => KillMode::Coordinator,
                    "both" => KillMode::Both,
                    other => match other.strip_prefix("worker:").and_then(|i| i.parse().ok()) {
                        Some(i) => KillMode::Worker(i),
                        None => {
                            return Err(format!(
                                "--kill requires none|worker:<i>|coordinator|both, got `{v}`"
                            ))
                        }
                    },
                };
            }
            "--seed" => {
                let v = value("--seed")?;
                seed = v
                    .parse()
                    .map_err(|_| format!("--seed requires an integer, got `{v}`"))?;
            }
            "--dir" => dir = Some(PathBuf::from(value("--dir")?)),
            "--tear-tail" => tear_tail = true,
            "--hb-drop" => {
                let v = value("--hb-drop")?;
                hb_drop = v
                    .parse::<f64>()
                    .ok()
                    .filter(|p| (0.0..=1.0).contains(p))
                    .ok_or_else(|| format!("--hb-drop requires a probability in [0,1], got `{v}`"))?;
            }
            "--heartbeat-ms" => {
                let v = value("--heartbeat-ms")?;
                heartbeat_ms = v
                    .parse::<u64>()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| format!("--heartbeat-ms requires a positive integer, got `{v}`"))?;
            }
            "--lease-ttl-ms" => {
                let v = value("--lease-ttl-ms")?;
                lease_ttl_ms = v
                    .parse::<u64>()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| format!("--lease-ttl-ms requires a positive integer, got `{v}`"))?;
            }
            "--batch-points" => {
                let v = value("--batch-points")?;
                batch_points = Some(
                    v.parse::<u64>()
                        .ok()
                        .filter(|&n| n > 0)
                        .ok_or_else(|| {
                            format!("--batch-points requires a positive integer, got `{v}`")
                        })?,
                );
            }
            "--coord-telemetry" => coord_telemetry = Some(PathBuf::from(value("--coord-telemetry")?)),
            other => return Err(format!("unknown argument `{other}` (see sweep_chaos --help)")),
        }
    }
    let workers_count = workers;
    if let KillMode::Worker(i) = kill {
        if i >= workers_count {
            return Err(format!(
                "--kill worker:{i} is out of range for --workers {workers_count}"
            ));
        }
    }
    Ok(Args {
        figure: figure.ok_or("--figure <name> is required")?,
        quick,
        workers,
        kill,
        seed,
        dir: dir.unwrap_or_else(|| {
            std::env::temp_dir().join(format!("lrd-chaos-{}", std::process::id()))
        }),
        tear_tail,
        hb_drop,
        heartbeat_ms,
        lease_ttl_ms,
        batch_points,
        coord_telemetry,
    })
}

/// The directory holding our sibling binaries (`sweep_coord` and the
/// figure executables land next to `sweep_chaos` in cargo's target
/// dir).
fn bin_dir() -> Result<PathBuf, String> {
    let exe = std::env::current_exe().map_err(|e| format!("locating current executable: {e}"))?;
    exe.parent()
        .map(Path::to_path_buf)
        .ok_or_else(|| "current executable has no parent directory".to_string())
}

fn spawn_coord(bins: &Path, args: &Args, listen: &str, capture_stdout: bool) -> Result<Child, String> {
    let mut cmd = Command::new(bins.join("sweep_coord"));
    cmd.arg("--figure")
        .arg(&args.figure)
        .arg("--listen")
        .arg(listen)
        .arg("--lease-log")
        .arg(args.dir.join("coord-lease.jsonl"))
        .arg("--heartbeat-ms")
        .arg(args.heartbeat_ms.to_string())
        .arg("--lease-ttl-ms")
        .arg(args.lease_ttl_ms.to_string());
    if args.quick {
        cmd.arg("--quick");
    }
    if let Some(n) = args.batch_points {
        cmd.arg("--batch-points").arg(n.to_string());
    }
    if let Some(path) = &args.coord_telemetry {
        cmd.arg("--telemetry").arg(path);
    }
    cmd.stdout(if capture_stdout { Stdio::piped() } else { Stdio::null() });
    cmd.spawn()
        .map_err(|e| format!("spawning sweep_coord: {e}"))
}

/// Reads the coordinator's `listening <endpoint>` line from its piped
/// stdout.
fn read_endpoint(coord: &mut Child) -> Result<String, String> {
    let stdout = coord
        .stdout
        .take()
        .ok_or_else(|| "coordinator stdout was not piped".to_string())?;
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .map_err(|e| format!("reading coordinator endpoint: {e}"))?;
    line.trim()
        .strip_prefix("listening ")
        .map(str::to_string)
        .ok_or_else(|| format!("expected `listening <endpoint>` from sweep_coord, got `{line}`"))
}

fn worker_checkpoint(dir: &Path, index: usize) -> PathBuf {
    dir.join(format!("worker{index}.jsonl"))
}

fn spawn_worker(bins: &Path, args: &Args, endpoint: &str, index: usize) -> Result<Child, String> {
    let mut cmd = Command::new(bins.join(&args.figure));
    if args.quick {
        cmd.arg("--quick");
    }
    cmd.arg("--steal")
        .arg(endpoint)
        .arg("--checkpoint")
        .arg(worker_checkpoint(&args.dir, index))
        .env("LRD_CHAOS_SEED", (args.seed + 1 + index as u64).to_string())
        .stdout(Stdio::null());
    if args.hb_drop > 0.0 {
        cmd.env("LRD_CHAOS_HB_DROP", args.hb_drop.to_string());
    }
    cmd.spawn()
        .map_err(|e| format!("spawning worker {index} ({}): {e}", args.figure))
}

/// SIGKILLs `child` if it is still running; returns true if the kill
/// actually landed (false = the victim beat us to the exit, which the
/// chaos contract treats as a logged no-op).
fn kill_if_running(child: &mut Child, name: &str) -> Result<bool, String> {
    match child.try_wait().map_err(|e| format!("polling {name}: {e}"))? {
        Some(status) => {
            eprintln!("chaos: {name} exited ({status}) before the kill fired; no-op");
            Ok(false)
        }
        None => {
            child.kill().map_err(|e| format!("killing {name}: {e}"))?;
            child.wait().map_err(|e| format!("reaping {name}: {e}"))?;
            eprintln!("chaos: SIGKILLed {name}");
            Ok(true)
        }
    }
}

/// Whether the last complete point line of `checkpoint` belongs to a
/// batch the coordinator durably marked done. Tearing such a line
/// would violate the crash model: a worker only reports completion
/// after the append returned, and SIGKILL cannot un-write flushed
/// data — torn tails only ever happen to in-flight batches.
fn last_point_is_completed(checkpoint: &Path, lease_log: &Path) -> bool {
    let Ok(log) = std::fs::read_to_string(lease_log) else {
        return false;
    };
    let mut batches: Vec<Vec<u64>> = Vec::new();
    let mut done = Vec::new();
    for line in log.lines() {
        let Ok(j) = lrd_obs::parse_json(line) else {
            continue;
        };
        match j.get("kind").and_then(|k| k.as_str()) {
            Some("coord_manifest") => {
                if let Some(arr) = j.get("batches").and_then(|b| b.as_array()) {
                    batches = arr
                        .iter()
                        .map(|b| {
                            b.as_array()
                                .map(|pts| pts.iter().filter_map(|p| p.as_u64()).collect())
                                .unwrap_or_default()
                        })
                        .collect();
                }
            }
            Some("done") => {
                if let Some(b) = j.get("batch").and_then(|b| b.as_u64()) {
                    done.push(b as usize);
                }
            }
            _ => {}
        }
    }
    let Ok(text) = std::fs::read_to_string(checkpoint) else {
        return false;
    };
    let last_index = text.lines().rev().find_map(|line| {
        lrd_obs::parse_json(line)
            .ok()
            .and_then(|j| j.get("index").and_then(|i| i.as_u64()))
    });
    match last_index {
        Some(index) => done
            .iter()
            .any(|&b| batches.get(b).is_some_and(|pts| pts.contains(&index))),
        None => false,
    }
}

/// Truncates the checkpoint mid-line (torn final record), preserving
/// the manifest: only applied when at least one complete point line
/// follows the manifest and the line is not part of an already-
/// completed batch (see [`last_point_is_completed`]).
fn tear_checkpoint_tail(path: &Path, lease_log: &Path) -> Result<(), String> {
    let data = match std::fs::read(path) {
        Ok(data) => data,
        Err(_) => return Ok(()), // worker died before creating it
    };
    let lines = data.iter().filter(|&&b| b == b'\n').count();
    if lines < 2 {
        eprintln!(
            "chaos: {} holds no complete point line yet; leaving it intact",
            path.display()
        );
        return Ok(());
    }
    if last_point_is_completed(path, lease_log) {
        eprintln!(
            "chaos: the tail of {} was already reported complete; a real crash \
             cannot tear it, leaving it intact",
            path.display()
        );
        return Ok(());
    }
    let file = std::fs::OpenOptions::new()
        .write(true)
        .open(path)
        .map_err(|e| format!("opening {} to tear: {e}", path.display()))?;
    file.set_len(data.len() as u64 - 2)
        .map_err(|e| format!("tearing {}: {e}", path.display()))?;
    eprintln!("chaos: tore the tail off {}", path.display());
    Ok(())
}

/// Waits for `child` with a hard deadline; a hung process is killed
/// and reported rather than hanging the harness.
fn wait_success(child: &mut Child, name: &str, deadline: Instant) -> Result<(), String> {
    loop {
        match child.try_wait().map_err(|e| format!("polling {name}: {e}"))? {
            Some(status) if status.success() => return Ok(()),
            Some(status) => return Err(format!("{name} failed: {status}")),
            None if Instant::now() > deadline => {
                let _ = child.kill();
                let _ = child.wait();
                return Err(format!("{name} hung past the deadline; killed"));
            }
            None => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let bins = bin_dir()?;
    std::fs::create_dir_all(&args.dir)
        .map_err(|e| format!("creating {}: {e}", args.dir.display()))?;

    let mut coord = spawn_coord(&bins, &args, "127.0.0.1:0", true)?;
    let endpoint = match read_endpoint(&mut coord) {
        Ok(endpoint) => endpoint,
        Err(e) => {
            let _ = coord.kill();
            let _ = coord.wait();
            return Err(e);
        }
    };
    eprintln!(
        "chaos: coordinator on {endpoint}, {} worker(s), kill mode {:?}, seed {}",
        args.workers, args.kill, args.seed
    );

    let mut workers = Vec::with_capacity(args.workers);
    for i in 0..args.workers {
        workers.push(spawn_worker(&bins, &args, &endpoint, i)?);
    }

    let mut rng = SmallRng::seed_from_u64(args.seed);
    if args.kill != KillMode::None {
        let delay = rng.gen_range(100u64..500);
        std::thread::sleep(Duration::from_millis(delay));
        eprintln!("chaos: striking after {delay} ms");
        let victim_worker = match args.kill {
            KillMode::Worker(i) => Some(i),
            KillMode::Both => Some(0),
            _ => None,
        };
        if let Some(i) = victim_worker {
            if kill_if_running(&mut workers[i], &format!("worker {i}"))? {
                if args.tear_tail {
                    tear_checkpoint_tail(
                        &worker_checkpoint(&args.dir, i),
                        &args.dir.join("coord-lease.jsonl"),
                    )?;
                }
                workers[i] = spawn_worker(&bins, &args, &endpoint, i)?;
                eprintln!("chaos: respawned worker {i}");
            }
        }
        if matches!(args.kill, KillMode::Coordinator | KillMode::Both)
            && kill_if_running(&mut coord, "coordinator")?
        {
            // Same resolved endpoint (SO_REUSEADDR permits the rebind)
            // and same lease log: the restart must resume, not restart,
            // the sweep.
            coord = spawn_coord(&bins, &args, &endpoint, false)?;
            eprintln!("chaos: respawned coordinator on {endpoint}");
        }
    }

    let deadline = Instant::now() + Duration::from_secs(600);
    for (i, worker) in workers.iter_mut().enumerate() {
        wait_success(worker, &format!("worker {i}"), deadline)?;
    }
    wait_success(&mut coord, "coordinator", deadline)?;
    eprintln!("chaos: all processes exited cleanly; merging");

    // Keep the merge's results files out of the repo tree unless the
    // caller already redirected them.
    if std::env::var_os("LRD_RESULTS_DIR").is_none() {
        std::env::set_var("LRD_RESULTS_DIR", &args.dir);
    }
    let checkpoints: Vec<PathBuf> = (0..args.workers)
        .map(|i| worker_checkpoint(&args.dir, i))
        .filter(|p| p.exists())
        .collect();
    lrd_experiments::run_merge(&checkpoints).map_err(|e| format!("merging checkpoints: {e}"))
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
