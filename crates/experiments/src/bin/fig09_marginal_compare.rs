//! Regenerates Fig. 9: loss vs cutoff lag for the MTV and Bellcore marginals with identical queue and interval parameters.

fn main() -> std::process::ExitCode {
    lrd_experiments::figure_main("fig09_marginal_compare")
}
