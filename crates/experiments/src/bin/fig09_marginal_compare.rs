//! Regenerates Fig. 9: loss vs cutoff lag for the MTV and Bellcore
//! marginals with identical queue and interval parameters.

use lrd_experiments::figures::{fig09, Profile};
use lrd_experiments::{output, Corpus};

fn main() {
    let config = lrd_experiments::cli::run_config();
    let _telemetry = config.install_telemetry();
    let quick = config.quick;
    let profile = if quick { Profile::Quick } else { Profile::Full };
    let corpus = if quick { Corpus::quick() } else { Corpus::full() };
    let series = fig09::run(&corpus, profile);
    let csv = output::series_to_csv("cutoff_s", &series);
    print!("{csv}");
    match output::write_results_file("fig09_marginal_compare.csv", &csv) {
        Ok(p) => eprintln!("wrote {}", p.display()),
        Err(e) => eprintln!("could not write results file: {e}"),
    }
    let last = |s: &lrd_experiments::Series| s.points.last().unwrap().1;
    eprintln!(
        "Fig. 9 reproduced: at the largest cutoff, loss(MTV) = {:.3e}, loss(BC) = {:.3e} \
         — the marginal alone changes loss by orders of magnitude.",
        last(&series[0]),
        last(&series[1])
    );
}
