//! Demonstrates Fig. 6: external block shuffling kills long-lag correlation.

fn main() -> std::process::ExitCode {
    lrd_experiments::figure_main("fig06_shuffle_demo")
}
