//! Fig. 6 is the paper's illustration of the external-shuffling
//! procedure. This binary demonstrates it on data: the autocorrelation
//! of the MTV-like trace before and after block shuffling, showing
//! correlation surviving below the block length and vanishing above.

use lrd_experiments::{output, Corpus};
use lrd_traffic::shuffle::external_shuffle;
use lrd_rng::rngs::SmallRng;
use lrd_rng::SeedableRng;

fn main() {
    let config = lrd_experiments::cli::run_config();
    let _telemetry = config.install_telemetry();
    let quick = config.quick;
    let corpus = if quick { Corpus::quick() } else { Corpus::full() };
    let trace = &corpus.mtv.trace;
    let block = 64usize; // samples per shuffle block
    let mut rng = SmallRng::seed_from_u64(6);
    let shuffled = external_shuffle(trace, block, &mut rng);

    let max_lag = 4 * block;
    let before = lrd_stats::autocorrelation(trace.rates(), max_lag);
    let after = lrd_stats::autocorrelation(shuffled.rates(), max_lag);

    let mut csv = String::from("lag_samples,acf_original,acf_shuffled\n");
    for k in 0..=max_lag {
        csv.push_str(&format!("{k},{:.6},{:.6}\n", before[k], after[k]));
    }
    print!("{csv}");
    match output::write_results_file("fig06_shuffle_demo.csv", &csv) {
        Ok(p) => eprintln!("wrote {}", p.display()),
        Err(e) => eprintln!("could not write results file: {e}"),
    }
    eprintln!(
        "Fig. 6 demonstrated: at lag {} (¼ block) the shuffled ACF retains {:.0}% \
         of the original; at lag {} (2 blocks) it retains {:.0}%.",
        block / 4,
        100.0 * after[block / 4] / before[block / 4].max(1e-12),
        2 * block,
        100.0 * after[2 * block] / before[2 * block].max(1e-12),
    );
}
