//! Regenerates Fig. 13: loss vs (buffer, marginal scaling), Bellcore, T_c = infinity.

fn main() -> std::process::ExitCode {
    lrd_experiments::figure_main("fig13_bc_buffer_scaling")
}
