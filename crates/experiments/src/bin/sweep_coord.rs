//! The work-stealing sweep coordinator.
//!
//! ```text
//! sweep_coord --figure fig04_mtv_model [--quick] \
//!     [--listen 127.0.0.1:7077 | --listen unix:/tmp/coord.sock] \
//!     [--lease-log coord.jsonl] [--batch-points <n>] \
//!     [--cost-from <checkpoint.jsonl>]... \
//!     [--heartbeat-ms <n>] [--lease-ttl-ms <n>] \
//!     [--telemetry <path>] [--telemetry-summary[=<path>]]
//! ```
//!
//! Rebuilds the named figure's sweep plan from the registry, slices it
//! into point batches (cost-weighted when `--cost-from` checkpoints
//! supply measured durations), and serves them to `--steal` workers
//! under the lease/heartbeat protocol (DESIGN.md §12). The resolved
//! endpoint is printed to stdout as `listening <endpoint>` so
//! orchestrators can pass `--listen 127.0.0.1:0` and read the port.
//!
//! With `--lease-log`, every grant/reclaim/completion is journaled:
//! kill this process at any instant and rerun the same command line —
//! it resumes the log, completed batches stay completed, and live
//! workers keep their leases across the restart.
//!
//! The shared flags (`--quick`, `--telemetry`,
//! `--telemetry-summary[=<path>]`) come from [`lrd_cli::CommonArgs`];
//! only the coordinator-specific flags are parsed here.

use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;

use lrd_cli::{require_value, CommonArgs};
use lrd_experiments::figures::Profile;
use lrd_experiments::run::FigureKind;
use lrd_experiments::sweep::coord::{CoordOptions, CoordServer, Endpoint, LeaseConfig};
use lrd_experiments::sweep::CostProfile;
use lrd_experiments::Corpus;

struct Args {
    figure: String,
    listen: Endpoint,
    lease_log: Option<PathBuf>,
    batch_points: Option<usize>,
    cost_from: Vec<PathBuf>,
    config: LeaseConfig,
    common: CommonArgs,
}

fn parse_args() -> Result<Args, String> {
    let mut figure = None;
    let mut listen = Endpoint::Tcp("127.0.0.1:0".to_string());
    let mut lease_log = None;
    let mut batch_points = None;
    let mut cost_from = Vec::new();
    let mut config = LeaseConfig::default();

    let positive = |flag: &str, v: &str| -> Result<u64, String> {
        v.parse::<u64>()
            .ok()
            .filter(|&n| n > 0)
            .ok_or_else(|| format!("{flag} requires a positive integer, got `{v}`"))
    };
    let common = CommonArgs::parse_with(std::env::args().skip(1), |arg, args| {
        match arg {
            "--help" | "-h" => {
                println!(
                    "usage: sweep_coord --figure <name> [--quick] [--listen <endpoint>]\n\
                     \u{20}        [--lease-log <path>] [--batch-points <n>]\n\
                     \u{20}        [--cost-from <checkpoint.jsonl>]... [--heartbeat-ms <n>]\n\
                     \u{20}        [--lease-ttl-ms <n>] [--telemetry <path>]\n\
                     \u{20}        [--telemetry-summary[=<path>]]\n\
                     \n\
                     Serves the figure's sweep lattice to --steal workers as leased\n\
                     point batches. Prints `listening <endpoint>` on stdout, then\n\
                     runs until the sweep drains. With --lease-log the lease table\n\
                     survives a kill: rerun the same command to resume."
                );
                std::process::exit(0);
            }
            "--figure" => figure = Some(require_value("--figure", args)?),
            "--listen" => {
                let v = require_value("--listen", args)?;
                listen = Endpoint::parse(&lrd_cli::parse_endpoint(&v)?)
                    .expect("parse_endpoint validated the grammar");
            }
            "--lease-log" => {
                lease_log = Some(PathBuf::from(require_value("--lease-log", args)?));
            }
            "--batch-points" => {
                let v = require_value("--batch-points", args)?;
                batch_points = Some(positive("--batch-points", &v).map_err(invalid)? as usize);
            }
            "--cost-from" => {
                cost_from.push(PathBuf::from(require_value("--cost-from", args)?));
            }
            "--heartbeat-ms" => {
                let v = require_value("--heartbeat-ms", args)?;
                config.heartbeat_ms = positive("--heartbeat-ms", &v).map_err(invalid)?;
            }
            "--lease-ttl-ms" => {
                let v = require_value("--lease-ttl-ms", args)?;
                config.lease_ttl_ms = positive("--lease-ttl-ms", &v).map_err(invalid)?;
            }
            _ => return Ok(false),
        }
        Ok(true)
    })
    .map_err(|e| e.to_string())?;

    // Worker-side flags are part of the shared surface but make no
    // sense on the coordinator: reject instead of silently ignoring.
    for (set, flag) in [
        (common.shard.is_some(), "--shard"),
        (common.checkpoint.is_some(), "--checkpoint"),
        (common.assignment.is_some(), "--assignment"),
        (common.steal.is_some(), "--steal"),
    ] {
        if set {
            return Err(format!("{flag} is a worker flag; sweep_coord does not accept it"));
        }
    }

    Ok(Args {
        figure: figure.ok_or("--figure <name> is required")?,
        listen,
        lease_log,
        batch_points,
        cost_from,
        config,
        common,
    })
}

/// Adapts a free-form validation message to the extension hook's
/// [`lrd_cli::CliError`] by reusing the unknown-argument shape (the
/// message already names the flag and value).
fn invalid(message: String) -> lrd_cli::CliError {
    lrd_cli::CliError::UnknownArgument(message)
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let _telemetry = args.common.install_telemetry().map_err(|e| e.to_string())?;

    let spec = lrd_experiments::find_figure(&args.figure)
        .ok_or_else(|| format!("unknown figure `{}`", args.figure))?;
    let FigureKind::Sweep { build, .. } = &spec.kind else {
        return Err(format!("{} is not a sweep figure", spec.name));
    };
    let quick = args.common.quick;
    let profile = if quick { Profile::Quick } else { Profile::Full };
    let corpus = if quick { Corpus::quick() } else { Corpus::full() };
    let plan = build(&corpus, profile).plan;

    let costs = if args.cost_from.is_empty() {
        None
    } else {
        let profile = CostProfile::from_checkpoints(&args.cost_from).map_err(|e| e.to_string())?;
        Some(profile.costs(&plan).map_err(|e| e.to_string())?)
    };

    let options = CoordOptions {
        endpoint: args.listen,
        lease_log: args.lease_log,
        config: args.config,
        batch_points: args
            .batch_points
            .unwrap_or(lrd_experiments::sweep::coord::DEFAULT_BATCH_POINTS),
        costs,
    };
    let server = CoordServer::start(&plan, options).map_err(|e| e.to_string())?;

    // The one stdout line: orchestrators read the resolved endpoint
    // (e.g. after --listen 127.0.0.1:0) to hand to workers.
    println!("listening {}", server.endpoint());
    std::io::stdout().flush().map_err(|e| e.to_string())?;
    eprintln!(
        "sweep_coord: serving {} ({}) — {} points, heartbeat {} ms, lease ttl {} ms",
        spec.name,
        profile.tag(),
        plan.len(),
        args.config.heartbeat_ms,
        args.config.lease_ttl_ms,
    );

    let summary = server.run().map_err(|e| e.to_string())?;
    eprintln!(
        "sweep_coord: {} — {} batch(es), {} point(s), {} grant(s), {} reclaim(s)",
        if summary.drained { "sweep drained" } else { "stopped early" },
        summary.batches,
        summary.points,
        summary.grants,
        summary.reclaims,
    );
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
