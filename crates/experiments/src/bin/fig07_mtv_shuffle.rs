//! Regenerates Fig. 7: shuffle-simulation loss vs (buffer, cutoff), MTV.

fn main() -> std::process::ExitCode {
    lrd_experiments::figure_main("fig07_mtv_shuffle")
}
