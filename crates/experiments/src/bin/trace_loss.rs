//! Extension: loss vs (buffer, cutoff) with every model input estimated
//! from an on-disk packet corpus by the out-of-core ingestion pipeline.

fn main() -> std::process::ExitCode {
    lrd_experiments::figure_main("trace_loss")
}
