//! Regenerates Fig. 3: the marginal rate distributions of both traces.

fn main() -> std::process::ExitCode {
    lrd_experiments::figure_main("fig03_marginals")
}
