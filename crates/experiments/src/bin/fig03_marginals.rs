//! Regenerates Fig. 3: the marginal rate distributions of both traces.

use lrd_experiments::figures::fig03;
use lrd_experiments::{output, Corpus};

fn main() {
    let config = lrd_experiments::cli::run_config();
    let _telemetry = config.install_telemetry();
    let quick = config.quick;
    let corpus = if quick { Corpus::quick() } else { Corpus::full() };
    let series = fig03::run(&corpus);
    let csv = fig03::to_csv(&series);
    print!("{csv}");
    match output::write_results_file("fig03_marginals.csv", &csv) {
        Ok(p) => eprintln!("wrote {}", p.display()),
        Err(e) => eprintln!("could not write results file: {e}"),
    }
    eprintln!(
        "Fig. 3 reproduced: MTV marginal is unimodal near its mean; \
         Bellcore marginal piles mass near idle with a heavy tail."
    );
}
