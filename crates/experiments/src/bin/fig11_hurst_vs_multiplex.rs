//! Regenerates Fig. 11: loss vs (Hurst, superposed streams), MTV.

fn main() -> std::process::ExitCode {
    lrd_experiments::figure_main("fig11_hurst_vs_multiplex")
}
