//! Regenerates Fig. 11: model loss vs (Hurst parameter, superposed streams), MTV at utilization 0.8.

use lrd_experiments::figures::{fig10_11, Profile};
use lrd_experiments::{output, Corpus};

fn main() {
    let config = lrd_experiments::cli::run_config();
    let _telemetry = config.install_telemetry();
    let quick = config.quick;
    let profile = if quick { Profile::Quick } else { Profile::Full };
    let corpus = if quick { Corpus::quick() } else { Corpus::full() };
    let grid = fig10_11::fig11(&corpus, profile);
    eprintln!("{}", grid.to_table());
    let csv = grid.to_csv();
    print!("{csv}");
    match output::write_results_file("fig11_hurst_vs_multiplex.csv", &csv) {
        Ok(p) => eprintln!("wrote {}", p.display()),
        Err(e) => eprintln!("could not write results file: {e}"),
    }
    let gp = lrd_experiments::gnuplot::grid_to_gnuplot(&grid, "fig11_hurst_vs_multiplex", "fig11_hurst_vs_multiplex");
    match output::write_results_file("fig11_hurst_vs_multiplex.gp", &gp) {
        Ok(p) => eprintln!("wrote {} (render with gnuplot)", p.display()),
        Err(e) => eprintln!("could not write gnuplot script: {e}"),
    }
}
