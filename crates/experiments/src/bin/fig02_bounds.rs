//! Regenerates Fig. 2: convergence of the discrete occupancy bounds.

fn main() -> std::process::ExitCode {
    lrd_experiments::figure_main("fig02_bounds")
}
