//! Regenerates Fig. 2: convergence of the discrete occupancy bounds.

use lrd_experiments::figures::{fig02, Profile};
use lrd_experiments::{output, Corpus};

fn main() {
    let config = lrd_experiments::cli::run_config();
    let _telemetry = config.install_telemetry();
    let quick = config.quick;
    let profile = if quick { Profile::Quick } else { Profile::Full };
    let corpus = if quick { Corpus::quick() } else { Corpus::full() };
    let fig = fig02::run(&corpus, profile);
    let csv = fig02::to_csv(&fig);
    print!("{csv}");
    match output::write_results_file("fig02_bounds.csv", &csv) {
        Ok(p) => eprintln!("wrote {}", p.display()),
        Err(e) => eprintln!("could not write results file: {e}"),
    }
    // Companion solve to stationarity: exercises the full convergence
    // protocol (gap narrowing, grid refinement, mass check), so a
    // `--telemetry` run of this binary records the solver end to end.
    let sol = fig02::stationary_bounds(&corpus);
    eprintln!(
        "stationary bounds: loss in [{:.3e}, {:.3e}] after {} iterations \
         ({} refinement{}, final M = {})",
        sol.lower,
        sol.upper,
        sol.iterations,
        sol.refinement_epochs.len(),
        if sol.refinement_epochs.len() == 1 { "" } else { "s" },
        sol.bins
    );
    eprintln!(
        "Fig. 2 reproduced: occupancy-bound CDFs at n = 5, 10, 30 (M = 100); \
         the lower/upper pairs squeeze toward the stationary law."
    );
}
