//! Regenerates Fig. 10: loss vs (Hurst, marginal scaling), MTV.

fn main() -> std::process::ExitCode {
    lrd_experiments::figure_main("fig10_hurst_vs_scaling")
}
