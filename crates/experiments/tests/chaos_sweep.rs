//! Process-level chaos: real coordinator and worker processes are
//! SIGKILLed mid-sweep (with checkpoint tails torn and heartbeats
//! dropped for good measure), and the merged figure must still be
//! byte-identical to an undisturbed single-process run.

use std::path::Path;
use std::process::Command;

/// Runs a command to completion, asserting success and returning its
/// stdout bytes; stderr is replayed on failure.
fn run_ok(cmd: &mut Command, what: &str) -> Vec<u8> {
    let out = cmd
        .output()
        .unwrap_or_else(|e| panic!("{what}: failed to spawn: {e}"));
    assert!(
        out.status.success(),
        "{what} failed ({}):\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    out.stdout
}

fn chaos(dir: &Path, scenario: &str, extra: &[&str]) -> Vec<u8> {
    let sdir = dir.join(scenario);
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_sweep_chaos"));
    cmd.arg("--figure")
        .arg("fig04_mtv_model")
        .arg("--quick")
        .arg("--workers")
        .arg("2")
        .arg("--heartbeat-ms")
        .arg("50")
        .arg("--lease-ttl-ms")
        .arg("250")
        .arg("--batch-points")
        .arg("3")
        .arg("--dir")
        .arg(&sdir)
        .args(extra)
        .env("LRD_RESULTS_DIR", &sdir);
    run_ok(&mut cmd, &format!("sweep_chaos ({scenario})"))
}

#[test]
fn chaos_matrix_always_completes_and_merges_byte_exact() {
    let dir = std::env::temp_dir().join("lrd-chaos-sweep-test");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    // The undisturbed single-process figure: the byte-exactness oracle.
    let reference = run_ok(
        Command::new(env!("CARGO_BIN_EXE_fig04_mtv_model"))
            .arg("--quick")
            .env("LRD_RESULTS_DIR", &dir),
        "fig04_mtv_model --quick (reference)",
    );
    assert!(!reference.is_empty(), "reference CSV must not be empty");

    for (scenario, extra) in [
        // A worker is SIGKILLed mid-lease and its checkpoint tail torn;
        // the respawned worker and the reclaim path pick up the pieces.
        (
            "worker-kill",
            &["--kill", "worker:0", "--tear-tail", "--seed", "7"][..],
        ),
        // Worker 0 *and* the coordinator die; the coordinator restart
        // resumes its lease log on the same endpoint.
        ("both-kill", &["--kill", "both", "--seed", "11"][..]),
        // No kills, but most heartbeats never arrive: leases expire,
        // batches are reclaimed and re-solved, duplicates resolved at
        // merge.
        ("hb-drop", &["--kill", "none", "--hb-drop", "0.7", "--seed", "13"][..]),
    ] {
        let csv = chaos(&dir, scenario, extra);
        assert_eq!(
            csv,
            reference,
            "{scenario}: merged CSV differs from the undisturbed run"
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}
