//! Fleet-status consistency under heartbeat chaos.
//!
//! Drives a real coordinator and two in-process `run_steal` workers
//! with aggressive heartbeat drop, polling the read-only `status`
//! query the whole time, and checks the observability contract:
//!
//! * the final status reconciles exactly — `done_points` equals the
//!   plan size, and every worker's folded `sweep.points` counter
//!   equals the point lines in its own checkpoint;
//! * the merged checkpoints reproduce the full lattice (telemetry is
//!   a view over the same run, never a second source of truth);
//! * snapshot redelivery is idempotent end-to-end: replaying the same
//!   `(incarnation, seq)` report over the wire changes nothing.
//!
//! A probe identity leases once and never acks the drain, which holds
//! the coordinator in its post-drain linger window — the final status
//! polls are deterministic, not a race against server exit.

use std::path::PathBuf;
use std::time::Duration;

use lrd_experiments::figures::Profile;
use lrd_experiments::sweep::coord::proto::{connect, recv_line, send_line};
use lrd_experiments::sweep::coord::{
    run_steal, worker_identity, ChaosConfig, CoordOptions, CoordServer, Endpoint, LeaseConfig,
    Request, Response, StatusReport, StealOptions, WorkerReport,
};
use lrd_experiments::sweep::{
    merge_checkpoints, Axis, FigureSweep, PointResult, PointSpec, SweepPlan,
};
use lrd_fluidq::SolverOptions;
use lrd_obs::MetricsSnapshot;

/// A synthetic sweep: deterministic values, a small per-point sleep so
/// the run is long enough to observe mid-flight.
fn plan() -> SweepPlan {
    SweepPlan::grid_plan(
        "fleet_status_demo",
        Profile::Quick,
        "loss_rate",
        Axis::new("b", vec![0.1, 0.5, 1.0, 2.0, 5.0, 10.0]),
        Axis::new("tc", vec![0.5, 1.0, 2.0, 5.0, 20.0, f64::INFINITY]),
        SolverOptions::sweep_profile(),
    )
}

fn sweep() -> FigureSweep<'static> {
    FigureSweep {
        plan: plan(),
        solve: Box::new(|spec: &PointSpec, _donor| {
            std::thread::sleep(Duration::from_millis(2));
            (
                PointResult {
                    index: spec.index,
                    value: (spec.coords[0] * 7.0 + spec.coords[1].min(1e6)) / 3.0,
                    iterations: 3 + spec.index as u64,
                    bins: 128,
                    converged: true,
                    solve_us: None,
                },
                None,
            )
        }),
    }
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lrd-fleet-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// One request/response round trip on a fresh connection.
fn roundtrip(endpoint: &Endpoint, request: &Request) -> Option<Response> {
    let mut conn = connect(endpoint).ok()?;
    send_line(conn.as_mut(), &request.to_line()).ok()?;
    let line = recv_line(conn.as_mut()).ok()?;
    Some(Response::parse(&line).expect("well-formed response"))
}

fn poll_status(endpoint: &Endpoint) -> Option<StatusReport> {
    match roundtrip(endpoint, &Request::Status)? {
        Response::Status(status) => Some(status),
        other => panic!("unexpected status response {other:?}"),
    }
}

/// Point lines in a worker checkpoint (total lines minus the manifest).
fn checkpoint_points(path: &PathBuf) -> usize {
    let text = std::fs::read_to_string(path).unwrap();
    text.lines().filter(|l| !l.trim().is_empty()).count() - 1
}

#[test]
fn final_status_reconciles_with_checkpoints_under_heartbeat_chaos() {
    let dir = tmpdir("chaos");
    let plan = plan();
    let total_points = plan.len();

    let server = CoordServer::start(
        &plan,
        CoordOptions {
            endpoint: Endpoint::Tcp("127.0.0.1:0".to_string()),
            lease_log: Some(dir.join("coord.leases")),
            config: LeaseConfig {
                heartbeat_ms: 25,
                lease_ttl_ms: 200,
            },
            batch_points: 3,
            costs: None,
        },
    )
    .unwrap();
    let endpoint = server.endpoint();
    let server = std::thread::spawn(move || server.run().unwrap());

    // Register a probe identity that never acks the drain: the
    // coordinator lingers after the queue empties, so the final
    // status polls below cannot race its exit. The probe never
    // heartbeats, so any batch it is granted is reclaimed and
    // re-issued to a real worker — more chaos, no lost work.
    let probe_lease = Request::Lease {
        figure: plan.figure.clone(),
        plan_hash: plan.hash_hex(),
        profile: plan.profile.tag().to_string(),
        worker: "w-probe".to_string(),
        report: None,
    };
    assert!(
        roundtrip(&endpoint, &probe_lease).is_some(),
        "probe lease must reach the coordinator"
    );

    let checkpoints: Vec<PathBuf> = (0..2).map(|i| dir.join(format!("worker-{i}.jsonl"))).collect();
    let workers: Vec<_> = checkpoints
        .iter()
        .cloned()
        .enumerate()
        .map(|(i, checkpoint)| {
            let endpoint = endpoint.clone();
            std::thread::spawn(move || {
                let sweep = sweep();
                let options = StealOptions {
                    endpoint,
                    chaos: ChaosConfig {
                        heartbeat_drop: 0.6,
                        heartbeat_delay_ms: 0,
                        seed: 41 + i as u64,
                    },
                    ..StealOptions::default()
                };
                run_steal(&sweep, &checkpoint, &options).unwrap()
            })
        })
        .collect();

    // Poll the read-only status query while the sweep runs. Totals
    // must stay within the plan and never regress.
    let mut mid_flight_polls = 0usize;
    let mut last_done = 0usize;
    while !workers.iter().all(|w| w.is_finished()) {
        if let Some(status) = poll_status(&endpoint) {
            assert_eq!(status.total_points, total_points);
            assert!(status.done_points <= total_points);
            assert!(
                status.done_points >= last_done,
                "done_points regressed: {} -> {}",
                last_done,
                status.done_points
            );
            last_done = status.done_points;
            mid_flight_polls += 1;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(mid_flight_polls > 0, "never observed the sweep mid-flight");

    let summaries: Vec<_> = workers.into_iter().map(|w| w.join().unwrap()).collect();
    assert!(summaries.iter().all(|s| s.drained));

    // The probe holds the linger open: this poll is deterministic.
    let status = poll_status(&endpoint).expect("coordinator lingers until the probe acks");
    assert_eq!(status.done, status.batches, "every batch done");
    assert_eq!(status.done_points, total_points);
    assert_eq!(status.total_points, total_points);
    assert_eq!(status.leased, 0);

    // Per-worker reconciliation: the folded sweep.points counter in
    // the roster equals the worker's own durable checkpoint, exactly.
    // (The final lease request piggybacks the last cumulative
    // snapshot, so lost heartbeats cannot leave the fold short.)
    for (summary, checkpoint) in summaries.iter().zip(&checkpoints) {
        let identity = worker_identity(checkpoint);
        assert_eq!(summary.worker, identity);
        let row = status
            .workers
            .iter()
            .find(|w| w.worker == identity)
            .unwrap_or_else(|| panic!("{identity} missing from the roster"));
        let on_disk = checkpoint_points(checkpoint);
        assert_eq!(
            row.points as usize, on_disk,
            "{identity}: roster points != checkpoint points"
        );
        assert_eq!(summary.solved, on_disk);
        assert!(row.reports > 0, "{identity}: no reports folded");
    }
    let fleet_points = status.fleet.counter("sweep.points") as usize;
    let disk_points: usize = checkpoints.iter().map(checkpoint_points).sum();
    assert_eq!(fleet_points, disk_points, "fleet fold != sum of checkpoints");
    assert!(
        disk_points >= total_points,
        "checkpoints must cover the lattice (dups allowed after reclaims)"
    );

    // Telemetry is a view, not the source of truth: the merged
    // checkpoints still reproduce the full deduplicated lattice.
    let merged = merge_checkpoints(&checkpoints).unwrap();
    assert_eq!(merged.results.len(), total_points);

    // Snapshot redelivery is idempotent end-to-end: replaying the
    // same (incarnation, seq) report over the wire changes nothing.
    // The heartbeat is for a long-gone lease — the coordinator answers
    // Expired but still folds the piggybacked report.
    let mut snapshot = MetricsSnapshot::new();
    snapshot.add_counter("sweep.points", 5);
    let replay = Request::Heartbeat {
        worker: "w-probe".to_string(),
        batch: 0,
        epoch: u64::MAX,
        report: Some(WorkerReport {
            incarnation: "i-replay".to_string(),
            seq: 7,
            snapshot,
        }),
    };
    assert_eq!(roundtrip(&endpoint, &replay), Some(Response::Expired));
    let once = poll_status(&endpoint).expect("still lingering");
    assert_eq!(roundtrip(&endpoint, &replay), Some(Response::Expired));
    let twice = poll_status(&endpoint).expect("still lingering");
    assert_eq!(once.fleet.counter("sweep.points"), fleet_points as u64 + 5);
    assert_eq!(twice.fleet.counter("sweep.points"), fleet_points as u64 + 5);
    let probe_row = |s: &StatusReport| {
        s.workers
            .iter()
            .find(|w| w.worker == "w-probe")
            .map(|w| (w.points, w.reports))
            .expect("probe is on the roster")
    };
    assert_eq!(probe_row(&once), (5, 1));
    assert_eq!(probe_row(&twice), (5, 1), "redelivered report was re-folded");

    // Release the linger: the probe asks again, is told Drained, and
    // the coordinator exits cleanly.
    assert_eq!(roundtrip(&endpoint, &probe_lease), Some(Response::Drained));
    let summary = server.join().unwrap();
    assert!(summary.drained);
    assert_eq!(summary.points, total_points);

    let _ = std::fs::remove_dir_all(&dir);
}
