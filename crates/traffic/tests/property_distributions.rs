//! Property-based tests of the traffic distributions and marginal
//! transformations, run as seeded hand-rolled case loops.

use lrd_rng::{rngs::SmallRng, Rng, SeedableRng};
use lrd_traffic::{
    interarrival::check_distribution_invariants, Exponential, HyperExponential, Interarrival,
    Marginal, TruncatedPareto,
};

const CASES: u64 = 96;

fn probes() -> Vec<f64> {
    vec![0.0, 1e-4, 0.01, 0.1, 0.5, 1.0, 3.0, 10.0, 50.0, 1e3]
}

fn arb_pareto(rng: &mut SmallRng) -> TruncatedPareto {
    let theta = rng.gen_range(0.001f64..1.0);
    let alpha = rng.gen_range(1.05f64..1.95);
    let cutoff = if rng.gen_bool(0.5) {
        rng.gen_range(0.05f64..100.0)
    } else {
        f64::INFINITY
    };
    TruncatedPareto::new(theta, alpha, cutoff)
}

fn arb_marginal(rng: &mut SmallRng) -> Marginal {
    let len = rng.gen_range(1usize..12);
    let rates: Vec<f64> = (0..len).map(|_| rng.gen_range(0.0f64..50.0)).collect();
    let probs: Vec<f64> = (0..len).map(|_| rng.gen_range(0.01f64..1.0)).collect();
    Marginal::new(&rates, &probs)
}

#[test]
fn pareto_satisfies_interarrival_contract() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x7A_0000 + case);
        check_distribution_invariants(&arb_pareto(&mut rng), &probes());
    }
}

#[test]
fn exponential_satisfies_interarrival_contract() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x7A_1000 + case);
        let mean = rng.gen_range(0.001f64..100.0);
        check_distribution_invariants(&Exponential::new(mean), &probes());
    }
}

#[test]
fn hyperexponential_satisfies_interarrival_contract() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x7A_2000 + case);
        let n = rng.gen_range(1usize..6);
        let branches: Vec<(f64, f64)> = (0..n)
            .map(|_| (rng.gen_range(0.01f64..1.0), rng.gen_range(0.001f64..10.0)))
            .collect();
        check_distribution_invariants(&HyperExponential::new(&branches), &probes());
    }
}

#[test]
fn pareto_mean_consistent_with_int_ccdf() {
    // E[T] = ∫₀^∞ ccdf — the closed forms must agree.
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x7A_3000 + case);
        let d = arb_pareto(&mut rng);
        assert!(
            (d.int_ccdf(0.0) - d.mean()).abs() < 1e-9 * d.mean(),
            "case {case}"
        );
    }
}

#[test]
fn pareto_residual_ccdf_is_valid() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x7A_4000 + case);
        let d = arb_pareto(&mut rng);
        let t = rng.gen_range(0.0f64..10.0);
        let r = d.residual_ccdf(t);
        assert!((0.0..=1.0).contains(&r), "case {case}: r = {r}");
        // Residual tail of a positive variable is dominated by 1 and
        // decreasing in t.
        assert!(d.residual_ccdf(t + 1.0) <= r + 1e-12, "case {case}");
    }
}

#[test]
fn theta_calibration_roundtrip() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x7A_5000 + case);
        let mean = rng.gen_range(0.001f64..10.0);
        let alpha = rng.gen_range(1.05f64..1.95);
        let theta = TruncatedPareto::calibrate_theta(mean, alpha);
        let d = TruncatedPareto::new(theta, alpha, f64::INFINITY);
        assert!((d.mean() - mean).abs() < 1e-10 * mean, "case {case}");
    }
}

#[test]
fn marginal_probs_normalized() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x7A_6000 + case);
        let m = arb_marginal(&mut rng);
        let total: f64 = m.probs().iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "case {case}: total {total}");
        assert!(m.rates().windows(2).all(|w| w[0] < w[1]), "case {case}");
    }
}

#[test]
fn scaling_preserves_mean_scales_std() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x7A_7000 + case);
        let m = arb_marginal(&mut rng);
        let a = rng.gen_range(0.0f64..3.0);
        let s = m.scaled(a);
        assert!(
            (s.mean() - m.mean()).abs() < 1e-9 * m.mean().max(1.0),
            "case {case}"
        );
        assert!(
            (s.std_dev() - a * m.std_dev()).abs() < 1e-9 * m.std_dev().max(1.0),
            "case {case}"
        );
    }
}

#[test]
fn superposition_preserves_mean_shrinks_variance() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x7A_8000 + case);
        let m = arb_marginal(&mut rng);
        let n = rng.gen_range(1usize..6);
        let s = m.superpose(n, 150);
        assert!(
            (s.mean() - m.mean()).abs() < 1e-8 * m.mean().max(1.0),
            "case {case}"
        );
        // Re-binning approximates: allow slack on the 1/n law and
        // never an increase beyond the original variance.
        let want = m.variance() / n as f64;
        assert!(s.variance() <= m.variance() + 1e-9, "case {case}");
        if m.variance() > 1e-9 {
            assert!(
                (s.variance() - want).abs() <= 0.15 * m.variance(),
                "case {case}: var {} vs {want}",
                s.variance()
            );
        }
    }
}

#[test]
fn convolution_adds_means_and_variances() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x7A_9000 + case);
        let a = arb_marginal(&mut rng);
        let b = arb_marginal(&mut rng);
        let c = a.convolve(&b);
        assert!((c.mean() - a.mean() - b.mean()).abs() < 1e-8, "case {case}");
        assert!(
            (c.variance() - a.variance() - b.variance()).abs()
                < 1e-7 * (1.0 + a.variance() + b.variance()),
            "case {case}"
        );
    }
}

#[test]
fn quantile_inverts_cdf() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x7A_A000 + case);
        let m = arb_marginal(&mut rng);
        let u = rng.gen_range(0.0f64..1.0);
        let q = m.quantile(u);
        // CDF at the quantile covers u.
        assert!(m.cdf(q) >= u - 1e-12, "case {case}");
        assert!(m.rates().contains(&q), "case {case}");
    }
}
