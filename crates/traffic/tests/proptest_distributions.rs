//! Property-based tests of the traffic distributions and marginal
//! transformations.

use lrd_traffic::{
    interarrival::check_distribution_invariants, Exponential, HyperExponential, Interarrival,
    Marginal, TruncatedPareto,
};
use proptest::prelude::*;

fn probes() -> Vec<f64> {
    vec![0.0, 1e-4, 0.01, 0.1, 0.5, 1.0, 3.0, 10.0, 50.0, 1e3]
}

fn arb_pareto() -> impl Strategy<Value = TruncatedPareto> {
    (
        0.001f64..1.0,
        1.05f64..1.95,
        prop_oneof![(0.05f64..100.0).boxed(), Just(f64::INFINITY).boxed()],
    )
        .prop_map(|(theta, alpha, cutoff)| TruncatedPareto::new(theta, alpha, cutoff))
}

fn arb_marginal() -> impl Strategy<Value = Marginal> {
    proptest::collection::vec((0.0f64..50.0, 0.01f64..1.0), 1..12)
        .prop_map(|pairs| {
            let rates: Vec<f64> = pairs.iter().map(|p| p.0).collect();
            let probs: Vec<f64> = pairs.iter().map(|p| p.1).collect();
            Marginal::new(&rates, &probs)
        })
}

proptest! {
    #[test]
    fn pareto_satisfies_interarrival_contract(d in arb_pareto()) {
        check_distribution_invariants(&d, &probes());
    }

    #[test]
    fn exponential_satisfies_interarrival_contract(mean in 0.001f64..100.0) {
        check_distribution_invariants(&Exponential::new(mean), &probes());
    }

    #[test]
    fn hyperexponential_satisfies_interarrival_contract(
        branches in proptest::collection::vec((0.01f64..1.0, 0.001f64..10.0), 1..6)
    ) {
        check_distribution_invariants(&HyperExponential::new(&branches), &probes());
    }

    #[test]
    fn pareto_mean_consistent_with_int_ccdf(d in arb_pareto()) {
        // E[T] = ∫₀^∞ ccdf — the closed forms must agree.
        prop_assert!((d.int_ccdf(0.0) - d.mean()).abs() < 1e-9 * d.mean());
    }

    #[test]
    fn pareto_residual_ccdf_is_valid(d in arb_pareto(), t in 0.0f64..10.0) {
        let r = d.residual_ccdf(t);
        prop_assert!((0.0..=1.0).contains(&r));
        // Residual tail of a positive variable is dominated by 1 and
        // decreasing in t.
        prop_assert!(d.residual_ccdf(t + 1.0) <= r + 1e-12);
    }

    #[test]
    fn theta_calibration_roundtrip(mean in 0.001f64..10.0, alpha in 1.05f64..1.95) {
        let theta = TruncatedPareto::calibrate_theta(mean, alpha);
        let d = TruncatedPareto::new(theta, alpha, f64::INFINITY);
        prop_assert!((d.mean() - mean).abs() < 1e-10 * mean);
    }

    #[test]
    fn marginal_probs_normalized(m in arb_marginal()) {
        let total: f64 = m.probs().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        prop_assert!(m.rates().windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn scaling_preserves_mean_scales_std(m in arb_marginal(), a in 0.0f64..3.0) {
        let s = m.scaled(a);
        prop_assert!((s.mean() - m.mean()).abs() < 1e-9 * m.mean().max(1.0));
        prop_assert!((s.std_dev() - a * m.std_dev()).abs() < 1e-9 * m.std_dev().max(1.0));
    }

    #[test]
    fn superposition_preserves_mean_shrinks_variance(m in arb_marginal(), n in 1usize..6) {
        let s = m.superpose(n, 150);
        prop_assert!((s.mean() - m.mean()).abs() < 1e-8 * m.mean().max(1.0));
        // Re-binning approximates: allow 10% slack on the 1/n law and
        // never an increase beyond the original variance.
        let want = m.variance() / n as f64;
        prop_assert!(s.variance() <= m.variance() + 1e-9);
        if m.variance() > 1e-9 {
            prop_assert!(
                (s.variance() - want).abs() <= 0.15 * m.variance(),
                "var {} vs {}", s.variance(), want
            );
        }
    }

    #[test]
    fn convolution_adds_means_and_variances(a in arb_marginal(), b in arb_marginal()) {
        let c = a.convolve(&b);
        prop_assert!((c.mean() - a.mean() - b.mean()).abs() < 1e-8);
        prop_assert!(
            (c.variance() - a.variance() - b.variance()).abs()
                < 1e-7 * (1.0 + a.variance() + b.variance())
        );
    }

    #[test]
    fn quantile_inverts_cdf(m in arb_marginal(), u in 0.0f64..1.0) {
        let q = m.quantile(u);
        // CDF at the quantile covers u.
        prop_assert!(m.cdf(q) >= u - 1e-12);
        prop_assert!(m.rates().contains(&q));
    }
}
