//! The M/G/∞ input model: Poisson session arrivals with heavy-tailed
//! durations.
//!
//! The third classical LRD traffic generator referenced by the paper
//! (Parulekar & Makowski, its ref. [28]): sessions arrive as a Poisson
//! process of rate `ν`, each transmits at a unit rate for a
//! Pareto-distributed holding time, and the instantaneous traffic rate
//! is the number of busy servers of an M/G/∞ queue. With holding-time
//! tail index `1 < α < 2` the busy-server process is long-range
//! dependent with `H = (3 − α)/2` — the same tail-to-Hurst law as the
//! on/off superposition, reached through a different physical story
//! (many short flows instead of few heavy ones).

use crate::trace::Trace;
use lrd_rng::Rng;

/// An M/G/∞ traffic source: Poisson session arrivals, Pareto holding
/// times, unit rate per active session.
#[derive(Debug, Clone, Copy)]
pub struct MGInfSource {
    /// Session arrival rate ν (sessions/second).
    pub arrival_rate: f64,
    /// Pareto shape of the holding-time distribution (`> 1` so the
    /// mean exists; `< 2` for LRD).
    pub duration_alpha: f64,
    /// Minimum holding time (Pareto scale), seconds.
    pub duration_min: f64,
    /// Rate contributed by one active session (Mb/s).
    pub rate_per_session: f64,
}

impl MGInfSource {
    /// Creates a source, validating parameters.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is non-positive or `duration_alpha <= 1`.
    pub fn new(arrival_rate: f64, duration_alpha: f64, duration_min: f64, rate_per_session: f64) -> Self {
        assert!(arrival_rate > 0.0, "arrival rate must be positive");
        assert!(duration_alpha > 1.0, "duration shape must exceed 1");
        assert!(duration_min > 0.0, "duration scale must be positive");
        assert!(rate_per_session > 0.0, "per-session rate must be positive");
        MGInfSource {
            arrival_rate,
            duration_alpha,
            duration_min,
            rate_per_session,
        }
    }

    /// Mean holding time `α·m/(α − 1)`.
    pub fn mean_duration(&self) -> f64 {
        self.duration_alpha * self.duration_min / (self.duration_alpha - 1.0)
    }

    /// Mean number of concurrently active sessions (Little's law:
    /// `ν · E[D]`).
    pub fn mean_active(&self) -> f64 {
        self.arrival_rate * self.mean_duration()
    }

    /// Long-run mean traffic rate.
    pub fn mean_rate(&self) -> f64 {
        self.mean_active() * self.rate_per_session
    }

    /// Hurst parameter of the busy-server process for `α < 2`
    /// (`H = (3 − α)/2`), or `0.5` for light-tailed durations.
    pub fn hurst(&self) -> f64 {
        if self.duration_alpha >= 2.0 {
            0.5
        } else {
            (3.0 - self.duration_alpha) / 2.0
        }
    }

    fn sample_duration<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        self.duration_min * u.powf(-1.0 / self.duration_alpha)
    }

    /// Generates a binned [`Trace`] of `samples` bins at interval `dt`.
    ///
    /// The process is warmed up by pre-seeding the stationary number
    /// of sessions active at time zero with their *residual* (length-
    /// biased) durations, so the output is stationary from the first
    /// bin — without this, the busy-server count would ramp up from
    /// zero over the (heavy-tailed, slowly converging) warm-up period.
    pub fn sample_trace<R: Rng + ?Sized>(&self, rng: &mut R, dt: f64, samples: usize) -> Trace {
        assert!(dt > 0.0 && samples > 0);
        let _span = lrd_obs::span!("traffic.mginf", samples = samples, hurst = self.hurst());
        let total = dt * samples as f64;
        let mut bins = vec![0.0f64; samples];

        let add_session = |start: f64, dur: f64, bins: &mut [f64]| {
            let end = (start + dur).min(total);
            if end <= 0.0 || start >= total {
                return;
            }
            let s = start.max(0.0);
            let first = (s / dt) as usize;
            let last = ((end / dt).ceil() as usize).min(samples);
            #[allow(clippy::needless_range_loop)]
            for bin in first..last {
                let lo = bin as f64 * dt;
                let hi = lo + dt;
                let overlap = (end.min(hi) - s.max(lo)).max(0.0);
                if overlap > 0.0 {
                    bins[bin] += self.rate_per_session * overlap / dt;
                }
            }
        };

        // Stationary initial sessions: Poisson(mean_active) many, each
        // with a residual life drawn from the equilibrium distribution
        // of the Pareto. For Pareto(α, m) the equilibrium ccdf is
        // integrable in closed form; sampling via the inverse of
        // F_e(t) = 1 − (m/(m ∨ t))^{α−1} · correction is subtle, so use
        // the standard construction instead: a length-biased duration
        // D* (density ∝ t·f(t), sampled as m·U^{-1/(α−1)}) with a
        // uniform age — the elapsed fraction is uniform on [0, D*].
        let n0 = poisson(rng, self.mean_active());
        for _ in 0..n0 {
            let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            let biased = self.duration_min * u.powf(-1.0 / (self.duration_alpha - 1.0));
            let age: f64 = rng.gen_range(0.0..1.0) * biased;
            add_session(-age, biased, &mut bins);
        }

        // Fresh Poisson arrivals over (0, total].
        let mut t = 0.0;
        loop {
            let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            t += -u.ln() / self.arrival_rate;
            if t >= total {
                break;
            }
            let dur = self.sample_duration(rng);
            add_session(t, dur, &mut bins);
        }
        Trace::new(dt, bins)
    }
}

/// Draws a Poisson variate by inversion (adequate for the moderate
/// means used here).
fn poisson<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> usize {
    assert!(mean >= 0.0 && mean.is_finite());
    // For large means use the normal approximation to avoid long loops.
    if mean > 500.0 {
        let z = crate::fgn::standard_normal(rng);
        return (mean + mean.sqrt() * z).round().max(0.0) as usize;
    }
    let limit = (-mean).exp();
    let mut k = 0usize;
    let mut p = 1.0f64;
    loop {
        p *= rng.gen_range(0.0f64..1.0);
        if p <= limit {
            return k;
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrd_rng::SeedableRng;

    fn src() -> MGInfSource {
        MGInfSource::new(20.0, 1.5, 0.1, 1.0)
    }

    #[test]
    fn littles_law() {
        let s = src();
        assert!((s.mean_duration() - 0.3).abs() < 1e-12);
        assert!((s.mean_active() - 6.0).abs() < 1e-12);
        assert!((s.mean_rate() - 6.0).abs() < 1e-12);
        assert!((s.hurst() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn trace_mean_matches_littles_law() {
        let s = src();
        let mut rng = lrd_rng::rngs::SmallRng::seed_from_u64(81);
        let t = s.sample_trace(&mut rng, 0.1, 40_000);
        assert!(
            (t.mean_rate() - s.mean_rate()).abs() / s.mean_rate() < 0.1,
            "trace mean {} vs {}",
            t.mean_rate(),
            s.mean_rate()
        );
    }

    #[test]
    fn stationary_from_the_start() {
        // Without equilibrium seeding the first bins would be near
        // zero; with it, the first 5% of the trace has (roughly) the
        // same mean as the rest.
        let s = src();
        let mut rng = lrd_rng::rngs::SmallRng::seed_from_u64(82);
        let t = s.sample_trace(&mut rng, 0.1, 20_000);
        let head = lrd_stats::mean(&t.rates()[..1000]);
        let tail = lrd_stats::mean(&t.rates()[1000..]);
        assert!(
            (head - tail).abs() < 0.35 * tail,
            "warm-up visible: head {head:.2} vs tail {tail:.2}"
        );
    }

    #[test]
    fn heavy_tails_give_lrd() {
        let s = MGInfSource::new(30.0, 1.4, 0.1, 1.0);
        let mut rng = lrd_rng::rngs::SmallRng::seed_from_u64(83);
        let t = s.sample_trace(&mut rng, 0.1, 1 << 15);
        let est = lrd_stats::variance_time_estimate(t.rates());
        assert!(
            est.h > 0.65,
            "M/G/∞ with α = 1.4 should read as LRD, got H = {}",
            est.h
        );
    }

    #[test]
    fn light_tails_do_not() {
        // α close to 2 and modest horizon: much weaker dependence.
        let heavy = MGInfSource::new(30.0, 1.2, 0.1, 1.0);
        let light = MGInfSource::new(30.0, 1.95, 0.1, 1.0);
        let mut rng = lrd_rng::rngs::SmallRng::seed_from_u64(84);
        let th = heavy.sample_trace(&mut rng, 0.1, 1 << 15);
        let tl = light.sample_trace(&mut rng, 0.1, 1 << 15);
        let hh = lrd_stats::variance_time_estimate(th.rates()).h;
        let hl = lrd_stats::variance_time_estimate(tl.rates()).h;
        assert!(hh > hl, "heavier tails must read more LRD: {hh} vs {hl}");
    }

    #[test]
    fn poisson_sampler_mean() {
        let mut rng = lrd_rng::rngs::SmallRng::seed_from_u64(85);
        for &mean in &[0.5f64, 5.0, 50.0, 800.0] {
            let n = 20_000;
            let s: usize = (0..n).map(|_| poisson(&mut rng, mean)).sum();
            let emp = s as f64 / n as f64;
            assert!(
                (emp - mean).abs() < 0.05 * mean.max(1.0),
                "poisson mean {emp} vs {mean}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "duration shape must exceed 1")]
    fn invalid_alpha() {
        MGInfSource::new(1.0, 1.0, 0.1, 1.0);
    }
}
