//! A GOP-structured VBR video source.
//!
//! Sec. II of the paper notes that its renewal model "is not
//! well-suited for sources with separate structures for the short term
//! and long term correlation, for example VBR video sources typically
//! characterized by an exponential decrease in the short term followed
//! by an hyperbolic decrease in the long term" (citing Garrett &
//! Willinger). This module provides such a source as a *generator*, so
//! the limitation can be studied empirically: scene lengths are
//! heavy-tailed (hyperbolic long-term correlation), the per-scene base
//! rate is redrawn per scene, and a periodic group-of-pictures (GOP)
//! modulation plus AR(1) frame noise supplies the exponential
//! short-term structure.

use crate::trace::Trace;
use lrd_rng::Rng;

/// Configuration of the synthetic VBR video source.
#[derive(Debug, Clone, Copy)]
pub struct VbrVideoConfig {
    /// Frame interval in seconds (e.g. 1/30 for NTSC).
    pub frame_interval: f64,
    /// Mean rate across scenes, Mb/s.
    pub mean_rate: f64,
    /// Standard deviation of the per-scene base rate, Mb/s.
    pub scene_sigma: f64,
    /// Pareto shape of the scene-length distribution (`1 < α < 2`
    /// gives LRD at scene time scales).
    pub scene_alpha: f64,
    /// Minimum scene length in frames.
    pub scene_min_frames: usize,
    /// GOP length in frames (I-frame period).
    pub gop: usize,
    /// Ratio of I-frame size to the scene base rate (> 1).
    pub i_frame_boost: f64,
    /// AR(1) coefficient of the frame-to-frame noise (exponential
    /// short-term correlation).
    pub ar1: f64,
    /// Standard deviation of the frame noise, Mb/s.
    pub noise_sigma: f64,
}

impl Default for VbrVideoConfig {
    fn default() -> Self {
        VbrVideoConfig {
            frame_interval: 1.0 / 30.0,
            mean_rate: 4.0,
            scene_sigma: 1.2,
            scene_alpha: 1.5,
            scene_min_frames: 12,
            gop: 12,
            i_frame_boost: 2.5,
            ar1: 0.6,
            noise_sigma: 0.3,
        }
    }
}

/// Generates a frame-rate trace of `frames` frames.
///
/// # Panics
///
/// Panics on non-positive rates/intervals, `scene_alpha` outside
/// `(1, 2)`, `ar1` outside `[0, 1)`, or a zero GOP.
pub fn vbr_video_trace<R: Rng + ?Sized>(
    cfg: &VbrVideoConfig,
    frames: usize,
    rng: &mut R,
) -> Trace {
    assert!(frames > 0, "need at least one frame");
    assert!(cfg.frame_interval > 0.0 && cfg.mean_rate > 0.0);
    assert!(
        cfg.scene_alpha > 1.0 && cfg.scene_alpha < 2.0,
        "scene_alpha must lie in (1, 2)"
    );
    assert!((0.0..1.0).contains(&cfg.ar1), "ar1 must lie in [0, 1)");
    assert!(cfg.gop > 0, "GOP length must be positive");
    assert!(cfg.i_frame_boost >= 1.0, "I frames cannot be smaller than P frames");

    // The GOP modulation multiplies the base rate by `i_frame_boost`
    // on I frames; normalize so the long-run mean is `mean_rate`.
    let gop_mean = (cfg.i_frame_boost + (cfg.gop as f64 - 1.0)) / cfg.gop as f64;

    let mut rates = Vec::with_capacity(frames);
    let mut noise = 0.0f64;
    let mut frame_in_scene = usize::MAX; // force a new scene at start
    let mut scene_len = 0usize;
    let mut base = cfg.mean_rate;
    for f in 0..frames {
        if frame_in_scene >= scene_len {
            // New scene: heavy-tailed length, fresh base rate.
            let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            scene_len = ((cfg.scene_min_frames as f64) * u.powf(-1.0 / cfg.scene_alpha)) as usize;
            scene_len = scene_len.max(cfg.scene_min_frames);
            base = (cfg.mean_rate + cfg.scene_sigma * crate::fgn::standard_normal(rng)).max(0.1);
            frame_in_scene = 0;
        }
        let gop_factor = if f % cfg.gop == 0 {
            cfg.i_frame_boost
        } else {
            1.0
        };
        noise = cfg.ar1 * noise
            + (1.0 - cfg.ar1 * cfg.ar1).sqrt() * cfg.noise_sigma * crate::fgn::standard_normal(rng);
        let rate = (base * gop_factor / gop_mean + noise).max(0.0);
        rates.push(rate);
        frame_in_scene += 1;
    }
    Trace::new(cfg.frame_interval, rates)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrd_rng::SeedableRng;

    #[test]
    fn mean_rate_is_respected() {
        let cfg = VbrVideoConfig::default();
        let mut rng = lrd_rng::rngs::SmallRng::seed_from_u64(41);
        let t = vbr_video_trace(&cfg, 60_000, &mut rng);
        assert!(
            (t.mean_rate() - cfg.mean_rate).abs() / cfg.mean_rate < 0.15,
            "mean rate {}",
            t.mean_rate()
        );
        assert!(t.rates().iter().all(|&r| r >= 0.0));
    }

    #[test]
    fn gop_period_is_visible_in_autocorrelation() {
        let cfg = VbrVideoConfig {
            i_frame_boost: 4.0,
            noise_sigma: 0.05,
            ..VbrVideoConfig::default()
        };
        let mut rng = lrd_rng::rngs::SmallRng::seed_from_u64(42);
        let t = vbr_video_trace(&cfg, 1 << 14, &mut rng);
        let rho = lrd_stats::autocorrelation(t.rates(), 2 * cfg.gop);
        // Correlation at one GOP period exceeds the adjacent off-period
        // lags (the periodic I-frame spike).
        assert!(
            rho[cfg.gop] > rho[cfg.gop - 2] && rho[cfg.gop] > rho[cfg.gop + 2],
            "no GOP peak: {:.3} vs {:.3}/{:.3}",
            rho[cfg.gop],
            rho[cfg.gop - 2],
            rho[cfg.gop + 2]
        );
    }

    #[test]
    fn heavy_tailed_scenes_produce_lrd() {
        let cfg = VbrVideoConfig {
            scene_alpha: 1.3,
            noise_sigma: 0.1,
            i_frame_boost: 1.0, // isolate the scene process
            ..VbrVideoConfig::default()
        };
        let mut rng = lrd_rng::rngs::SmallRng::seed_from_u64(43);
        let t = vbr_video_trace(&cfg, 1 << 16, &mut rng);
        let est = lrd_stats::variance_time_estimate(t.rates());
        assert!(
            est.h > 0.65,
            "expected LRD from heavy-tailed scenes, got H = {}",
            est.h
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = VbrVideoConfig::default();
        let mut a = lrd_rng::rngs::SmallRng::seed_from_u64(7);
        let mut b = lrd_rng::rngs::SmallRng::seed_from_u64(7);
        assert_eq!(
            vbr_video_trace(&cfg, 1000, &mut a),
            vbr_video_trace(&cfg, 1000, &mut b)
        );
    }

    #[test]
    #[should_panic(expected = "ar1 must lie in [0, 1)")]
    fn invalid_ar1_rejected() {
        let cfg = VbrVideoConfig {
            ar1: 1.0,
            ..VbrVideoConfig::default()
        };
        let mut rng = lrd_rng::rngs::SmallRng::seed_from_u64(1);
        vbr_video_trace(&cfg, 10, &mut rng);
    }
}
