//! The autocovariance structure of the modulated fluid model.
//!
//! Paper Eq. 3 shows `φ(t) = σ² Pr{τ_res >= t}`: because rates in
//! distinct renewal intervals are independent, the only correlation
//! between `X_0` and `X_t` comes from the event that *no* renewal
//! occurred in `[0, t]`, whose stationary probability is the residual-
//! life tail of the interarrival distribution (Eq. 5). For the
//! truncated Pareto this yields Eq. 8, which decays hyperbolically like
//! `t^{1-α}` below the cutoff and is identically zero beyond it.

use crate::interarrival::Interarrival;
use crate::marginal::Marginal;
use crate::pareto::TruncatedPareto;

/// The Hurst parameter implied by a Pareto shape: `H = (3 − α)/2`.
pub fn hurst_from_alpha(alpha: f64) -> f64 {
    assert!(alpha > 1.0 && alpha < 2.0, "alpha must lie in (1, 2)");
    (3.0 - alpha) / 2.0
}

/// The Pareto shape implied by a Hurst parameter: `α = 3 − 2H`.
pub fn alpha_from_hurst(hurst: f64) -> f64 {
    assert!(hurst > 0.5 && hurst < 1.0, "H must lie in (1/2, 1)");
    3.0 - 2.0 * hurst
}

/// Autocovariance `φ(t)` of the fluid rate process at lag `t`
/// (paper Eq. 8): `σ²` times the residual-life tail of the truncated
/// Pareto.
pub fn autocovariance_at(marginal: &Marginal, intervals: &TruncatedPareto, t: f64) -> f64 {
    marginal.variance() * intervals.residual_ccdf(t)
}

/// Autocovariance of the modulated fluid model for a *generic*
/// interarrival distribution, using Eq. 5 directly:
/// `φ(t) = σ² ∫_t^∞ Pr{T > u} du / E[T]`.
pub fn autocovariance_generic<D: Interarrival>(marginal: &Marginal, intervals: &D, t: f64) -> f64 {
    if t <= 0.0 {
        return marginal.variance();
    }
    marginal.variance() * intervals.int_ccdf(t) / intervals.mean()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pareto::Exponential;

    fn marg() -> Marginal {
        Marginal::new(&[1.0, 3.0], &[0.5, 0.5])
    }

    #[test]
    fn lag_zero_is_variance() {
        let d = TruncatedPareto::new(0.05, 1.4, 2.0);
        let m = marg();
        assert!((autocovariance_at(&m, &d, 0.0) - m.variance()).abs() < 1e-12);
    }

    #[test]
    fn vanishes_beyond_cutoff() {
        let d = TruncatedPareto::new(0.05, 1.4, 2.0);
        let m = marg();
        assert_eq!(autocovariance_at(&m, &d, 2.0), 0.0);
        assert_eq!(autocovariance_at(&m, &d, 5.0), 0.0);
        assert!(autocovariance_at(&m, &d, 1.99) > 0.0);
    }

    #[test]
    fn generic_matches_specialized_for_pareto() {
        let d = TruncatedPareto::new(0.05, 1.4, 2.0);
        let m = marg();
        for &t in &[0.01, 0.1, 0.5, 1.0, 1.9] {
            let a = autocovariance_at(&m, &d, t);
            let b = autocovariance_generic(&m, &d, t);
            assert!((a - b).abs() < 1e-12, "mismatch at t={t}: {a} vs {b}");
        }
    }

    #[test]
    fn untruncated_decay_is_hyperbolic() {
        // φ(t) ~ t^{1-α} for large t when T_c = ∞: the log-log slope
        // between two large lags approaches 1 − α.
        let alpha = 1.4;
        let d = TruncatedPareto::new(0.05, alpha, f64::INFINITY);
        let m = marg();
        let (t1, t2) = (100.0, 1000.0);
        let slope = (autocovariance_at(&m, &d, t2) / autocovariance_at(&m, &d, t1)).ln()
            / (t2 / t1).ln();
        assert!(
            (slope - (1.0 - alpha)).abs() < 0.01,
            "asymptotic slope {slope} vs {}",
            1.0 - alpha
        );
    }

    #[test]
    fn exponential_decay_for_markovian_intervals() {
        let d = Exponential::new(0.1);
        let m = marg();
        // φ(t)/σ² = e^{-t/mean} for exponential intervals.
        for &t in &[0.05, 0.1, 0.3] {
            let want = m.variance() * (-t / 0.1f64).exp();
            let got = autocovariance_generic(&m, &d, t);
            assert!((want - got).abs() < 1e-12, "at t={t}");
        }
    }

    #[test]
    fn hurst_alpha_roundtrip() {
        for &h in &[0.55, 0.7, 0.83, 0.9, 0.95] {
            assert!((hurst_from_alpha(alpha_from_hurst(h)) - h).abs() < 1e-12);
        }
    }
}
