//! The interface between interval-length distributions and the rest of
//! the workspace.
//!
//! The paper's model fixes the interarrival distribution to a truncated
//! Pareto (its Eq. 6), but explicitly notes that "the numerical
//! procedure developed in Section II can be used independent of the
//! particular model" (Sec. IV) — e.g. with Markovian interval lengths.
//! This trait is that independence boundary: the loss solver and the
//! simulator consume any [`Interarrival`], and the workspace ships two
//! implementations, [`crate::TruncatedPareto`] and
//! [`crate::Exponential`].

use lrd_rng::Rng;

/// A positive interarrival-time distribution, possibly with an atom at
/// the top of its support (the truncated Pareto has one at `T_c`).
///
/// `Send + Sync` is a supertrait so the loss solver can evaluate the
/// two bounding chains (and the grid-refinement rebuild) on worker
/// threads; every distribution here is a plain bag of parameters, so
/// the bound costs implementors nothing.
pub trait Interarrival: Send + Sync {
    /// Complementary CDF `Pr{T > t}`. Must be right-continuous,
    /// non-increasing, with `ccdf(t) = 1` for `t < 0`.
    fn ccdf(&self, t: f64) -> f64;

    /// `Pr{T >= t}`, which differs from [`Interarrival::ccdf`] exactly
    /// at atoms. Needed to discretize `W = T(λ - c)` without losing the
    /// atom mass on either side of a grid point.
    fn prob_ge(&self, t: f64) -> f64;

    /// Mean interval length `E[T]`.
    fn mean(&self) -> f64;

    /// Variance of the interval length; may be `+∞` (untruncated Pareto
    /// with `α < 2`).
    fn variance(&self) -> f64;

    /// The integrated tail `∫_t^∞ Pr{T > u} du`.
    ///
    /// This is the kernel of the expected-overflow formula (paper
    /// Eq. 15): conditioned on occupancy `x`, the expected lost work is
    /// `Σ_{i: λ_i > c} π_i (λ_i − c) · int_ccdf((B − x)/(λ_i − c))`.
    ///
    /// Note `int_ccdf(0) = E[T]`.
    fn int_ccdf(&self, t: f64) -> f64;

    /// Upper end of the support (`T_c` for the truncated Pareto,
    /// `+∞` for the exponential).
    fn sup(&self) -> f64;

    /// Draws an interval length.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64;
}

/// Shared sanity checks for any `Interarrival` implementation; used by
/// the test suites of both shipped distributions and available to
/// downstream implementations.
#[doc(hidden)]
pub fn check_distribution_invariants<D: Interarrival>(d: &D, probe_points: &[f64]) {
    // ccdf is within [0,1], non-increasing, and dominated by prob_ge.
    let mut prev = 1.0_f64 + 1e-12;
    for &t in probe_points {
        let c = d.ccdf(t);
        let ge = d.prob_ge(t);
        assert!((0.0..=1.0).contains(&c), "ccdf({t}) = {c} out of range");
        assert!(ge >= c - 1e-12, "prob_ge({t}) = {ge} < ccdf = {c}");
        assert!(c <= prev + 1e-12, "ccdf not non-increasing at {t}");
        prev = c;
    }
    // int_ccdf(0) == mean.
    let m = d.mean();
    assert!(
        (d.int_ccdf(0.0) - m).abs() <= 1e-9 * m.max(1.0),
        "int_ccdf(0) = {} != mean = {}",
        d.int_ccdf(0.0),
        m
    );
    // int_ccdf is non-increasing and vanishes beyond the support.
    let mut prev = f64::INFINITY;
    for &t in probe_points {
        let v = d.int_ccdf(t);
        assert!(v >= -1e-12, "int_ccdf({t}) negative: {v}");
        assert!(v <= prev + 1e-12, "int_ccdf not non-increasing at {t}");
        prev = v;
    }
    if d.sup().is_finite() {
        assert_eq!(d.ccdf(d.sup()), 0.0, "ccdf must vanish at sup");
        assert!(d.int_ccdf(d.sup()) <= 1e-15);
    }
}
