//! Interval-length distributions: the paper's truncated Pareto and an
//! exponential (Markovian) baseline.

use crate::error::{require_finite, ModelError};
use crate::interarrival::Interarrival;
use lrd_rng::Rng;

/// The truncated Pareto distribution of paper Eq. 6:
///
/// ```text
/// Pr{T > t} = ((t + θ)/θ)^(-α)   for 0 <= t < T_c
///           = 0                  for t >= T_c
/// ```
///
/// with `θ > 0`, `1 < α < 2`, and cutoff `T_c ∈ (0, ∞]`. Because the
/// ccdf jumps to zero at `T_c`, the distribution carries an **atom** of
/// mass `((T_c + θ)/θ)^(-α)` at `T_c` itself — sampling clamps the
/// untruncated Pareto draw to `T_c`, which reproduces exactly this law.
///
/// With `T_c = ∞` the modulated fluid process built on this
/// distribution is asymptotically second-order self-similar with Hurst
/// parameter `H = (3 − α)/2` (paper Sec. II); with finite `T_c` its
/// autocovariance is *identically zero* beyond lag `T_c`, which is the
/// paper's knob for truncating long-range dependence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TruncatedPareto {
    theta: f64,
    alpha: f64,
    cutoff: f64,
}

impl TruncatedPareto {
    /// Creates a truncated Pareto with scale `theta`, shape `alpha`,
    /// and cutoff lag `cutoff` (use `f64::INFINITY` for the
    /// untruncated, long-range-dependent case).
    ///
    /// ```
    /// use lrd_traffic::{Interarrival, TruncatedPareto};
    ///
    /// // θ = 50 ms, α = 1.4 (H = 0.8), correlation cut at 2 s.
    /// let t = TruncatedPareto::new(0.05, 1.4, 2.0);
    /// assert!((t.hurst() - 0.8).abs() < 1e-12);
    /// assert_eq!(t.ccdf(2.0), 0.0);          // nothing beyond the cutoff
    /// assert!(t.atom_mass() > 0.0);          // ... except the atom at it
    /// assert!((t.int_ccdf(0.0) - t.mean()).abs() < 1e-12);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics unless `theta > 0`, `1 < alpha < 2` and `cutoff > 0`.
    /// Use [`TruncatedPareto::try_new`] for a fallible variant.
    pub fn new(theta: f64, alpha: f64, cutoff: f64) -> Self {
        TruncatedPareto::try_new(theta, alpha, cutoff).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible constructor: returns a typed [`ModelError`] instead of
    /// panicking on invalid parameters.
    pub fn try_new(theta: f64, alpha: f64, cutoff: f64) -> Result<Self, ModelError> {
        require_finite("theta", theta)?;
        require_finite("alpha", alpha)?;
        if cutoff.is_nan() {
            return Err(ModelError::NonFiniteInput {
                param: "cutoff",
                value: cutoff,
            });
        }
        if theta <= 0.0 {
            return Err(ModelError::ParamOutOfDomain {
                param: "theta",
                value: theta,
                constraint: "must be positive and finite",
            });
        }
        if alpha <= 1.0 || alpha >= 2.0 {
            return Err(ModelError::ParamOutOfDomain {
                param: "alpha",
                value: alpha,
                constraint: "must lie in (1, 2) for the self-similar regime",
            });
        }
        if cutoff <= 0.0 {
            return Err(ModelError::ParamOutOfDomain {
                param: "cutoff",
                value: cutoff,
                constraint: "must be positive",
            });
        }
        Ok(TruncatedPareto {
            theta,
            alpha,
            cutoff,
        })
    }

    /// Creates the distribution from a target Hurst parameter
    /// `H ∈ (1/2, 1)` via the paper's mapping `α = 3 − 2H`.
    ///
    /// # Panics
    ///
    /// Panics on parameters [`TruncatedPareto::try_from_hurst`] rejects.
    pub fn from_hurst(hurst: f64, theta: f64, cutoff: f64) -> Self {
        TruncatedPareto::try_from_hurst(hurst, theta, cutoff).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`TruncatedPareto::from_hurst`].
    pub fn try_from_hurst(hurst: f64, theta: f64, cutoff: f64) -> Result<Self, ModelError> {
        require_finite("Hurst parameter", hurst)?;
        if hurst <= 0.5 || hurst >= 1.0 {
            return Err(ModelError::ParamOutOfDomain {
                param: "Hurst parameter",
                value: hurst,
                constraint: "must lie in (1/2, 1)",
            });
        }
        TruncatedPareto::try_new(theta, 3.0 - 2.0 * hurst, cutoff)
    }

    /// The scale parameter `θ`.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// The shape parameter `α`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The cutoff lag `T_c` (possibly `+∞`).
    pub fn cutoff(&self) -> f64 {
        self.cutoff
    }

    /// The Hurst parameter `H = (3 − α)/2` of the *untruncated* model
    /// with this shape.
    pub fn hurst(&self) -> f64 {
        (3.0 - self.alpha) / 2.0
    }

    /// Mass of the atom at `T_c`; zero for the untruncated case.
    pub fn atom_mass(&self) -> f64 {
        if self.cutoff.is_finite() {
            ((self.cutoff + self.theta) / self.theta).powf(-self.alpha)
        } else {
            0.0
        }
    }

    /// Returns a copy with a different cutoff lag — the experiments
    /// sweep `T_c` while holding `θ` and `α` fixed.
    pub fn with_cutoff(&self, cutoff: f64) -> Self {
        TruncatedPareto::new(self.theta, self.alpha, cutoff)
    }

    /// Residual-life ccdf `Pr{τ_res >= t}` of paper Eq. 7: the
    /// probability that the age-stationary residual interval exceeds
    /// `t`. This equals the normalized autocorrelation `φ(t)/σ²` of the
    /// fluid rate process (Eq. 3).
    pub fn residual_ccdf(&self, t: f64) -> f64 {
        if t <= 0.0 {
            return 1.0;
        }
        if t >= self.cutoff {
            return 0.0;
        }
        let e = 1.0 - self.alpha; // negative
        if self.cutoff.is_finite() {
            let a = ((t + self.theta) / self.theta).powf(e);
            let b = ((self.cutoff + self.theta) / self.theta).powf(e);
            (a - b) / (1.0 - b)
        } else {
            ((t + self.theta) / self.theta).powf(e)
        }
    }

    /// Solves paper Eq. 25 for `θ` so that `E[T]` matches
    /// `mean_interval` **with the cutoff taken at infinity** — exactly
    /// the calibration the paper performs against its traces ("We then
    /// set θ such that the mean interval duration ... matches this
    /// empirical mean for T_c = ∞").
    pub fn calibrate_theta(mean_interval: f64, alpha: f64) -> f64 {
        assert!(mean_interval > 0.0, "mean interval must be positive");
        assert!(alpha > 1.0 && alpha < 2.0, "alpha must lie in (1, 2)");
        mean_interval * (alpha - 1.0)
    }

    /// Solves Eq. 25 for `θ` with a *finite* cutoff by bisection.
    /// `E[T]` is strictly increasing in `θ` and bounded by `T_c`, so a
    /// solution exists iff `mean_interval < cutoff`.
    ///
    /// # Panics
    ///
    /// Panics if `mean_interval >= cutoff`.
    pub fn calibrate_theta_finite(mean_interval: f64, alpha: f64, cutoff: f64) -> f64 {
        assert!(mean_interval > 0.0 && alpha > 1.0 && alpha < 2.0);
        assert!(
            mean_interval < cutoff,
            "mean interval {mean_interval} must be below the cutoff {cutoff}"
        );
        let mean_of = |theta: f64| TruncatedPareto::new(theta, alpha, cutoff).mean();
        let mut lo = mean_interval * (alpha - 1.0) * 1e-6;
        let mut hi = mean_interval * (alpha - 1.0);
        // Truncation lowers the mean, so the infinite-cutoff θ may be
        // too small for the finite-cutoff target; grow the upper
        // bracket until it covers the requirement.
        while mean_of(hi) < mean_interval {
            hi *= 2.0;
            assert!(hi.is_finite(), "failed to bracket theta");
        }
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if mean_of(mid) < mean_interval {
                lo = mid;
            } else {
                hi = mid;
            }
            if (hi - lo) <= 1e-14 * hi {
                break;
            }
        }
        0.5 * (lo + hi)
    }
}

impl Interarrival for TruncatedPareto {
    fn ccdf(&self, t: f64) -> f64 {
        if t < 0.0 {
            1.0
        } else if t >= self.cutoff {
            0.0
        } else {
            ((t + self.theta) / self.theta).powf(-self.alpha)
        }
    }

    fn prob_ge(&self, t: f64) -> f64 {
        if t <= 0.0 {
            1.0
        } else if t > self.cutoff {
            0.0
        } else {
            // Includes the atom at T_c when t == T_c.
            ((t + self.theta) / self.theta).powf(-self.alpha)
        }
    }

    fn mean(&self) -> f64 {
        // Eq. 25.
        let base = self.theta / (self.alpha - 1.0);
        if self.cutoff.is_finite() {
            base * (1.0 - (self.cutoff / self.theta + 1.0).powf(1.0 - self.alpha))
        } else {
            base
        }
    }

    fn variance(&self) -> f64 {
        if !self.cutoff.is_finite() {
            // E[T²] diverges for α < 2.
            return f64::INFINITY;
        }
        // E[T²] = 2 ∫₀^{T_c} t Pr{T ≥ t} dt, via s = (t+θ)/θ:
        //       = 2θ² [ (S^{2-α} − 1)/(2−α) − (S^{1-α} − 1)/(1−α) ],
        // where S = (T_c + θ)/θ.
        let s = (self.cutoff + self.theta) / self.theta;
        let a = self.alpha;
        let m2 = 2.0
            * self.theta
            * self.theta
            * ((s.powf(2.0 - a) - 1.0) / (2.0 - a) - (s.powf(1.0 - a) - 1.0) / (1.0 - a));
        let m = self.mean();
        (m2 - m * m).max(0.0)
    }

    fn int_ccdf(&self, t: f64) -> f64 {
        if t >= self.cutoff {
            return 0.0;
        }
        if t < 0.0 {
            return -t + self.int_ccdf(0.0);
        }
        // ∫_t^{T_c} ((u+θ)/θ)^{-α} du
        //   = θ/(α−1) [ ((t+θ)/θ)^{1-α} − ((T_c+θ)/θ)^{1-α} ].
        let e = 1.0 - self.alpha;
        let head = ((t + self.theta) / self.theta).powf(e);
        let tail = if self.cutoff.is_finite() {
            ((self.cutoff + self.theta) / self.theta).powf(e)
        } else {
            0.0
        };
        self.theta / (self.alpha - 1.0) * (head - tail)
    }

    fn sup(&self) -> f64 {
        self.cutoff
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Inverse transform for the untruncated Pareto, clamped to the
        // cutoff; the clamp accumulates exactly the atom mass at T_c.
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let t = self.theta * (u.powf(-1.0 / self.alpha) - 1.0);
        t.min(self.cutoff)
    }
}

/// Exponential interval lengths: the memoryless (Markovian) baseline.
///
/// Feeding the same marginal through exponentially distributed
/// intervals produces a short-range-dependent modulated fluid whose
/// autocovariance decays as `e^{-t/mean}`; the paper's Sec. IV argues
/// any such model predicts loss accurately as long as its correlation
/// matches the LRD model up to the correlation horizon.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    mean: f64,
}

impl Exponential {
    /// Creates an exponential distribution with the given mean.
    ///
    /// # Panics
    ///
    /// Panics unless `mean` is positive and finite. Use
    /// [`Exponential::try_new`] for a fallible variant.
    pub fn new(mean: f64) -> Self {
        Exponential::try_new(mean).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible constructor: returns a typed [`ModelError`] instead of
    /// panicking on invalid parameters.
    pub fn try_new(mean: f64) -> Result<Self, ModelError> {
        require_finite("mean", mean)?;
        if mean <= 0.0 {
            return Err(ModelError::ParamOutOfDomain {
                param: "mean",
                value: mean,
                constraint: "must be positive and finite",
            });
        }
        Ok(Exponential { mean })
    }
}

impl Interarrival for Exponential {
    fn ccdf(&self, t: f64) -> f64 {
        if t < 0.0 {
            1.0
        } else {
            (-t / self.mean).exp()
        }
    }

    fn prob_ge(&self, t: f64) -> f64 {
        self.ccdf(t)
    }

    fn mean(&self) -> f64 {
        self.mean
    }

    fn variance(&self) -> f64 {
        self.mean * self.mean
    }

    fn int_ccdf(&self, t: f64) -> f64 {
        if t < 0.0 {
            -t + self.mean
        } else {
            self.mean * (-t / self.mean).exp()
        }
    }

    fn sup(&self) -> f64 {
        f64::INFINITY
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        -self.mean * u.ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interarrival::check_distribution_invariants;
    use lrd_rng::SeedableRng;

    fn probes() -> Vec<f64> {
        vec![0.0, 0.001, 0.01, 0.1, 0.5, 1.0, 5.0, 10.0, 100.0, 1e4]
    }

    #[test]
    fn pareto_invariants_finite_cutoff() {
        let d = TruncatedPareto::new(0.02, 1.4, 10.0);
        check_distribution_invariants(&d, &probes());
    }

    #[test]
    fn pareto_invariants_infinite_cutoff() {
        let d = TruncatedPareto::new(0.02, 1.4, f64::INFINITY);
        check_distribution_invariants(&d, &probes());
    }

    #[test]
    fn exponential_invariants() {
        let d = Exponential::new(0.08);
        check_distribution_invariants(&d, &probes());
    }

    #[test]
    fn pareto_mean_matches_eq25() {
        // Untruncated: E[T] = θ/(α−1).
        let d = TruncatedPareto::new(0.06, 1.5, f64::INFINITY);
        assert!((d.mean() - 0.12).abs() < 1e-12);
        // Finite cutoff lowers the mean.
        let df = d.with_cutoff(1.0);
        assert!(df.mean() < d.mean());
        // Numerical quadrature cross-check of E[T] = ∫ ccdf.
        let n = 2_000_000;
        let h = 1.0 / n as f64;
        let mut s = 0.0;
        for i in 0..n {
            s += df.ccdf((i as f64 + 0.5) * h) * h;
        }
        assert!(
            (s - df.mean()).abs() < 1e-6,
            "quadrature {s} vs closed form {}",
            df.mean()
        );
    }

    #[test]
    fn pareto_atom_mass() {
        let d = TruncatedPareto::new(0.05, 1.6, 2.0);
        let atom = d.atom_mass();
        assert!(atom > 0.0);
        // prob_ge at the cutoff equals the atom; ccdf is already 0.
        assert!((d.prob_ge(2.0) - atom).abs() < 1e-15);
        assert_eq!(d.ccdf(2.0), 0.0);
        assert_eq!(TruncatedPareto::new(0.05, 1.6, f64::INFINITY).atom_mass(), 0.0);
    }

    #[test]
    fn pareto_variance_quadrature() {
        let d = TruncatedPareto::new(0.04, 1.3, 5.0);
        // E[T²] by quadrature of 2 t Pr{T ≥ t}.
        let n = 2_000_000;
        let h = 5.0 / n as f64;
        let mut m2 = 0.0;
        for i in 0..n {
            let t = (i as f64 + 0.5) * h;
            m2 += 2.0 * t * d.prob_ge(t) * h;
        }
        let want = m2 - d.mean() * d.mean();
        assert!(
            ((d.variance() - want) / want).abs() < 1e-4,
            "variance {} vs quadrature {}",
            d.variance(),
            want
        );
    }

    #[test]
    fn pareto_infinite_cutoff_variance_diverges() {
        let d = TruncatedPareto::new(0.04, 1.3, f64::INFINITY);
        assert!(d.variance().is_infinite());
    }

    #[test]
    fn hurst_round_trip() {
        let d = TruncatedPareto::from_hurst(0.83, 0.02, f64::INFINITY);
        assert!((d.hurst() - 0.83).abs() < 1e-12);
        assert!((d.alpha() - 1.34).abs() < 1e-12);
    }

    #[test]
    fn residual_ccdf_endpoints() {
        let d = TruncatedPareto::new(0.02, 1.4, 3.0);
        assert_eq!(d.residual_ccdf(0.0), 1.0);
        assert_eq!(d.residual_ccdf(3.0), 0.0);
        assert_eq!(d.residual_ccdf(10.0), 0.0);
        let mid = d.residual_ccdf(1.0);
        assert!(mid > 0.0 && mid < 1.0);
    }

    #[test]
    fn residual_ccdf_matches_integral_of_ccdf() {
        // Pr{τ_res >= t} = ∫_t^∞ ccdf / E[T] (Eq. 5).
        let d = TruncatedPareto::new(0.03, 1.5, 4.0);
        for &t in &[0.1, 0.5, 1.0, 2.0, 3.9] {
            let want = d.int_ccdf(t) / d.mean();
            let got = d.residual_ccdf(t);
            assert!(
                (want - got).abs() < 1e-12,
                "residual mismatch at {t}: {got} vs {want}"
            );
        }
    }

    #[test]
    fn calibrate_theta_infinite() {
        let theta = TruncatedPareto::calibrate_theta(0.08, 1.34);
        let d = TruncatedPareto::new(theta, 1.34, f64::INFINITY);
        assert!((d.mean() - 0.08).abs() < 1e-12);
    }

    #[test]
    fn calibrate_theta_finite() {
        let theta = TruncatedPareto::calibrate_theta_finite(0.08, 1.34, 1.0);
        let d = TruncatedPareto::new(theta, 1.34, 1.0);
        assert!(
            (d.mean() - 0.08).abs() < 1e-9,
            "calibrated mean {}",
            d.mean()
        );
        // With a finite cutoff more θ is needed than the infinite-case
        // closed form.
        assert!(theta > TruncatedPareto::calibrate_theta(0.08, 1.34));
    }

    #[test]
    #[should_panic(expected = "below the cutoff")]
    fn calibrate_theta_impossible() {
        TruncatedPareto::calibrate_theta_finite(2.0, 1.5, 1.0);
    }

    #[test]
    fn pareto_sampling_matches_ccdf() {
        let d = TruncatedPareto::new(0.05, 1.5, 1.0);
        let mut rng = lrd_rng::rngs::SmallRng::seed_from_u64(7);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        assert!(samples.iter().all(|&t| t > 0.0 && t <= 1.0));
        // Empirical ccdf at a few probe points.
        for &t in &[0.01, 0.05, 0.2, 0.5, 0.99] {
            let emp = samples.iter().filter(|&&s| s > t).count() as f64 / n as f64;
            let want = d.ccdf(t);
            assert!(
                (emp - want).abs() < 0.01,
                "ccdf mismatch at {t}: emp {emp} vs {want}"
            );
        }
        // Atom at the cutoff.
        let at_cut = samples.iter().filter(|&&s| s == 1.0).count() as f64 / n as f64;
        assert!(
            (at_cut - d.atom_mass()).abs() < 0.01,
            "atom mass: emp {at_cut} vs {}",
            d.atom_mass()
        );
        // Sample mean.
        let m = samples.iter().sum::<f64>() / n as f64;
        assert!((m - d.mean()).abs() / d.mean() < 0.05);
    }

    #[test]
    fn exponential_sampling_matches_mean() {
        let d = Exponential::new(0.25);
        let mut rng = lrd_rng::rngs::SmallRng::seed_from_u64(9);
        let n = 200_000;
        let m = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((m - 0.25).abs() < 0.005);
    }

    #[test]
    #[should_panic(expected = "alpha must lie in (1, 2)")]
    fn alpha_out_of_range() {
        TruncatedPareto::new(1.0, 2.5, 1.0);
    }

    #[test]
    #[should_panic(expected = "theta must be positive")]
    fn theta_out_of_range() {
        TruncatedPareto::new(0.0, 1.5, 1.0);
    }
}
