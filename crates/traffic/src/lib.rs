//! Traffic models for the Grossglauser–Bolot study.
//!
//! The centerpiece is the **cutoff-correlated modulated fluid model**
//! of Sec. II of the paper: a piecewise-constant rate process whose
//! rate is redrawn i.i.d. from a finite marginal distribution
//! ([`Marginal`]) at the epochs of a renewal process with
//! **truncated-Pareto** interarrival times ([`TruncatedPareto`]). Its
//! autocovariance matches an asymptotically second-order self-similar
//! process with Hurst parameter `H = (3 − α)/2` up to the cutoff lag
//! `T_c`, and is exactly zero beyond it (Eq. 8).
//!
//! Around that model the crate provides everything the paper's
//! experiments need:
//!
//! * [`fgn`] — exact fractional Gaussian noise generators
//!   (Davies–Harte circulant embedding and the Hosking recursion),
//! * [`synth`] — deterministic synthetic stand-ins for the paper's two
//!   proprietary traces (MTV JPEG video and Bellcore Ethernet),
//! * [`Trace`] — binned rate traces with marginal extraction and epoch
//!   (same-bin run) analysis,
//! * [`shuffle`] — the external/internal block shuffling of Fig. 6,
//! * [`onoff`] — heavy-tailed on/off sources whose superposition is the
//!   physical explanation the paper gives for LRD in network traffic,
//! * [`mginf`] — the M/G/∞ busy-server model (Poisson sessions with
//!   heavy-tailed durations), the paper's cited alternative generator,
//! * an [`Exponential`] interarrival alternative, giving the Markovian
//!   (SRD) baseline the paper argues is equivalent below the
//!   correlation horizon.

#![warn(missing_docs)]

pub mod covariance;
pub mod error;
pub mod fgn;
pub mod interarrival;
pub mod marginal;
pub mod markov;
pub mod mginf;
pub mod model;
pub mod onoff;
pub mod pareto;
pub mod shuffle;
pub mod source;
pub mod synth;
pub mod trace;
pub mod video;

pub use covariance::{autocovariance_at, hurst_from_alpha, alpha_from_hurst};
pub use error::ModelError;
pub use interarrival::Interarrival;
pub use marginal::Marginal;
pub use markov::{fit_to_pareto, HyperExponential};
pub use model::{TrafficModel, TrafficStream};
pub use onoff::OnOffSource;
pub use pareto::{Exponential, TruncatedPareto};
pub use source::{FluidSource, Segment};
pub use trace::Trace;
