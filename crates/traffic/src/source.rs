//! The modulated fluid source itself: sample-path generation.
//!
//! A [`FluidSource`] pairs a [`Marginal`] with an [`Interarrival`]
//! distribution. Sample paths are sequences of `(duration, rate)`
//! segments — the rate is redrawn independently at every renewal epoch
//! (paper Sec. II). Monte-Carlo validation of the numerical solver and
//! the model-driven simulator both consume these paths.

use crate::error::ModelError;
use crate::interarrival::Interarrival;
use crate::marginal::Marginal;
use crate::trace::Trace;
use lrd_rng::Rng;

/// One piecewise-constant segment of a fluid sample path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// Length of the interval in seconds (a draw of `T_n`).
    pub duration: f64,
    /// The constant fluid rate `λ(n)` over the interval.
    pub rate: f64,
}

/// The modulated fluid traffic source of paper Sec. II.
#[derive(Debug, Clone)]
pub struct FluidSource<D> {
    marginal: Marginal,
    intervals: D,
}

impl<D: Interarrival> FluidSource<D> {
    /// Creates a source from a marginal rate distribution and an
    /// interval-length distribution.
    ///
    /// # Panics
    ///
    /// Panics if the interval distribution reports a non-positive or
    /// non-finite mean (a renewal process needs `0 < E[T] < ∞`). Use
    /// [`FluidSource::try_new`] for a fallible variant.
    pub fn new(marginal: Marginal, intervals: D) -> Self {
        FluidSource::try_new(marginal, intervals).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible constructor: returns a typed [`ModelError`] instead of
    /// panicking when the interval distribution is degenerate.
    pub fn try_new(marginal: Marginal, intervals: D) -> Result<Self, ModelError> {
        let mean = intervals.mean();
        if !mean.is_finite() {
            return Err(ModelError::NonFiniteInput {
                param: "mean interval duration",
                value: mean,
            });
        }
        if mean <= 0.0 {
            return Err(ModelError::ParamOutOfDomain {
                param: "mean interval duration",
                value: mean,
                constraint: "must be positive",
            });
        }
        Ok(FluidSource {
            marginal,
            intervals,
        })
    }

    /// The marginal rate distribution `(Π, Λ)`.
    pub fn marginal(&self) -> &Marginal {
        &self.marginal
    }

    /// The interval-length distribution.
    pub fn intervals(&self) -> &D {
        &self.intervals
    }

    /// Mean rate of the source (equals the marginal mean: intervals and
    /// rates are independent).
    pub fn mean_rate(&self) -> f64 {
        self.marginal.mean()
    }

    /// Draws one `(T_n, λ(n))` segment.
    pub fn sample_segment<R: Rng + ?Sized>(&self, rng: &mut R) -> Segment {
        Segment {
            duration: self.intervals.sample(rng),
            rate: self.marginal.sample(rng),
        }
    }

    /// Generates segments until their total duration reaches
    /// `duration` seconds; the last segment is clipped so the path
    /// length is exact.
    pub fn sample_path<R: Rng + ?Sized>(&self, rng: &mut R, duration: f64) -> Vec<Segment> {
        assert!(duration > 0.0, "path duration must be positive");
        let mut out = Vec::new();
        let mut elapsed = 0.0;
        while elapsed < duration {
            let mut seg = self.sample_segment(rng);
            if elapsed + seg.duration > duration {
                seg.duration = duration - elapsed;
            }
            elapsed += seg.duration;
            if seg.duration > 0.0 {
                out.push(seg);
            }
        }
        out
    }

    /// Generates a binned [`Trace`] of `samples` samples at interval
    /// `dt`, integrating the piecewise-constant path so each trace
    /// sample is the true average rate over its bin.
    pub fn sample_trace<R: Rng + ?Sized>(&self, rng: &mut R, dt: f64, samples: usize) -> Trace {
        assert!(
            dt > 0.0 && dt.is_finite(),
            "sampling interval must be positive and finite, got {dt}"
        );
        assert!(samples > 0, "trace must be non-empty: need samples > 0");
        let mut rates = vec![0.0f64; samples];
        let total = dt * samples as f64;
        let mut t = 0.0;
        while t < total {
            let seg = self.sample_segment(rng);
            let end = (t + seg.duration).min(total);
            // Spread seg.rate over the bins it overlaps, iterating bins
            // by integer index (stepping a float cursor to computed bin
            // boundaries can stall on rounding).
            let first = (t / dt) as usize;
            let last = ((end / dt).ceil() as usize).min(samples);
            #[allow(clippy::needless_range_loop)]
            for bin in first..last {
                let lo = bin as f64 * dt;
                let hi = lo + dt;
                let overlap = (end.min(hi) - t.max(lo)).max(0.0);
                if overlap > 0.0 {
                    rates[bin] += seg.rate * overlap / dt;
                }
            }
            t = end;
        }
        Trace::new(dt, rates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pareto::{Exponential, TruncatedPareto};
    use lrd_rng::SeedableRng;

    fn source() -> FluidSource<TruncatedPareto> {
        FluidSource::new(
            Marginal::new(&[1.0, 5.0], &[0.5, 0.5]),
            TruncatedPareto::new(0.05, 1.5, 1.0),
        )
    }

    #[test]
    fn path_duration_is_exact() {
        let s = source();
        let mut rng = lrd_rng::rngs::SmallRng::seed_from_u64(1);
        let path = s.sample_path(&mut rng, 10.0);
        let total: f64 = path.iter().map(|seg| seg.duration).sum();
        assert!((total - 10.0).abs() < 1e-9);
        assert!(path.iter().all(|seg| seg.duration > 0.0));
    }

    #[test]
    fn path_rates_come_from_support() {
        let s = source();
        let mut rng = lrd_rng::rngs::SmallRng::seed_from_u64(2);
        let path = s.sample_path(&mut rng, 5.0);
        assert!(path.iter().all(|seg| seg.rate == 1.0 || seg.rate == 5.0));
    }

    #[test]
    fn long_run_mean_rate() {
        let s = source();
        let mut rng = lrd_rng::rngs::SmallRng::seed_from_u64(3);
        let path = s.sample_path(&mut rng, 2000.0);
        let work: f64 = path.iter().map(|seg| seg.duration * seg.rate).sum();
        let mean = work / 2000.0;
        assert!(
            (mean - s.mean_rate()).abs() < 0.1,
            "long-run mean {mean} vs {}",
            s.mean_rate()
        );
    }

    #[test]
    fn trace_preserves_work() {
        let s = source();
        let mut rng = lrd_rng::rngs::SmallRng::seed_from_u64(4);
        let trace = s.sample_trace(&mut rng, 0.01, 10_000);
        assert_eq!(trace.len(), 10_000);
        let mean = trace.mean_rate();
        assert!(
            (mean - s.mean_rate()).abs() < 0.2,
            "trace mean {mean} vs {}",
            s.mean_rate()
        );
    }

    #[test]
    fn trace_bins_average_within_support_hull() {
        let s = source();
        let mut rng = lrd_rng::rngs::SmallRng::seed_from_u64(5);
        let trace = s.sample_trace(&mut rng, 0.5, 100);
        for &r in trace.rates() {
            assert!((1.0..=5.0).contains(&r), "binned rate {r} outside hull");
        }
    }

    #[test]
    fn works_with_exponential_intervals() {
        let s = FluidSource::new(
            Marginal::new(&[0.0, 2.0], &[0.5, 0.5]),
            Exponential::new(0.1),
        );
        let mut rng = lrd_rng::rngs::SmallRng::seed_from_u64(6);
        let path = s.sample_path(&mut rng, 100.0);
        let work: f64 = path.iter().map(|seg| seg.duration * seg.rate).sum();
        assert!((work / 100.0 - 1.0).abs() < 0.15);
    }
}
