//! The finite marginal distribution `(Π, Λ)` of the fluid rate.
//!
//! Sec. III of the paper obtains `Π` and `Λ` "from a constant bin-size
//! histogram of the traces" with 50 bins, and studies two
//! transformations of the marginal (Figs. 10–13):
//!
//! * **scaling** — `λ'_i = λ̄ + a(λ_i − λ̄)` stretches the distribution
//!   about its mean by a factor `a` while keeping the mean fixed
//!   ([`Marginal::scaled`]);
//! * **superposition** — the `n`-fold convolution renormalized to the
//!   original mean models `n` multiplexed copies of the stream with
//!   per-stream service and buffer held constant
//!   ([`Marginal::superpose`]).

use crate::error::ModelError;
use lrd_stats::Histogram;
use lrd_rng::Rng;

/// A discrete fluid-rate distribution: rates `λ_1 < … < λ_M` with
/// probabilities `π_i` summing to one.
#[derive(Debug, Clone, PartialEq)]
pub struct Marginal {
    rates: Vec<f64>,
    probs: Vec<f64>,
}

impl Marginal {
    /// Creates a marginal from `(rate, probability)` support points.
    ///
    /// ```
    /// use lrd_traffic::Marginal;
    ///
    /// let m = Marginal::new(&[2.0, 14.0], &[0.5, 0.5]);
    /// assert_eq!(m.mean(), 8.0);
    /// // The paper's two transformations:
    /// let narrowed = m.scaled(0.5);          // same mean, half the σ
    /// assert_eq!(narrowed.mean(), 8.0);
    /// let muxed = m.superpose(4, 100);       // 4 multiplexed streams
    /// assert!(muxed.std_dev() < m.std_dev());
    /// ```
    ///
    /// Entries are sorted by rate; duplicate rates are merged;
    /// zero-probability entries are dropped; probabilities are
    /// renormalized to sum to exactly one.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length, are empty, contain
    /// non-finite rates, or contain negative probabilities summing to
    /// zero. Use [`Marginal::try_new`] for a fallible variant.
    pub fn new(rates: &[f64], probs: &[f64]) -> Self {
        Marginal::try_new(rates, probs).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible constructor: returns a typed [`ModelError`] instead of
    /// panicking on invalid support points.
    pub fn try_new(rates: &[f64], probs: &[f64]) -> Result<Self, ModelError> {
        if rates.len() != probs.len() {
            return Err(ModelError::LengthMismatch {
                what: "rates/probs",
                left: rates.len(),
                right: probs.len(),
            });
        }
        if rates.is_empty() {
            return Err(ModelError::EmptySupport {
                what: "marginal support",
            });
        }
        for (&r, &p) in rates.iter().zip(probs) {
            if !r.is_finite() {
                return Err(ModelError::NonFiniteInput {
                    param: "rate",
                    value: r,
                });
            }
            if !p.is_finite() {
                return Err(ModelError::NonFiniteInput {
                    param: "probability",
                    value: p,
                });
            }
            if p < 0.0 {
                return Err(ModelError::ParamOutOfDomain {
                    param: "probability",
                    value: p,
                    constraint: "must be in [0, ∞)",
                });
            }
        }
        let mut pairs: Vec<(f64, f64)> = rates
            .iter()
            .zip(probs)
            .map(|(&r, &p)| (r, p))
            .filter(|&(_, p)| p > 0.0)
            .collect();
        pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        // Merge duplicates.
        let mut merged: Vec<(f64, f64)> = Vec::with_capacity(pairs.len());
        for (r, p) in pairs {
            match merged.last_mut() {
                Some(last) if last.0 == r => last.1 += p,
                _ => merged.push((r, p)),
            }
        }
        let total: f64 = merged.iter().map(|&(_, p)| p).sum();
        if !(total > 0.0 && total.is_finite()) {
            return Err(ModelError::NonNormalized { total });
        }
        Ok(Marginal {
            rates: merged.iter().map(|&(r, _)| r).collect(),
            probs: merged.iter().map(|&(_, p)| p / total).collect(),
        })
    }

    /// A single deterministic rate.
    pub fn constant(rate: f64) -> Self {
        Marginal::new(&[rate], &[1.0])
    }

    /// The classical two-state on/off marginal: rate `peak` with
    /// probability `p_on`, rate `0` otherwise.
    pub fn on_off(peak: f64, p_on: f64) -> Self {
        assert!((0.0..=1.0).contains(&p_on), "p_on must be in [0, 1]");
        Marginal::new(&[0.0, peak], &[1.0 - p_on, p_on])
    }

    /// Extracts the marginal from a binned histogram: bin centers
    /// become the rates, normalized counts the probabilities (the
    /// paper's procedure with 50 bins).
    pub fn from_histogram(h: &Histogram) -> Self {
        Marginal::new(&h.bin_centers(), &h.probabilities())
    }

    /// The support rates, ascending.
    pub fn rates(&self) -> &[f64] {
        &self.rates
    }

    /// The probabilities, aligned with [`Marginal::rates`].
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// Number of support points (`M` in the paper).
    pub fn len(&self) -> usize {
        self.rates.len()
    }

    /// Whether the support is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.rates.is_empty()
    }

    /// Mean rate `λ̄ = Π Λ 1ᵀ` (paper Eq. 2).
    pub fn mean(&self) -> f64 {
        self.rates
            .iter()
            .zip(&self.probs)
            .map(|(&r, &p)| r * p)
            .sum()
    }

    /// Variance `σ² = Π Λ² 1ᵀ − (Π Λ 1ᵀ)²` (paper Eq. 4).
    pub fn variance(&self) -> f64 {
        let m = self.mean();
        let m2: f64 = self
            .rates
            .iter()
            .zip(&self.probs)
            .map(|(&r, &p)| r * r * p)
            .sum();
        (m2 - m * m).max(0.0)
    }

    /// Standard deviation `σ_λ`, as used in the correlation-horizon
    /// formula (paper Eq. 26).
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest support rate.
    pub fn min_rate(&self) -> f64 {
        self.rates[0]
    }

    /// Largest support rate.
    pub fn max_rate(&self) -> f64 {
        *self.rates.last().unwrap()
    }

    /// The service rate that loads this marginal to the target
    /// utilization: `c = λ̄ / ρ`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < utilization <= 1` and the mean rate is
    /// positive.
    pub fn service_rate_for_utilization(&self, utilization: f64) -> f64 {
        assert!(
            utilization > 0.0 && utilization <= 1.0,
            "utilization must be in (0, 1], got {utilization}"
        );
        let m = self.mean();
        assert!(m > 0.0, "mean rate must be positive to set a utilization");
        m / utilization
    }

    /// The paper's scaling transformation: replaces each rate with
    /// `λ̄ + factor (λ_i − λ̄)`, stretching the marginal about its mean.
    /// The mean is invariant; the standard deviation scales by
    /// `|factor|`.
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(factor.is_finite(), "scaling factor must be finite");
        let m = self.mean();
        let rates: Vec<f64> = self.rates.iter().map(|&r| m + factor * (r - m)).collect();
        Marginal::new(&rates, &self.probs)
    }

    /// The paper's multiplexing transformation: the distribution of
    /// `(X₁ + … + Xₙ)/n` for i.i.d. copies — `n` multiplexed streams
    /// with service rate and buffer *per stream* held constant. The
    /// mean is invariant; the variance drops by a factor `n`.
    ///
    /// The exact `n`-fold convolution support grows like `Mⁿ`, so after
    /// each convolution the distribution is re-binned onto `bins`
    /// equal-width bins using probability-weighted bin representatives,
    /// which preserves the mean exactly.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `bins < 2`.
    pub fn superpose(&self, n: usize, bins: usize) -> Self {
        assert!(n >= 1, "cannot superpose zero streams");
        assert!(bins >= 2, "need at least two bins");
        let mut acc = self.clone();
        for _ in 1..n {
            acc = acc.convolve(self).rebinned(bins);
        }
        let rates: Vec<f64> = acc.rates.iter().map(|&r| r / n as f64).collect();
        Marginal::new(&rates, &acc.probs)
    }

    /// Exact convolution: the distribution of the sum of independent
    /// draws from `self` and `other`. Support size is the product of
    /// the inputs' support sizes (duplicates merged).
    pub fn convolve(&self, other: &Marginal) -> Self {
        let mut rates = Vec::with_capacity(self.len() * other.len());
        let mut probs = Vec::with_capacity(self.len() * other.len());
        for (&r1, &p1) in self.rates.iter().zip(&self.probs) {
            for (&r2, &p2) in other.rates.iter().zip(&other.probs) {
                rates.push(r1 + r2);
                probs.push(p1 * p2);
            }
        }
        Marginal::new(&rates, &probs)
    }

    /// Re-bins the support onto at most `bins` equal-width bins over
    /// `[min_rate, max_rate]`. Each occupied bin is represented by its
    /// probability-weighted mean rate, so the distribution mean is
    /// preserved exactly; higher moments are approximated.
    pub fn rebinned(&self, bins: usize) -> Self {
        assert!(bins >= 1, "need at least one bin");
        if self.len() <= bins {
            return self.clone();
        }
        let lo = self.min_rate();
        let hi = self.max_rate();
        let width = (hi - lo) / bins as f64;
        let mut mass = vec![0.0f64; bins];
        let mut weighted = vec![0.0f64; bins];
        for (&r, &p) in self.rates.iter().zip(&self.probs) {
            let idx = (((r - lo) / width) as usize).min(bins - 1);
            mass[idx] += p;
            weighted[idx] += p * r;
        }
        let mut rates = Vec::new();
        let mut probs = Vec::new();
        for i in 0..bins {
            if mass[i] > 0.0 {
                rates.push(weighted[i] / mass[i]);
                probs.push(mass[i]);
            }
        }
        Marginal::new(&rates, &probs)
    }

    /// CDF `Pr{λ <= x}`.
    pub fn cdf(&self, x: f64) -> f64 {
        self.rates
            .iter()
            .zip(&self.probs)
            .take_while(|&(&r, _)| r <= x)
            .map(|(_, &p)| p)
            .sum()
    }

    /// Generalized inverse CDF: the smallest rate whose CDF reaches `u`.
    pub fn quantile(&self, u: f64) -> f64 {
        assert!((0.0..=1.0).contains(&u), "u must be in [0, 1], got {u}");
        let mut acc = 0.0;
        for (&r, &p) in self.rates.iter().zip(&self.probs) {
            acc += p;
            if acc >= u {
                return r;
            }
        }
        self.max_rate()
    }

    /// Draws a rate.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.quantile(rng.gen::<f64>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrd_rng::SeedableRng;

    fn mtvish() -> Marginal {
        Marginal::new(&[2.0, 6.0, 10.0, 14.0], &[0.1, 0.4, 0.4, 0.1])
    }

    #[test]
    fn construction_sorts_and_normalizes() {
        let m = Marginal::new(&[3.0, 1.0, 2.0], &[2.0, 1.0, 1.0]);
        assert_eq!(m.rates(), &[1.0, 2.0, 3.0]);
        assert_eq!(m.probs(), &[0.25, 0.25, 0.5]);
    }

    #[test]
    fn duplicates_merged_and_zeros_dropped() {
        let m = Marginal::new(&[1.0, 1.0, 2.0, 3.0], &[0.25, 0.25, 0.5, 0.0]);
        assert_eq!(m.rates(), &[1.0, 2.0]);
        assert_eq!(m.probs(), &[0.5, 0.5]);
    }

    #[test]
    fn mean_and_variance() {
        let m = mtvish();
        assert!((m.mean() - 8.0).abs() < 1e-12);
        // E[λ²] = 0.1·4 + 0.4·36 + 0.4·100 + 0.1·196 = 74.4 → var 10.4
        assert!((m.variance() - 10.4).abs() < 1e-12);
    }

    #[test]
    fn scaling_preserves_mean_scales_sigma() {
        let m = mtvish();
        for &a in &[0.5, 1.0, 1.5, 2.0] {
            let s = m.scaled(a);
            assert!((s.mean() - m.mean()).abs() < 1e-12, "mean at a={a}");
            assert!(
                (s.std_dev() - a * m.std_dev()).abs() < 1e-12,
                "sigma at a={a}"
            );
        }
    }

    #[test]
    fn scaling_to_zero_collapses() {
        let s = mtvish().scaled(0.0);
        assert_eq!(s.len(), 1);
        assert!((s.mean() - 8.0).abs() < 1e-12);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn superpose_preserves_mean_divides_variance() {
        let m = mtvish();
        for n in [1usize, 2, 5, 10] {
            let s = m.superpose(n, 200);
            assert!(
                (s.mean() - m.mean()).abs() < 1e-9,
                "mean for n={n}: {}",
                s.mean()
            );
            let want_var = m.variance() / n as f64;
            assert!(
                ((s.variance() - want_var) / want_var).abs() < 0.05,
                "variance for n={n}: {} vs {}",
                s.variance(),
                want_var
            );
        }
    }

    #[test]
    fn convolution_of_two_point_masses() {
        let a = Marginal::constant(2.0);
        let b = Marginal::constant(3.0);
        let c = a.convolve(&b);
        assert_eq!(c.rates(), &[5.0]);
        assert_eq!(c.probs(), &[1.0]);
    }

    #[test]
    fn convolution_mean_adds() {
        let a = mtvish();
        let b = Marginal::new(&[0.0, 1.0], &[0.5, 0.5]);
        let c = a.convolve(&b);
        assert!((c.mean() - (a.mean() + b.mean())).abs() < 1e-12);
        let total: f64 = c.probs().iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rebinning_preserves_mean() {
        let m = mtvish().convolve(&mtvish()).convolve(&mtvish());
        let r = m.rebinned(10);
        assert!(r.len() <= 10);
        assert!((r.mean() - m.mean()).abs() < 1e-12);
    }

    #[test]
    fn utilization_service_rate() {
        let m = mtvish();
        assert!((m.service_rate_for_utilization(0.8) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn cdf_and_quantile_consistency() {
        let m = mtvish();
        assert_eq!(m.quantile(0.05), 2.0);
        assert_eq!(m.quantile(0.1), 2.0);
        assert_eq!(m.quantile(0.11), 6.0);
        assert_eq!(m.quantile(1.0), 14.0);
        assert!((m.cdf(6.0) - 0.5).abs() < 1e-12);
        assert_eq!(m.cdf(1.0), 0.0);
        assert_eq!(m.cdf(100.0), 1.0);
    }

    #[test]
    fn sampling_matches_probabilities() {
        let m = mtvish();
        let mut rng = lrd_rng::rngs::SmallRng::seed_from_u64(3);
        let n = 100_000;
        let mut counts = std::collections::HashMap::new();
        for _ in 0..n {
            *counts.entry(m.sample(&mut rng) as i64).or_insert(0usize) += 1;
        }
        for (r, p) in m.rates().iter().zip(m.probs()) {
            let emp = counts[&(*r as i64)] as f64 / n as f64;
            assert!((emp - p).abs() < 0.01, "rate {r}: emp {emp} vs {p}");
        }
    }

    #[test]
    fn on_off_marginal() {
        let m = Marginal::on_off(10.0, 0.3);
        assert!((m.mean() - 3.0).abs() < 1e-12);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn from_histogram_roundtrip() {
        let data: Vec<f64> = (0..10_000).map(|i| (i % 50) as f64).collect();
        let h = Histogram::from_data(&data, 50);
        let m = Marginal::from_histogram(&h);
        assert_eq!(m.len(), 50);
        assert!((m.mean() - h.binned_mean()).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths() {
        Marginal::new(&[1.0], &[0.5, 0.5]);
    }

    #[test]
    #[should_panic(expected = "utilization")]
    fn bad_utilization() {
        mtvish().service_rate_for_utilization(1.5);
    }
}
