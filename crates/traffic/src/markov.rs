//! Multi-time-scale Markovian interval model: hyperexponential
//! interarrivals fitted to the truncated-Pareto correlation.
//!
//! Sec. IV of the paper argues that, because only correlation up to
//! the correlation horizon matters, "Markov models could have been
//! another possible choice since they can capture correlations up to a
//! given value CH", noting that "a power law decay can be approximated
//! arbitrarily closely by enough exponential decay functions" (its
//! ref. [24]) and that multi-state models with one state per time
//! scale tame the parameter explosion (ref. [30], Robert &
//! Le Boudec).
//!
//! [`HyperExponential`] is exactly that model: a probabilistic mixture
//! of exponentials, one per time scale. Because the modulated fluid
//! construction only sees the interval distribution through the
//! [`Interarrival`] trait, the *same* loss solver runs on it
//! unchanged — the paper's "the numerical procedure developed in
//! Section II can be used independent of the particular model".
//!
//! [`fit_to_pareto`] builds the mixture on a geometric ladder of time
//! scales and matches the truncated-Pareto interval *ccdf* on a log
//! grid by non-negative least squares (projected Landweber
//! iterations), which in turn matches the fluid autocovariance (the
//! residual-life transform of the ccdf, Eq. 5) over the fitted range.

use crate::interarrival::Interarrival;
use crate::pareto::TruncatedPareto;
use lrd_rng::Rng;

/// A mixture of exponential interval lengths: with probability `w_i`
/// the interval is `Exp(rate_i)`.
#[derive(Debug, Clone, PartialEq)]
pub struct HyperExponential {
    /// Mixture weights, summing to one.
    weights: Vec<f64>,
    /// Exponential rates (1/mean) per branch, ascending time scale.
    rates: Vec<f64>,
}

impl HyperExponential {
    /// Creates a mixture from `(weight, mean)` pairs.
    ///
    /// Weights are renormalized; zero-weight branches are dropped.
    ///
    /// # Panics
    ///
    /// Panics if no branch has positive weight, or any mean is not
    /// positive and finite.
    pub fn new(branches: &[(f64, f64)]) -> Self {
        assert!(!branches.is_empty(), "need at least one branch");
        let mut weights = Vec::new();
        let mut rates = Vec::new();
        for &(w, mean) in branches {
            assert!(w >= 0.0 && w.is_finite(), "weight must be non-negative");
            assert!(
                mean > 0.0 && mean.is_finite(),
                "branch mean must be positive and finite"
            );
            if w > 0.0 {
                weights.push(w);
                rates.push(1.0 / mean);
            }
        }
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "total weight must be positive");
        for w in &mut weights {
            *w /= total;
        }
        HyperExponential { weights, rates }
    }

    /// Number of exponential branches (Markov states).
    pub fn branches(&self) -> usize {
        self.weights.len()
    }

    /// The `(weight, mean)` pairs of the mixture.
    pub fn components(&self) -> Vec<(f64, f64)> {
        self.weights
            .iter()
            .zip(&self.rates)
            .map(|(&w, &r)| (w, 1.0 / r))
            .collect()
    }
}

impl Interarrival for HyperExponential {
    fn ccdf(&self, t: f64) -> f64 {
        if t < 0.0 {
            return 1.0;
        }
        let v: f64 = self
            .weights
            .iter()
            .zip(&self.rates)
            .map(|(&w, &r)| w * (-r * t).exp())
            .sum();
        // Guard against the summed weights exceeding 1 by an ulp.
        v.min(1.0)
    }

    fn prob_ge(&self, t: f64) -> f64 {
        self.ccdf(t)
    }

    fn mean(&self) -> f64 {
        self.weights
            .iter()
            .zip(&self.rates)
            .map(|(&w, &r)| w / r)
            .sum()
    }

    fn variance(&self) -> f64 {
        let m = self.mean();
        let m2: f64 = self
            .weights
            .iter()
            .zip(&self.rates)
            .map(|(&w, &r)| 2.0 * w / (r * r))
            .sum();
        (m2 - m * m).max(0.0)
    }

    fn int_ccdf(&self, t: f64) -> f64 {
        if t < 0.0 {
            return -t + self.int_ccdf(0.0);
        }
        self.weights
            .iter()
            .zip(&self.rates)
            .map(|(&w, &r)| w / r * (-r * t).exp())
            .sum()
    }

    fn sup(&self) -> f64 {
        f64::INFINITY
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen();
        let mut acc = 0.0;
        let mut idx = self.weights.len() - 1;
        for (i, &w) in self.weights.iter().enumerate() {
            acc += w;
            if u < acc {
                idx = i;
                break;
            }
        }
        let v: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        -v.ln() / self.rates[idx]
    }
}

/// Fits a hyperexponential to a truncated Pareto so the interval ccdfs
/// (and hence the fluid autocovariances, via Eq. 5) agree up to
/// `horizon` seconds.
///
/// `states` exponential branches are placed on a geometric ladder of
/// time scales spanning `[θ/2, horizon]` — the "one state per time
/// scale" construction of the paper's ref. [30]. Weights are obtained
/// by minimizing the squared ccdf error on a logarithmic grid under
/// non-negativity (projected gradient iterations), then the mixture is
/// rescaled so its mean matches the Pareto's exactly.
///
/// # Panics
///
/// Panics if `states < 2` or `horizon` is not positive and finite.
pub fn fit_to_pareto(pareto: &TruncatedPareto, horizon: f64, states: usize) -> HyperExponential {
    assert!(states >= 2, "need at least two states");
    assert!(
        horizon > 0.0 && horizon.is_finite(),
        "horizon must be positive and finite"
    );
    // Time-scale ladder: geometric from θ/2 to the horizon.
    let lo = pareto.theta() / 2.0;
    let hi = horizon.max(lo * 4.0);
    let means: Vec<f64> = (0..states)
        .map(|i| lo * (hi / lo).powf(i as f64 / (states - 1) as f64))
        .collect();

    // Fit grid: logarithmic in t over [lo/4, horizon].
    let grid_n = 24 * states;
    let t0 = lo / 4.0;
    let grid: Vec<f64> = (0..grid_n)
        .map(|i| t0 * (hi / t0).powf(i as f64 / (grid_n - 1) as f64))
        .collect();
    let target: Vec<f64> = grid.iter().map(|&t| pareto.ccdf(t)).collect();

    // Design matrix A[t][j] = exp(-t/means[j]).
    let a: Vec<Vec<f64>> = grid
        .iter()
        .map(|&t| means.iter().map(|&m| (-t / m).exp()).collect())
        .collect();

    // Non-negative least squares by Lee–Seung multiplicative updates:
    // w_j <- w_j · (Aᵀy)_j / (AᵀAw)_j. Non-negativity is preserved by
    // construction and the squared error is non-increasing; the final
    // weights are normalized so the mixture ccdf is 1 at the origin.
    let at_y: Vec<f64> = (0..states)
        .map(|j| a.iter().zip(&target).map(|(row, &y)| row[j] * y).sum())
        .collect();
    let mut w = vec![1.0 / states as f64; states];
    for _ in 0..5000 {
        // AᵀA w via two passes (A is tall and thin).
        let aw: Vec<f64> = a
            .iter()
            .map(|row| row.iter().zip(&w).map(|(&x, &wi)| x * wi).sum())
            .collect();
        let mut moved = 0.0f64;
        for j in 0..states {
            let denom: f64 = a.iter().zip(&aw).map(|(row, &v)| row[j] * v).sum();
            if denom > 0.0 {
                let next = w[j] * at_y[j] / denom;
                moved = moved.max((next - w[j]).abs());
                w[j] = next;
            }
        }
        if moved < 1e-12 {
            break;
        }
    }
    let total: f64 = w.iter().sum();
    assert!(total > 0.0, "fit collapsed to the zero mixture");
    for wi in &mut w {
        *wi /= total;
    }

    let mut mix = HyperExponential::new(
        &w.iter()
            .zip(&means)
            .map(|(&wi, &m)| (wi, m))
            .collect::<Vec<_>>(),
    );
    // Exact mean match: scale every branch mean by the mean ratio
    // (scaling time scales uniformly preserves the fitted shape to
    // first order).
    let ratio = pareto.mean() / mix.mean();
    mix = HyperExponential::new(
        &mix.components()
            .into_iter()
            .map(|(wi, m)| (wi, m * ratio))
            .collect::<Vec<_>>(),
    );
    mix
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interarrival::check_distribution_invariants;
    use lrd_rng::SeedableRng;

    fn mix() -> HyperExponential {
        HyperExponential::new(&[(0.6, 0.05), (0.3, 0.5), (0.1, 5.0)])
    }

    #[test]
    fn invariants_hold() {
        check_distribution_invariants(&mix(), &[0.0, 0.01, 0.1, 1.0, 10.0, 100.0]);
    }

    #[test]
    fn mean_and_variance() {
        let m = mix();
        let want_mean = 0.6 * 0.05 + 0.3 * 0.5 + 0.1 * 5.0;
        assert!((m.mean() - want_mean).abs() < 1e-12);
        // Mixtures of exponentials are hyper-dispersed: CoV >= 1.
        assert!(m.variance() >= m.mean() * m.mean());
    }

    #[test]
    fn single_branch_is_exponential() {
        let h = HyperExponential::new(&[(1.0, 0.25)]);
        let e = crate::pareto::Exponential::new(0.25);
        for &t in &[0.0, 0.1, 0.5, 2.0] {
            assert!((h.ccdf(t) - e.ccdf(t)).abs() < 1e-12);
            assert!((h.int_ccdf(t) - e.int_ccdf(t)).abs() < 1e-12);
        }
    }

    #[test]
    fn sampling_matches_distribution() {
        let m = mix();
        let mut rng = lrd_rng::rngs::SmallRng::seed_from_u64(5);
        let n = 300_000;
        let samples: Vec<f64> = (0..n).map(|_| m.sample(&mut rng)).collect();
        let emp_mean = samples.iter().sum::<f64>() / n as f64;
        assert!((emp_mean - m.mean()).abs() / m.mean() < 0.03);
        for &t in &[0.05, 0.5, 2.0] {
            let emp = samples.iter().filter(|&&s| s > t).count() as f64 / n as f64;
            assert!(
                (emp - m.ccdf(t)).abs() < 0.01,
                "ccdf mismatch at {t}: {emp} vs {}",
                m.ccdf(t)
            );
        }
    }

    #[test]
    fn fit_matches_pareto_ccdf_below_horizon() {
        let pareto = TruncatedPareto::new(0.02, 1.4, f64::INFINITY);
        let horizon = 2.0;
        let mix = fit_to_pareto(&pareto, horizon, 8);
        // Mean matched exactly.
        assert!((mix.mean() - pareto.mean()).abs() / pareto.mean() < 1e-9);
        // ccdf matched within a few percent (absolute) across the
        // fitted range.
        for i in 0..30 {
            let t = 0.01 * (horizon / 0.01f64).powf(i as f64 / 29.0);
            let err = (mix.ccdf(t) - pareto.ccdf(t)).abs();
            assert!(
                err < 0.05,
                "ccdf error {err:.3} at t={t:.3}: {} vs {}",
                mix.ccdf(t),
                pareto.ccdf(t)
            );
        }
    }

    #[test]
    fn more_states_fit_better() {
        let pareto = TruncatedPareto::new(0.02, 1.4, f64::INFINITY);
        let horizon = 2.0;
        let err_of = |states: usize| {
            let mix = fit_to_pareto(&pareto, horizon, states);
            let mut acc: f64 = 0.0;
            for i in 0..50 {
                let t = 0.005 * (horizon / 0.005f64).powf(i as f64 / 49.0);
                acc += (mix.ccdf(t) - pareto.ccdf(t)).powi(2);
            }
            acc
        };
        let coarse = err_of(3);
        let fine = err_of(10);
        assert!(
            fine < coarse,
            "10-state fit ({fine:.2e}) should beat 3-state fit ({coarse:.2e})"
        );
    }

    #[test]
    #[should_panic(expected = "at least two states")]
    fn fit_needs_states() {
        fit_to_pareto(&TruncatedPareto::new(0.02, 1.4, 1.0), 1.0, 1);
    }
}
