//! Block shuffling of traces (paper Fig. 6).
//!
//! **External shuffling** divides a trace into fixed-length blocks and
//! permutes the blocks uniformly at random, leaving each block's
//! interior untouched. This destroys all correlation at lags longer
//! than one block while preserving the marginal distribution exactly
//! and the short-lag correlation almost exactly — which is why the
//! paper uses it as the model-free counterpart of the truncated-Pareto
//! cutoff `T_c` (Figs. 7, 8, 14).
//!
//! **Internal shuffling** (Erramilli, Narayan & Willinger, the paper's
//! ref. [12]) is the dual operation: it permutes the samples *within*
//! each block, destroying correlation at lags shorter than a block
//! while preserving the long-lag structure. It is included as an
//! extension for ablation experiments.

use crate::trace::Trace;
use lrd_rng::seq::SliceRandom;
use lrd_rng::Rng;

/// Externally shuffles `trace` with blocks of `block_len` samples.
///
/// The trailing partial block (if any) participates in the permutation
/// as a shorter block, so the sample population — and hence the
/// marginal — is exactly preserved.
///
/// # Panics
///
/// Panics if `block_len == 0`.
pub fn external_shuffle<R: Rng + ?Sized>(trace: &Trace, block_len: usize, rng: &mut R) -> Trace {
    assert!(block_len > 0, "block length must be positive");
    let _span = lrd_obs::span!(
        "traffic.external_shuffle",
        block_len = block_len,
        len = trace.len(),
    );
    let rates = trace.rates();
    let mut blocks: Vec<&[f64]> = rates.chunks(block_len).collect();
    blocks.shuffle(rng);
    let mut out = Vec::with_capacity(rates.len());
    for b in blocks {
        out.extend_from_slice(b);
    }
    Trace::new(trace.dt(), out)
}

/// Externally shuffles with the block length given in **seconds**; the
/// block length in samples is rounded to at least one sample.
pub fn external_shuffle_seconds<R: Rng + ?Sized>(
    trace: &Trace,
    block_seconds: f64,
    rng: &mut R,
) -> Trace {
    assert!(block_seconds > 0.0, "block duration must be positive");
    let samples = ((block_seconds / trace.dt()).round() as usize).max(1);
    external_shuffle(trace, samples, rng)
}

/// Internally shuffles `trace`: permutes samples within each
/// `block_len`-sample block, preserving correlation beyond the block
/// length and destroying it below.
pub fn internal_shuffle<R: Rng + ?Sized>(trace: &Trace, block_len: usize, rng: &mut R) -> Trace {
    assert!(block_len > 0, "block length must be positive");
    let _span = lrd_obs::span!(
        "traffic.internal_shuffle",
        block_len = block_len,
        len = trace.len(),
    );
    let mut rates = trace.rates().to_vec();
    for chunk in rates.chunks_mut(block_len) {
        chunk.shuffle(rng);
    }
    Trace::new(trace.dt(), rates)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrd_rng::SeedableRng;

    fn ramp(n: usize) -> Trace {
        Trace::new(0.01, (0..n).map(|i| i as f64).collect())
    }

    #[test]
    fn external_preserves_population() {
        let t = ramp(1000);
        let mut rng = lrd_rng::rngs::SmallRng::seed_from_u64(1);
        let s = external_shuffle(&t, 32, &mut rng);
        let mut a = t.rates().to_vec();
        let mut b = s.rates().to_vec();
        a.sort_by(|x, y| x.partial_cmp(y).unwrap());
        b.sort_by(|x, y| x.partial_cmp(y).unwrap());
        assert_eq!(a, b, "shuffling must preserve the sample population");
    }

    #[test]
    fn external_preserves_block_interiors() {
        let t = ramp(100);
        let mut rng = lrd_rng::rngs::SmallRng::seed_from_u64(2);
        let s = external_shuffle(&t, 10, &mut rng);
        // Every full block of the output must be a contiguous run of
        // the input (ramps of step 1).
        for block in s.rates().chunks(10) {
            for w in block.windows(2) {
                assert!((w[1] - w[0] - 1.0).abs() < 1e-12, "block interior broken");
            }
        }
    }

    #[test]
    fn external_destroys_long_lag_correlation() {
        // A slow sinusoid has strong correlation at long lags; after
        // shuffling with small blocks the long-lag correlation should
        // collapse while short-lag correlation survives.
        let n = 1 << 14;
        let t = Trace::new(
            0.01,
            (0..n)
                .map(|i| 5.0 + (i as f64 * 2.0 * std::f64::consts::PI / 2048.0).sin())
                .collect(),
        );
        let mut rng = lrd_rng::rngs::SmallRng::seed_from_u64(3);
        let block = 64;
        let s = external_shuffle(&t, block, &mut rng);
        let rho_orig = lrd_stats::autocorrelation(t.rates(), 512);
        let rho_shuf = lrd_stats::autocorrelation(s.rates(), 512);
        // Long-lag (4 blocks): gone.
        assert!(rho_orig[256].abs() > 0.5);
        assert!(
            rho_shuf[256].abs() < 0.2,
            "long-lag correlation survived: {}",
            rho_shuf[256]
        );
        // Short-lag (fraction of a block): retained.
        assert!(rho_shuf[8] > 0.5 * rho_orig[8], "short-lag correlation destroyed");
    }

    #[test]
    fn internal_preserves_block_sums() {
        let t = ramp(100);
        let mut rng = lrd_rng::rngs::SmallRng::seed_from_u64(4);
        let s = internal_shuffle(&t, 10, &mut rng);
        for (a, b) in t.rates().chunks(10).zip(s.rates().chunks(10)) {
            let sa: f64 = a.iter().sum();
            let sb: f64 = b.iter().sum();
            assert!((sa - sb).abs() < 1e-9, "block sum changed");
        }
    }

    #[test]
    fn seconds_variant_rounds_to_samples() {
        let t = ramp(100);
        let mut rng = lrd_rng::rngs::SmallRng::seed_from_u64(5);
        // 0.095 s at dt = 0.01 -> 10-sample blocks.
        let s = external_shuffle_seconds(&t, 0.095, &mut rng);
        assert_eq!(s.len(), 100);
    }

    #[test]
    fn block_longer_than_trace_is_identity() {
        let t = ramp(50);
        let mut rng = lrd_rng::rngs::SmallRng::seed_from_u64(6);
        let s = external_shuffle(&t, 1000, &mut rng);
        assert_eq!(s.rates(), t.rates());
    }
}
