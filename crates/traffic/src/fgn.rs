//! Fractional Gaussian noise (fGn) generation.
//!
//! fGn is *the* canonical exactly self-similar Gaussian process; the
//! paper's synthetic stand-ins for its proprietary traces are built by
//! generating fGn with the published Hurst parameters and mapping it
//! through the target marginal (see [`crate::synth`]).
//!
//! Two generators are provided:
//!
//! * [`davies_harte`] — exact O(n log n) sampling via circulant
//!   embedding of the covariance matrix (the standard method for long
//!   traces; the embedding is known to be non-negative definite for
//!   fGn at any length),
//! * [`hosking`] — the exact O(n²) Durbin–Levinson recursion, used as
//!   an independent reference implementation in tests.

use lrd_fft::{Complex, Fft};
use lrd_rng::Rng;

/// Autocovariance of standard (unit-variance) fGn at integer lag `k`:
///
/// `γ(k) = ½ (|k+1|^{2H} − 2|k|^{2H} + |k−1|^{2H})`.
pub fn fgn_autocovariance(hurst: f64, k: usize) -> f64 {
    assert!(hurst > 0.0 && hurst < 1.0, "H must lie in (0, 1)");
    let h2 = 2.0 * hurst;
    let k = k as f64;
    0.5 * ((k + 1.0).powf(h2) - 2.0 * k.powf(h2) + (k - 1.0).abs().powf(h2))
}

/// Draws one standard normal variate (polar Box–Muller; the spare is
/// discarded for simplicity — generation cost is dominated by the FFT).
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.gen_range(-1.0..1.0);
        let v: f64 = rng.gen_range(-1.0..1.0);
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Exact fGn sampling by circulant embedding (Davies & Harte, 1987).
///
/// Returns `n` samples of zero-mean, unit-variance fGn with Hurst
/// parameter `hurst`.
///
/// # Panics
///
/// Panics if `n == 0` or `hurst ∉ (0, 1)`, or (theoretically
/// impossible for fGn) if the circulant embedding produces a
/// significantly negative eigenvalue.
pub fn davies_harte<R: Rng + ?Sized>(rng: &mut R, hurst: f64, n: usize) -> Vec<f64> {
    assert!(n > 0, "need at least one sample");
    assert!(hurst > 0.0 && hurst < 1.0, "H must lie in (0, 1)");
    let _span = lrd_obs::span!("traffic.davies_harte", hurst = hurst, n = n);
    if n == 1 {
        return vec![standard_normal(rng)];
    }
    // Embed the (n x n) Toeplitz covariance into a circulant of size
    // 2m with m = next power of two >= n, first row:
    //   [γ(0), γ(1), …, γ(m), γ(m−1), …, γ(1)].
    let m = n.next_power_of_two();
    let size = 2 * m;
    let mut row = Vec::with_capacity(size);
    for k in 0..=m {
        row.push(fgn_autocovariance(hurst, k));
    }
    for k in (1..m).rev() {
        row.push(fgn_autocovariance(hurst, k));
    }
    debug_assert_eq!(row.len(), size);

    // Eigenvalues of the circulant = FFT of its first row (real).
    let plan = Fft::new(size);
    let mut eig: Vec<Complex> = row.iter().map(|&x| Complex::new(x, 0.0)).collect();
    plan.forward(&mut eig);
    let mut lambda = Vec::with_capacity(size);
    for z in &eig {
        let v = z.re;
        // The embedding is provably nonnegative-definite for fGn;
        // tolerate tiny negative round-off only.
        assert!(
            v > -1e-8 * size as f64,
            "circulant embedding produced negative eigenvalue {v}"
        );
        lambda.push(v.max(0.0));
    }

    // Build the frequency-domain Gaussian vector with the required
    // Hermitian symmetry so the inverse transform is real.
    let mut freq = vec![Complex::ZERO; size];
    let scale = |l: f64| (l / (2.0 * size as f64)).sqrt();
    freq[0] = Complex::new(standard_normal(rng) * (lambda[0] / size as f64).sqrt(), 0.0);
    freq[m] = Complex::new(standard_normal(rng) * (lambda[m] / size as f64).sqrt(), 0.0);
    for k in 1..m {
        let a = standard_normal(rng);
        let b = standard_normal(rng);
        let s = scale(lambda[k]);
        freq[k] = Complex::new(a * s, b * s);
        freq[size - k] = freq[k].conj();
    }

    // X = FFT(freq); the real parts are the Gaussian sample with the
    // embedded covariance.
    plan.forward(&mut freq);
    freq.truncate(n);
    freq.into_iter().map(|z| z.re).collect()
}

/// Exact fGn sampling by the Hosking (Durbin–Levinson) recursion,
/// O(n²). Kept as the independent reference implementation.
pub fn hosking<R: Rng + ?Sized>(rng: &mut R, hurst: f64, n: usize) -> Vec<f64> {
    assert!(n > 0, "need at least one sample");
    assert!(hurst > 0.0 && hurst < 1.0, "H must lie in (0, 1)");
    let _span = lrd_obs::span!("traffic.hosking", hurst = hurst, n = n);
    let gamma: Vec<f64> = (0..n).map(|k| fgn_autocovariance(hurst, k)).collect();

    let mut out = Vec::with_capacity(n);
    let mut phi = vec![0.0f64; n];
    let mut phi_prev = vec![0.0f64; n];
    let mut v = gamma[0];
    out.push(standard_normal(rng) * v.sqrt());

    for t in 1..n {
        // Durbin–Levinson update of the partial regression
        // coefficients phi[0..t].
        let mut acc = gamma[t];
        for j in 0..t - 1 {
            acc -= phi_prev[j] * gamma[t - 1 - j];
        }
        let kappa = acc / v;
        phi[t - 1] = kappa;
        for j in 0..t - 1 {
            phi[j] = phi_prev[j] - kappa * phi_prev[t - 2 - j];
        }
        v *= 1.0 - kappa * kappa;

        let mut mean = 0.0;
        for j in 0..t {
            mean += phi[j] * out[t - 1 - j];
        }
        out.push(mean + standard_normal(rng) * v.max(0.0).sqrt());
        phi_prev[..t].copy_from_slice(&phi[..t]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrd_stats::{autocovariance, mean, variance};
    use lrd_rng::SeedableRng;

    #[test]
    fn autocovariance_lag0_is_one() {
        for &h in &[0.5, 0.7, 0.9] {
            assert!((fgn_autocovariance(h, 0) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn autocovariance_h_half_is_white() {
        // H = 1/2 is ordinary white noise: γ(k) = 0 for k >= 1.
        for k in 1..10 {
            assert!(fgn_autocovariance(0.5, k).abs() < 1e-12);
        }
    }

    #[test]
    fn autocovariance_positive_for_lrd() {
        // H > 1/2 gives positive, slowly decaying correlations.
        for k in 1..100 {
            assert!(fgn_autocovariance(0.8, k) > 0.0);
        }
        // Hyperbolic tail: γ(k) ~ H(2H−1) k^{2H−2}.
        let h = 0.8f64;
        let k = 10_000f64;
        let want = h * (2.0 * h - 1.0) * k.powf(2.0 * h - 2.0);
        let got = fgn_autocovariance(0.8, 10_000);
        assert!(
            ((got - want) / want).abs() < 1e-3,
            "tail {got} vs asymptotic {want}"
        );
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = lrd_rng::rngs::SmallRng::seed_from_u64(11);
        let x: Vec<f64> = (0..200_000).map(|_| standard_normal(&mut rng)).collect();
        assert!(mean(&x).abs() < 0.01);
        assert!((variance(&x) - 1.0).abs() < 0.02);
    }

    #[test]
    fn davies_harte_matches_theory() {
        let mut rng = lrd_rng::rngs::SmallRng::seed_from_u64(12);
        let h = 0.8;
        let n = 1 << 16;
        let x = davies_harte(&mut rng, h, n);
        assert_eq!(x.len(), n);
        // The sample mean of fGn converges as n^{H−1}: its standard
        // deviation is 65536^{-0.2} ≈ 0.11 here, so allow ~2σ.
        assert!(mean(&x).abs() < 0.25, "mean {}", mean(&x));
        assert!((variance(&x) - 1.0).abs() < 0.05, "var {}", variance(&x));
        let acov = autocovariance(&x, 20);
        for (k, &got) in acov.iter().enumerate().take(11).skip(1) {
            let want = fgn_autocovariance(h, k);
            assert!((got - want).abs() < 0.05, "lag {k}: {got} vs {want}");
        }
    }

    #[test]
    fn davies_harte_recovers_hurst() {
        let mut rng = lrd_rng::rngs::SmallRng::seed_from_u64(13);
        for &h in &[0.7, 0.83, 0.9] {
            let x = davies_harte(&mut rng, h, 1 << 16);
            let est = lrd_stats::wavelet_estimate(&x);
            assert!(
                (est.h - h).abs() < 0.05,
                "wavelet estimate {} for true H={h}",
                est.h
            );
            let est2 = lrd_stats::variance_time_estimate(&x);
            assert!(
                (est2.h - h).abs() < 0.1,
                "variance-time estimate {} for true H={h}",
                est2.h
            );
        }
    }

    #[test]
    fn hosking_matches_theory() {
        let mut rng = lrd_rng::rngs::SmallRng::seed_from_u64(14);
        let h = 0.75;
        let n = 4096;
        let x = hosking(&mut rng, h, n);
        assert_eq!(x.len(), n);
        assert!((variance(&x) - 1.0).abs() < 0.1, "var {}", variance(&x));
        let acov = autocovariance(&x, 5);
        for (k, &got) in acov.iter().enumerate().take(4).skip(1) {
            let want = fgn_autocovariance(h, k);
            assert!((got - want).abs() < 0.1, "lag {k}: {got} vs {want}");
        }
    }

    #[test]
    fn generators_agree_statistically() {
        // Same H, different algorithms: lag-1 autocorrelations agree.
        let mut rng = lrd_rng::rngs::SmallRng::seed_from_u64(15);
        let h = 0.85;
        let a = davies_harte(&mut rng, h, 8192);
        let b = hosking(&mut rng, h, 8192);
        let ra = autocovariance(&a, 1)[1] / variance(&a);
        let rb = autocovariance(&b, 1)[1] / variance(&b);
        assert!((ra - rb).abs() < 0.08, "lag-1 autocorr {ra} vs {rb}");
    }

    #[test]
    fn single_sample() {
        let mut rng = lrd_rng::rngs::SmallRng::seed_from_u64(16);
        assert_eq!(davies_harte(&mut rng, 0.8, 1).len(), 1);
        assert_eq!(hosking(&mut rng, 0.8, 1).len(), 1);
    }

    #[test]
    #[should_panic(expected = "H must lie in (0, 1)")]
    fn bad_hurst_rejected() {
        let mut rng = lrd_rng::rngs::SmallRng::seed_from_u64(17);
        davies_harte(&mut rng, 1.2, 16);
    }
}
