//! Typed construction errors for the traffic models.
//!
//! Every public constructor in this crate has a fallible `try_*`
//! variant returning [`ModelError`]; the panicking variants are thin
//! wrappers that panic with the error's `Display` message, so legacy
//! call sites (and `#[should_panic]` tests) keep working unchanged.

use std::fmt;

/// Why a traffic-model constructor rejected its input.
///
/// The `Display` form is the exact panic message of the corresponding
/// infallible constructor, so matching on the variant and printing the
/// error are equally informative.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A parameter was NaN or infinite where a finite value is
    /// required. Checked before any domain test, so `NaN` never
    /// reaches a range comparison.
    NonFiniteInput {
        /// Which parameter was non-finite.
        param: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A finite parameter fell outside its mathematical domain.
    ParamOutOfDomain {
        /// Which parameter was out of domain.
        param: &'static str,
        /// The offending value.
        value: f64,
        /// Human-readable statement of the domain, phrased as
        /// "must ..." so it composes into the panic message.
        constraint: &'static str,
    },
    /// A probability vector does not carry positive, finite total mass.
    NonNormalized {
        /// The observed total mass.
        total: f64,
    },
    /// A collection that must be non-empty was empty.
    EmptySupport {
        /// What was empty ("trace", "marginal support", ...).
        what: &'static str,
    },
    /// Two parallel slices differ in length.
    LengthMismatch {
        /// What pair of slices disagreed ("rates/probs", ...).
        what: &'static str,
        /// Length of the first slice.
        left: usize,
        /// Length of the second slice.
        right: usize,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ModelError::NonFiniteInput { param, value } => {
                write!(f, "{param} must be finite, got {value}")
            }
            ModelError::ParamOutOfDomain {
                param,
                value,
                constraint,
            } => write!(f, "{param} {constraint}, got {value}"),
            ModelError::NonNormalized { total } => {
                write!(f, "total probability mass must be positive, got {total}")
            }
            ModelError::EmptySupport { what } => write!(f, "{what} must be non-empty"),
            ModelError::LengthMismatch { what, left, right } => {
                write!(f, "{what} length mismatch: {left} vs {right}")
            }
        }
    }
}

impl std::error::Error for ModelError {}

/// Checks that `value` is finite, naming `param` in the error.
pub(crate) fn require_finite(param: &'static str, value: f64) -> Result<f64, ModelError> {
    if value.is_finite() {
        Ok(value)
    } else {
        Err(ModelError::NonFiniteInput { param, value })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_legacy_panic_messages() {
        let e = ModelError::ParamOutOfDomain {
            param: "theta",
            value: 0.0,
            constraint: "must be positive and finite",
        };
        assert_eq!(e.to_string(), "theta must be positive and finite, got 0");
        let e = ModelError::LengthMismatch {
            what: "rates/probs",
            left: 1,
            right: 2,
        };
        assert!(e.to_string().contains("length mismatch"));
        let e = ModelError::EmptySupport { what: "trace" };
        assert_eq!(e.to_string(), "trace must be non-empty");
        let e = ModelError::NonNormalized { total: 0.0 };
        assert!(e.to_string().contains("total probability mass must be positive"));
    }

    #[test]
    fn non_finite_reports_value() {
        let e = ModelError::NonFiniteInput {
            param: "dt",
            value: f64::NAN,
        };
        assert_eq!(e.to_string(), "dt must be finite, got NaN");
        assert!(require_finite("x", f64::INFINITY).is_err());
        assert_eq!(require_finite("x", 1.5), Ok(1.5));
    }
}
