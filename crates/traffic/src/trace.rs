//! Binned rate traces.
//!
//! The paper's traces are sequences of rates averaged over fixed
//! intervals (33 ms frames for the MTV video trace, 10 ms bins for the
//! Bellcore Ethernet trace). [`Trace`] is that representation, together
//! with the two reductions the paper applies to it: the 50-bin marginal
//! histogram (Fig. 3) and the mean epoch duration used to calibrate
//! `θ` (Sec. III).

use crate::error::ModelError;
use crate::marginal::Marginal;
use lrd_stats::{mean_run_length, Histogram};

/// A rate trace sampled on a fixed interval: `rates[k]` is the average
/// fluid rate over `[k·dt, (k+1)·dt)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    dt: f64,
    rates: Vec<f64>,
}

impl Trace {
    /// Creates a trace from its sampling interval (seconds) and rate
    /// samples.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not positive/finite, the trace is empty, or
    /// any rate is negative or non-finite. Use [`Trace::try_new`] for
    /// a fallible variant.
    pub fn new(dt: f64, rates: Vec<f64>) -> Self {
        Trace::try_new(dt, rates).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible constructor: returns a typed [`ModelError`] instead of
    /// panicking on a degenerate trace.
    pub fn try_new(dt: f64, rates: Vec<f64>) -> Result<Self, ModelError> {
        if !dt.is_finite() {
            return Err(ModelError::NonFiniteInput {
                param: "dt",
                value: dt,
            });
        }
        if dt <= 0.0 {
            return Err(ModelError::ParamOutOfDomain {
                param: "dt",
                value: dt,
                constraint: "must be positive and finite",
            });
        }
        if rates.is_empty() {
            return Err(ModelError::EmptySupport { what: "trace" });
        }
        for &r in &rates {
            if !r.is_finite() {
                return Err(ModelError::NonFiniteInput {
                    param: "rate",
                    value: r,
                });
            }
            if r < 0.0 {
                return Err(ModelError::ParamOutOfDomain {
                    param: "rate",
                    value: r,
                    constraint: "must be finite and non-negative",
                });
            }
        }
        Ok(Trace { dt, rates })
    }

    /// Sampling interval in seconds.
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// The rate samples.
    pub fn rates(&self) -> &[f64] {
        &self.rates
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.rates.len()
    }

    /// Whether the trace is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.rates.is_empty()
    }

    /// Total duration in seconds.
    pub fn duration(&self) -> f64 {
        self.dt * self.len() as f64
    }

    /// Mean rate.
    pub fn mean_rate(&self) -> f64 {
        lrd_stats::mean(&self.rates)
    }

    /// Total work carried by the trace (rate × time summed).
    pub fn total_work(&self) -> f64 {
        self.rates.iter().sum::<f64>() * self.dt
    }

    /// Constant-bin-size histogram of the rate samples.
    pub fn histogram(&self, bins: usize) -> Histogram {
        Histogram::from_data(&self.rates, bins)
    }

    /// The paper's marginal extraction: 50-bin histogram → `(Π, Λ)`.
    pub fn marginal(&self, bins: usize) -> Marginal {
        Marginal::from_histogram(&self.histogram(bins))
    }

    /// Mean epoch duration in **seconds**: the average length of
    /// maximal runs of consecutive samples falling in the same
    /// histogram bin, times `dt`. This is the quantity the paper
    /// matches to the model's `E[T]` (Eq. 25) to calibrate `θ`.
    pub fn mean_epoch(&self, bins: usize) -> f64 {
        let h = self.histogram(bins);
        mean_run_length(&h.quantize(&self.rates)) * self.dt
    }

    /// Aggregated trace at level `m`: non-overlapping means of `m`
    /// consecutive samples, with `dt` scaled accordingly. Used for
    /// variance–time analysis and for matching traces recorded at
    /// different granularities.
    pub fn aggregate(&self, m: usize) -> Trace {
        assert!(m >= 1, "aggregation level must be at least 1");
        assert!(self.len() >= m, "trace shorter than aggregation level");
        let rates: Vec<f64> = self
            .rates
            .chunks_exact(m)
            .map(|c| c.iter().sum::<f64>() / m as f64)
            .collect();
        Trace::new(self.dt * m as f64, rates)
    }

    /// A sub-trace of the first `n` samples.
    pub fn truncated(&self, n: usize) -> Trace {
        assert!(n >= 1 && n <= self.len());
        Trace::new(self.dt, self.rates[..n].to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Trace {
        Trace::new(0.01, vec![1.0, 1.0, 3.0, 3.0, 3.0, 5.0])
    }

    #[test]
    fn basic_accessors() {
        let t = toy();
        assert_eq!(t.len(), 6);
        assert!((t.duration() - 0.06).abs() < 1e-12);
        assert!((t.mean_rate() - 16.0 / 6.0).abs() < 1e-12);
        assert!((t.total_work() - 0.16).abs() < 1e-12);
    }

    #[test]
    fn marginal_matches_histogram() {
        let t = toy();
        let m = t.marginal(4);
        assert!((m.mean() - t.histogram(4).binned_mean()).abs() < 1e-12);
        let total: f64 = m.probs().iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mean_epoch_of_runs() {
        // With 4 bins over [1,5] (width 1): values 1,1 → bin 0;
        // 3,3,3 → bin 2; 5 → bin 3. Runs: 2,3,1 → mean 2 samples
        // → 0.02 s.
        let t = toy();
        assert!((t.mean_epoch(4) - 0.02).abs() < 1e-12);
    }

    #[test]
    fn aggregation() {
        let t = toy();
        let a = t.aggregate(2);
        assert_eq!(a.rates(), &[1.0, 3.0, 4.0]);
        assert!((a.dt() - 0.02).abs() < 1e-12);
        // Aggregation preserves total work up to truncation.
        assert!((a.total_work() - t.total_work()).abs() < 1e-12);
    }

    #[test]
    fn truncation() {
        let t = toy().truncated(2);
        assert_eq!(t.rates(), &[1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_rate_rejected() {
        Trace::new(0.01, vec![1.0, -2.0]);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_rejected() {
        Trace::new(0.01, vec![]);
    }
}
