//! Deterministic synthetic stand-ins for the paper's two traces.
//!
//! The paper's evaluation uses two proprietary recordings:
//!
//! * the **MTV trace** — one hour of JPEG-encoded NTSC television,
//!   107 892 frames at 33 ms, mean rate 9.5222 Mb/s, `H ≈ 0.83`, mean
//!   epoch ≈ 80 ms;
//! * the **Bellcore trace** — the August 1989 "purple-cable" Ethernet
//!   trace, 10 ms bins, `H ≈ 0.9`, mean epoch ≈ 15 ms.
//!
//! Neither recording is redistributable, so this module synthesizes
//! traces with the *published statistics*: exact fractional Gaussian
//! noise at the published Hurst parameter is mapped through the normal
//! CDF onto a parametric marginal chosen to match each source's
//! character — a moderate-CoV Gamma for single-camera JPEG video, and
//! a heavy-tailed lognormal (large mass near idle, long right tail)
//! for aggregated Ethernet. This preserves exactly the two statistics
//! the solver consumes (the 50-bin marginal and the epoch-calibrated
//! `θ`) and the correlation structure the shuffling simulations need.
//! The substitution is recorded in `DESIGN.md`.

use crate::fgn::davies_harte;
use crate::trace::Trace;
use lrd_specfun::{inv_gamma_p, norm_cdf};
use lrd_rng::rngs::SmallRng;
use lrd_rng::SeedableRng;

/// Published mean rate of the MTV trace, Mb/s.
pub const MTV_MEAN_RATE: f64 = 9.5222;
/// Published Hurst parameter of the MTV trace.
pub const MTV_HURST: f64 = 0.83;
/// Published sample interval of the MTV trace (one NTSC frame), s.
pub const MTV_DT: f64 = 0.033;
/// Published length of the MTV trace in frames.
pub const MTV_LEN: usize = 107_892;
/// Coefficient of variation chosen for the synthetic JPEG-video
/// marginal (single-scene intraframe coding is moderately variable).
pub const MTV_COV: f64 = 0.25;

/// Mean rate chosen for the Bellcore-like trace, Mb/s (typical of the
/// 1989 10 Mb/s Ethernet measurements).
pub const BELLCORE_MEAN_RATE: f64 = 1.36;
/// Published Hurst parameter of the Bellcore trace.
pub const BELLCORE_HURST: f64 = 0.9;
/// Published sample interval of the Bellcore trace, s.
pub const BELLCORE_DT: f64 = 0.01;
/// Length of the synthetic Bellcore-like trace (≈ 44 min at 10 ms;
/// a power of two keeps the fGn embedding at its natural size).
pub const BELLCORE_LEN: usize = 1 << 18;
/// Coefficient of variation chosen for the synthetic Ethernet marginal
/// (aggregated LAN traffic is very bursty).
pub const BELLCORE_COV: f64 = 1.3;

/// Default seed used by the one-argument constructors; every figure in
/// `EXPERIMENTS.md` is generated from this seed so results are
/// bit-for-bit reproducible.
pub const DEFAULT_SEED: u64 = 0x6c72_645f_7472;

/// Synthesizes an MTV-like JPEG video trace of the published length.
pub fn mtv_like(seed: u64) -> Trace {
    mtv_like_with_len(seed, MTV_LEN)
}

/// MTV-like trace of arbitrary length (tests use short ones).
pub fn mtv_like_with_len(seed: u64, len: usize) -> Trace {
    // Gamma marginal: shape k = 1/CoV², scale = mean·CoV².
    let shape = 1.0 / (MTV_COV * MTV_COV);
    let scale = MTV_MEAN_RATE / shape;
    gaussian_copula_trace(seed, MTV_HURST, MTV_DT, len, move |u| {
        inv_gamma_p(shape, u) * scale
    })
}

/// Synthesizes a Bellcore-like Ethernet trace of the default length.
pub fn bellcore_like(seed: u64) -> Trace {
    bellcore_like_with_len(seed, BELLCORE_LEN)
}

/// Bellcore-like trace of arbitrary length (tests use short ones).
pub fn bellcore_like_with_len(seed: u64, len: usize) -> Trace {
    // Lognormal marginal: σ² = ln(1 + CoV²), μ = ln(mean) − σ²/2.
    let sigma2 = (1.0 + BELLCORE_COV * BELLCORE_COV).ln();
    let sigma = sigma2.sqrt();
    let mu = BELLCORE_MEAN_RATE.ln() - sigma2 / 2.0;
    gaussian_copula_trace(seed, BELLCORE_HURST, BELLCORE_DT, len, move |u| {
        (mu + sigma * lrd_specfun::norm_quantile(u)).exp()
    })
}

/// The shared construction: exact fGn → normal CDF → target quantile
/// function. The Gaussian copula preserves the fGn's long-range
/// dependence (monotone marginal maps cannot destroy LRD) while giving
/// exactly the requested marginal law.
pub fn gaussian_copula_trace(
    seed: u64,
    hurst: f64,
    dt: f64,
    len: usize,
    quantile: impl Fn(f64) -> f64,
) -> Trace {
    assert!(len > 0, "trace length must be positive");
    let _span = lrd_obs::span!("traffic.synth", hurst = hurst, len = len);
    let mut rng = SmallRng::seed_from_u64(seed);
    let g = davies_harte(&mut rng, hurst, len);
    let rates: Vec<f64> = g
        .into_iter()
        .map(|z| {
            // Clamp the copula input away from {0, 1} so heavy-tailed
            // quantiles stay finite.
            let u = norm_cdf(z).clamp(1e-12, 1.0 - 1e-12);
            quantile(u).max(0.0)
        })
        .collect();
    Trace::new(dt, rates)
}

#[cfg(test)]
mod tests {
    use super::*;

    const TEST_LEN: usize = 1 << 14;

    #[test]
    fn mtv_like_matches_published_stats() {
        let t = mtv_like_with_len(1, TEST_LEN);
        assert_eq!(t.len(), TEST_LEN);
        assert!((t.dt() - MTV_DT).abs() < 1e-12);
        let m = t.mean_rate();
        // LRD sample means converge as n^{H-1}, so even 16k samples
        // carry visible fluctuation — that slow convergence is the
        // phenomenon the paper studies. Allow 10%.
        assert!(
            (m - MTV_MEAN_RATE).abs() / MTV_MEAN_RATE < 0.10,
            "mean rate {m}"
        );
        let cov = lrd_stats::std_dev(t.rates()) / m;
        assert!((cov - MTV_COV).abs() < 0.07, "CoV {cov}");
    }

    #[test]
    fn mtv_like_recovers_hurst() {
        let t = mtv_like_with_len(2, 1 << 16);
        let est = lrd_stats::wavelet_estimate(t.rates());
        assert!(
            (est.h - MTV_HURST).abs() < 0.07,
            "estimated H {} vs published {}",
            est.h,
            MTV_HURST
        );
    }

    #[test]
    fn bellcore_like_matches_published_stats() {
        let t = bellcore_like_with_len(3, TEST_LEN);
        let m = t.mean_rate();
        assert!(
            (m - BELLCORE_MEAN_RATE).abs() / BELLCORE_MEAN_RATE < 0.25,
            "mean rate {m}"
        );
        // Heavy-tailed: CoV near the configured value (lognormal sample
        // CoV converges slowly, allow a wide band).
        let cov = lrd_stats::std_dev(t.rates()) / m;
        assert!(cov > 0.8 && cov < 1.8, "CoV {cov}");
    }

    #[test]
    fn bellcore_like_recovers_hurst() {
        let t = bellcore_like_with_len(4, 1 << 16);
        let est = lrd_stats::wavelet_estimate(t.rates());
        assert!(
            (est.h - BELLCORE_HURST).abs() < 0.1,
            "estimated H {} vs published {}",
            est.h,
            BELLCORE_HURST
        );
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = mtv_like_with_len(7, 1024);
        let b = mtv_like_with_len(7, 1024);
        assert_eq!(a, b);
        let c = mtv_like_with_len(8, 1024);
        assert_ne!(a, c);
    }

    #[test]
    fn rates_are_nonnegative() {
        let t = bellcore_like_with_len(5, TEST_LEN);
        assert!(t.rates().iter().all(|&r| r >= 0.0));
    }

    #[test]
    fn marginal_shapes_differ() {
        // The Bellcore-like marginal must be much more skewed than the
        // MTV-like one — this contrast drives the paper's Fig. 9.
        let mtv = mtv_like_with_len(6, TEST_LEN);
        let bc = bellcore_like_with_len(6, TEST_LEN);
        let skew = |t: &Trace| {
            let m = t.mean_rate();
            let s = lrd_stats::std_dev(t.rates());
            t.rates().iter().map(|&r| ((r - m) / s).powi(3)).sum::<f64>() / t.len() as f64
        };
        assert!(skew(&bc) > 2.0 * skew(&mtv).max(0.1), "skews: bc {} mtv {}", skew(&bc), skew(&mtv));
    }
}
