//! Heavy-tailed on/off sources and their superposition.
//!
//! The paper's physical explanation for LRD in network traffic (via
//! Willinger et al., its refs. [36], [7]) is that "the superposition of
//! many on/off sources with heavy-tailed on- and off-periods results in
//! aggregate traffic with LRD". This module provides that generative
//! model: individual sources alternate between emitting at a peak rate
//! for a Pareto-distributed duration and staying silent for another
//! Pareto-distributed duration; aggregating many of them onto a binned
//! trace produces LRD traffic "from first principles", independent of
//! the fGn-based synthesizer.

use crate::trace::Trace;
use lrd_rng::Rng;

/// A single on/off source with Pareto-distributed sojourn times.
#[derive(Debug, Clone, Copy)]
pub struct OnOffSource {
    /// Emission rate while on (Mb/s).
    pub peak_rate: f64,
    /// Pareto shape of the on-period distribution (`1 < α < 2` gives
    /// infinite variance and hence LRD in the aggregate).
    pub on_alpha: f64,
    /// Minimum on-period duration (Pareto scale), seconds.
    pub on_min: f64,
    /// Pareto shape of the off-period distribution.
    pub off_alpha: f64,
    /// Minimum off-period duration (Pareto scale), seconds.
    pub off_min: f64,
}

impl OnOffSource {
    /// Creates a source, validating parameter ranges.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is non-positive or a shape is `<= 1`
    /// (the sojourn mean must exist for stationarity).
    pub fn new(peak_rate: f64, on_alpha: f64, on_min: f64, off_alpha: f64, off_min: f64) -> Self {
        assert!(peak_rate > 0.0, "peak rate must be positive");
        assert!(on_alpha > 1.0 && off_alpha > 1.0, "shapes must exceed 1");
        assert!(on_min > 0.0 && off_min > 0.0, "scales must be positive");
        OnOffSource {
            peak_rate,
            on_alpha,
            on_min,
            off_alpha,
            off_min,
        }
    }

    /// Mean on-period `α·m/(α−1)`… for the classical Pareto on `[m, ∞)`
    /// with shape `α`: `E = α m / (α − 1)`.
    pub fn mean_on(&self) -> f64 {
        self.on_alpha * self.on_min / (self.on_alpha - 1.0)
    }

    /// Mean off-period.
    pub fn mean_off(&self) -> f64 {
        self.off_alpha * self.off_min / (self.off_alpha - 1.0)
    }

    /// Long-run mean rate: `peak · E[on] / (E[on] + E[off])`.
    pub fn mean_rate(&self) -> f64 {
        self.peak_rate * self.mean_on() / (self.mean_on() + self.mean_off())
    }

    /// The Hurst parameter of the aggregate of many such sources:
    /// `H = (3 − α_min)/2` with `α_min` the heavier (smaller) of the
    /// two sojourn shapes (Willinger et al.).
    pub fn aggregate_hurst(&self) -> f64 {
        let a = self.on_alpha.min(self.off_alpha);
        if a >= 2.0 {
            0.5
        } else {
            (3.0 - a) / 2.0
        }
    }

    fn sample_pareto<R: Rng + ?Sized>(rng: &mut R, alpha: f64, min: f64) -> f64 {
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        min * u.powf(-1.0 / alpha)
    }

    /// Draws one sojourn duration for the given phase (`on = true` for
    /// an emission period).
    pub fn sample_sojourn<R: Rng + ?Sized>(&self, rng: &mut R, on: bool) -> f64 {
        if on {
            Self::sample_pareto(rng, self.on_alpha, self.on_min)
        } else {
            Self::sample_pareto(rng, self.off_alpha, self.off_min)
        }
    }

    /// Stationary probability of finding the source in an on-period.
    pub fn on_probability(&self) -> f64 {
        self.mean_on() / (self.mean_on() + self.mean_off())
    }

    /// Adds this source's contribution over `[0, dt·bins.len())` to a
    /// rate accumulator (used by [`aggregate_trace`]). The source
    /// starts in a uniformly random phase of a fresh sojourn.
    fn add_to<R: Rng + ?Sized>(&self, rng: &mut R, dt: f64, bins: &mut [f64]) {
        let total = dt * bins.len() as f64;
        let mut t = 0.0;
        let mut on = rng.gen_bool(self.on_probability());
        while t < total {
            let dur = if on {
                Self::sample_pareto(rng, self.on_alpha, self.on_min)
            } else {
                Self::sample_pareto(rng, self.off_alpha, self.off_min)
            };
            let end = (t + dur).min(total);
            if on {
                spread_rate(self.peak_rate, t, end, dt, bins);
            }
            t = end;
            on = !on;
        }
    }
}

/// Adds `rate` over the time window `[start, end)` to the bin
/// accumulator, splitting the contribution by overlap. Iterates bins by
/// integer index, which (unlike stepping a float cursor to computed bin
/// boundaries) is immune to rounding-induced non-progress.
fn spread_rate(rate: f64, start: f64, end: f64, dt: f64, bins: &mut [f64]) {
    if end <= start {
        return;
    }
    let first = (start / dt) as usize;
    let last = ((end / dt).ceil() as usize).min(bins.len());
    // Index loop is deliberate: the bin index also determines the
    // overlap geometry, not just the slot to write.
    #[allow(clippy::needless_range_loop)]
    for bin in first..last {
        let lo = bin as f64 * dt;
        let hi = lo + dt;
        let overlap = (end.min(hi) - start.max(lo)).max(0.0);
        if overlap > 0.0 {
            bins[bin] += rate * overlap / dt;
        }
    }
}

/// Aggregates `n` i.i.d. copies of `source` into a binned [`Trace`] of
/// `samples` bins at interval `dt`.
pub fn aggregate_trace<R: Rng + ?Sized>(
    source: &OnOffSource,
    n: usize,
    dt: f64,
    samples: usize,
    rng: &mut R,
) -> Trace {
    assert!(n > 0 && samples > 0 && dt > 0.0);
    let mut bins = vec![0.0f64; samples];
    for _ in 0..n {
        source.add_to(rng, dt, &mut bins);
    }
    Trace::new(dt, bins)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrd_rng::SeedableRng;

    fn src() -> OnOffSource {
        OnOffSource::new(1.0, 1.4, 0.05, 1.4, 0.15)
    }

    #[test]
    fn sojourn_means() {
        let s = src();
        assert!((s.mean_on() - 1.4 * 0.05 / 0.4).abs() < 1e-12);
        assert!((s.mean_off() - 1.4 * 0.15 / 0.4).abs() < 1e-12);
        // mean rate = peak * on/(on+off) = 1 * 0.05/(0.05+0.15) = 0.25
        assert!((s.mean_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn aggregate_hurst_mapping() {
        assert!((src().aggregate_hurst() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn aggregate_mean_rate() {
        let s = src();
        let n = 20;
        let mut rng = lrd_rng::rngs::SmallRng::seed_from_u64(21);
        let t = aggregate_trace(&s, n, 0.1, 20_000, &mut rng);
        let want = n as f64 * s.mean_rate();
        let got = t.mean_rate();
        assert!(
            (got - want).abs() / want < 0.1,
            "aggregate mean {got} vs {want}"
        );
    }

    #[test]
    fn aggregate_is_long_range_dependent() {
        let s = src();
        let mut rng = lrd_rng::rngs::SmallRng::seed_from_u64(22);
        let t = aggregate_trace(&s, 50, 0.1, 1 << 15, &mut rng);
        let est = lrd_stats::variance_time_estimate(t.rates());
        assert!(
            est.h > 0.65,
            "expected LRD aggregate (H≈0.8), estimated {}",
            est.h
        );
    }

    #[test]
    fn rates_bounded_by_peak_sum() {
        let s = src();
        let mut rng = lrd_rng::rngs::SmallRng::seed_from_u64(23);
        let n = 5;
        let t = aggregate_trace(&s, n, 0.1, 1000, &mut rng);
        assert!(t
            .rates()
            .iter()
            .all(|&r| r >= 0.0 && r <= n as f64 * s.peak_rate + 1e-9));
    }

    #[test]
    #[should_panic(expected = "shapes must exceed 1")]
    fn invalid_shape() {
        OnOffSource::new(1.0, 0.9, 0.1, 1.5, 0.1);
    }
}
