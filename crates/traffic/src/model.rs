//! A uniform facade over the workspace's synthetic source families.
//!
//! Every generator in this crate ultimately emits a piecewise-constant
//! rate path; [`TrafficModel`] names the families behind one type and
//! [`TrafficStream`] drives any of them segment by segment, which is
//! the shape an open-loop driver (the `lrd-serve` arrival ticker, a
//! simulator, a trace synthesizer) wants: ask for the next
//! `(duration, rate)` segment, advance its own clock, repeat.
//!
//! Families:
//!
//! * [`TrafficModel::Pareto`] — the paper's renewal-fluid source with
//!   truncated-Pareto intervals (LRD up to the cutoff lag),
//! * [`TrafficModel::Markov`] — the same fluid construction with
//!   exponential (memoryless, SRD) intervals,
//! * [`TrafficModel::OnOff`] — a heavy-tailed on/off source, the
//!   Willinger-style physical explanation of LRD.

use crate::onoff::OnOffSource;
use crate::pareto::{Exponential, TruncatedPareto};
use crate::source::{FluidSource, Segment};
use lrd_rng::Rng;

/// One synthetic traffic source, abstracted over its family.
#[derive(Debug, Clone)]
pub enum TrafficModel {
    /// Renewal-fluid with truncated-Pareto intervals (paper Sec. II).
    Pareto(FluidSource<TruncatedPareto>),
    /// Renewal-fluid with exponential intervals — the memoryless
    /// contrast model of Sec. IV.
    Markov(FluidSource<Exponential>),
    /// A single heavy-tailed on/off source alternating between its
    /// peak rate and silence.
    OnOff(OnOffSource),
}

impl TrafficModel {
    /// Long-run mean rate of the source (Mb/s).
    pub fn mean_rate(&self) -> f64 {
        match self {
            TrafficModel::Pareto(s) => s.mean_rate(),
            TrafficModel::Markov(s) => s.mean_rate(),
            TrafficModel::OnOff(s) => s.mean_rate(),
        }
    }

    /// The nominal Hurst parameter of the family: `(3 − α)/2` below
    /// the cutoff for the Pareto intervals, the Willinger aggregate
    /// value for on/off sojourns, and `0.5` for the memoryless model.
    pub fn nominal_hurst(&self) -> f64 {
        match self {
            TrafficModel::Pareto(s) => s.intervals().hurst(),
            TrafficModel::Markov(_) => 0.5,
            TrafficModel::OnOff(s) => s.aggregate_hurst(),
        }
    }

    /// A short family tag for logs and wire protocols.
    pub fn family(&self) -> &'static str {
        match self {
            TrafficModel::Pareto(_) => "pareto",
            TrafficModel::Markov(_) => "markov",
            TrafficModel::OnOff(_) => "onoff",
        }
    }

    /// Begins streaming segments; the on/off phase is seeded from the
    /// stationary law so the stream starts in equilibrium.
    pub fn stream<R: Rng + ?Sized>(&self, rng: &mut R) -> TrafficStream {
        let on = match self {
            TrafficModel::OnOff(s) => rng.gen_bool(s.on_probability()),
            _ => false,
        };
        TrafficStream {
            model: self.clone(),
            on,
        }
    }
}

/// Stateful segment generator over a [`TrafficModel`].
///
/// The renewal families are memoryless across segments; the on/off
/// family carries its phase between calls, so a stream must be kept
/// per flow (not re-created per segment) for the sojourn alternation
/// to be faithful.
#[derive(Debug, Clone)]
pub struct TrafficStream {
    model: TrafficModel,
    /// Current on/off phase; unused by the renewal families.
    on: bool,
}

impl TrafficStream {
    /// Draws the next `(duration, rate)` segment.
    pub fn next_segment<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Segment {
        match &self.model {
            TrafficModel::Pareto(s) => s.sample_segment(rng),
            TrafficModel::Markov(s) => s.sample_segment(rng),
            TrafficModel::OnOff(s) => {
                let phase = self.on;
                self.on = !phase;
                Segment {
                    duration: s.sample_sojourn(rng, phase),
                    rate: if phase { s.peak_rate } else { 0.0 },
                }
            }
        }
    }

    /// The model this stream draws from.
    pub fn model(&self) -> &TrafficModel {
        &self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::marginal::Marginal;
    use lrd_rng::{rngs::SmallRng, SeedableRng};

    fn two_rate() -> Marginal {
        Marginal::new(&[2.0, 14.0], &[0.5, 0.5])
    }

    #[test]
    fn renewal_streams_match_their_sources_statistically() {
        let model = TrafficModel::Pareto(FluidSource::new(
            two_rate(),
            TruncatedPareto::from_hurst(0.8, 0.05, 1.0),
        ));
        assert_eq!(model.family(), "pareto");
        assert!((model.nominal_hurst() - 0.8).abs() < 1e-12);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut stream = model.stream(&mut rng);
        let (mut time, mut work) = (0.0, 0.0);
        for _ in 0..20_000 {
            let seg = stream.next_segment(&mut rng);
            assert!(seg.duration > 0.0);
            assert!(seg.rate == 2.0 || seg.rate == 14.0);
            time += seg.duration;
            work += seg.duration * seg.rate;
        }
        let mean = work / time;
        assert!(
            (mean - model.mean_rate()).abs() < 0.5,
            "empirical mean rate {mean} vs {}",
            model.mean_rate()
        );
    }

    #[test]
    fn onoff_stream_alternates_phases_and_holds_its_mean() {
        let model = TrafficModel::OnOff(OnOffSource::new(1.0, 1.4, 0.05, 1.4, 0.15));
        let mut rng = SmallRng::seed_from_u64(2);
        let mut stream = model.stream(&mut rng);
        let first_on = stream.next_segment(&mut rng).rate > 0.0;
        let (mut time, mut work) = (0.0, 0.0);
        for i in 0..200_001 {
            let seg = stream.next_segment(&mut rng);
            // Strict alternation from whatever phase the stream
            // started in.
            assert_eq!(seg.rate > 0.0, (i % 2 == 0) != first_on);
            time += seg.duration;
            work += seg.duration * seg.rate;
        }
        let mean = work / time;
        assert!(
            (mean - model.mean_rate()).abs() < 0.1,
            "empirical mean rate {mean} vs {}",
            model.mean_rate()
        );
        assert!((model.nominal_hurst() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn markov_family_reports_srd() {
        let model =
            TrafficModel::Markov(FluidSource::new(two_rate(), Exponential::new(0.1)));
        assert_eq!(model.family(), "markov");
        assert_eq!(model.nominal_hurst(), 0.5);
    }
}
