//! `lrd-serve`: the online loss-bound service.
//!
//! Everything else in this workspace answers questions *offline*: fit
//! a model, run a sweep, write a report. This crate turns the
//! resumable [`SolveSession`](lrd_fluidq::SolveSession) API into a
//! long-running daemon that answers them *while the traffic happens*:
//!
//! * [`flow`] drives open-loop synthetic arrivals (renewal-fluid and
//!   on/off sources) through a poll-based ticker into per-flow
//!   sliding-window marginals and streaming Hurst estimates;
//! * [`engine`] fits the paper's cutoff-correlated queueing model from
//!   each window and answers `LossBound` / `Provision` queries with
//!   **bounded staleness** from incrementally-refined solve sessions;
//! * [`proto`] is the JSON-line wire protocol (the sweep
//!   coordinator's framing, reused);
//! * [`server`] is the single-threaded poll loop multiplexing ticks,
//!   queries and idle refinement;
//! * [`signal`] routes `SIGINT`/`SIGTERM` to a graceful,
//!   telemetry-flushing shutdown without external dependencies.
//!
//! The load-bearing guarantee is inherited from `SolveSession`:
//! an incrementally-answered bound, once converged, is **bit-identical**
//! to a one-shot batch solve of the same fitted model. The protocol
//! exposes that contract directly — `Solve` requests run the batch
//! side live so clients (and the CI smoke) can verify the daemon
//! against itself.

#![warn(missing_docs)]

pub mod engine;
pub mod flow;
pub mod proto;
pub mod server;
pub mod signal;

pub use engine::{serve_profile, BoundAnswer, Engine, EngineError, EngineOptions};
pub use flow::{Flow, FlowSpec};
pub use proto::{FlowStatus, Request, Response};
pub use server::{serve, ServeStats};
