//! The serving engine: per-flow windows in, bounded-staleness loss
//! bounds out.
//!
//! The engine owns the daemon's whole state — the live [`Flow`]s and a
//! cache of resumable [`SolveSession`]s — and is deliberately
//! synchronous and single-threaded: the server loop interleaves
//! arrival ticks, query handling and idle refinement on one thread, so
//! every answer is computed against a consistent snapshot and the
//! engine is trivially testable without sockets.
//!
//! # The staleness contract
//!
//! A query for `(flow, buffer)` is answered from a session solved on a
//! model **fitted from the flow's sliding window**. The fit is reused
//! while it is at most `max_staleness` ticks old; past that, the next
//! query refits from the current window and starts a fresh session,
//! donating the old session's warm state (the `SolveSession` seeded
//! probe turns a still-zero verdict into a cheap certification). Every
//! answer reports its model's age, so clients see exactly how stale
//! their bound is — bounded by construction, never hidden.
//!
//! # Model fitting (the paper's recipe, live)
//!
//! The fitted model is the cutoff-correlated renewal-fluid model of
//! Sec. II, calibrated from the window exactly as Sec. III calibrates
//! it from a measured trace:
//!
//! * **marginal** — the 50-bin histogram of the window samples,
//! * **α** — `3 − 2H` from the pooled streaming Hurst estimate
//!   (clamped into the valid LRD range),
//! * **θ** — Eq. 25: matched to the window's mean epoch (same-bin run
//!   length × `dt`),
//! * **T_c** — the window span: the daemon cannot observe (and per the
//!   paper, the queue cannot exploit) correlations longer than it has
//!   watched.

use std::collections::BTreeMap;
use std::fmt;

use lrd_fluidq::{QueueModel, SolveSession, SolverOptions};
use lrd_stats::{mean_run_length, Histogram};
use lrd_traffic::{Marginal, TruncatedPareto};

use crate::flow::{Flow, FlowSpec};
use crate::proto::{FlowStatus, Response};

/// Engine tuning knobs (all have serving-oriented defaults).
#[derive(Debug, Clone, Copy)]
pub struct EngineOptions {
    /// Seconds of traffic per arrival tick.
    pub dt: f64,
    /// Sliding-window length in samples.
    pub window: usize,
    /// Hurst-estimate refresh cadence (pushes).
    pub refresh_every: usize,
    /// Maximum age (ticks) of the fitted model behind an answer.
    pub max_staleness: u64,
    /// Session iterations spent per query (and per idle slice).
    pub query_budget: usize,
    /// Solver options for the serving sessions.
    pub solver: SolverOptions,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            dt: 0.1,
            window: 1024,
            refresh_every: 64,
            max_staleness: 512,
            query_budget: 2048,
            solver: serve_profile(),
        }
    }
}

/// The solver profile serving queries: the sweep profile's envelope
/// shrunk further, trading bracket width for bounded per-query latency
/// — a query must never monopolize the ticker thread.
pub fn serve_profile() -> SolverOptions {
    SolverOptions {
        max_bins: 1 << 12,
        max_total_cost: 2e6,
        ..SolverOptions::default()
    }
}

/// Why the engine could not answer.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// The named flow is not registered.
    UnknownFlow(String),
    /// The flow's window has not filled (or holds constant data).
    NotWarmed {
        /// The flow name.
        flow: String,
        /// Samples currently held.
        have: usize,
        /// Window capacity.
        need: usize,
    },
    /// The window mean meets or exceeds the service rate: no finite
    /// buffer bounds the loss usefully.
    Overloaded {
        /// Observed window mean rate.
        mean: f64,
        /// Configured service rate.
        service: f64,
    },
    /// The request itself is malformed (negative buffer, loss target
    /// outside `(0, 1)`, …).
    BadRequest(String),
    /// A provisioning search exhausted its solve budget.
    Unsatisfiable(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnknownFlow(name) => write!(f, "unknown flow {name:?}"),
            EngineError::NotWarmed { flow, have, need } => write!(
                f,
                "flow {flow:?} is not warmed yet ({have}/{need} window samples)"
            ),
            EngineError::Overloaded { mean, service } => write!(
                f,
                "window mean rate {mean} meets or exceeds the service rate {service}"
            ),
            EngineError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            EngineError::Unsatisfiable(msg) => write!(f, "unsatisfiable: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// A cached query point: the fitted model, the resumable session
/// refining its bounds, and the tick the model was fitted at.
#[derive(Debug)]
struct Cached {
    model: QueueModel<TruncatedPareto>,
    session: SolveSession<TruncatedPareto>,
    model_tick: u64,
}

/// One answered bound (the typed form of [`Response::Bound`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundAnswer {
    /// Provable lower bound on the loss rate.
    pub lower: f64,
    /// Provable upper bound on the loss rate.
    pub upper: f64,
    /// Whether the answering session has converged.
    pub converged: bool,
    /// Ticks since the answering model was fitted.
    pub staleness: u64,
    /// Session grid resolution.
    pub bins: usize,
    /// Session iterations spent so far.
    pub iterations: usize,
}

impl BoundAnswer {
    fn to_response(self) -> Response {
        Response::Bound {
            lower: self.lower,
            upper: self.upper,
            converged: self.converged,
            staleness: self.staleness,
            bins: self.bins as u64,
            iterations: self.iterations as u64,
        }
    }
}

/// The serving engine. See the module docs for the contracts.
#[derive(Debug)]
pub struct Engine {
    opts: EngineOptions,
    flows: BTreeMap<String, Flow>,
    tick: u64,
    queries: u64,
    /// Sessions keyed by `(flow, buffer bits)` — bits, not the float,
    /// so the map is total over every queryable buffer.
    cache: BTreeMap<(String, u64), Cached>,
}

impl Engine {
    /// Builds an engine over `specs`, giving flow `i` the deterministic
    /// RNG stream `seed + i` (distinct flows never share a stream).
    pub fn new(opts: EngineOptions, specs: Vec<FlowSpec>, seed: u64) -> Engine {
        let flows = specs
            .into_iter()
            .enumerate()
            .map(|(i, spec)| {
                let name = spec.name.clone();
                let flow = Flow::new(
                    spec,
                    seed.wrapping_add(i as u64),
                    opts.window,
                    opts.refresh_every,
                );
                (name, flow)
            })
            .collect();
        Engine {
            opts,
            flows,
            tick: 0,
            queries: 0,
            cache: BTreeMap::new(),
        }
    }

    /// The engine options.
    pub fn options(&self) -> &EngineOptions {
        &self.opts
    }

    /// Arrival ticks absorbed so far.
    pub fn tick_count(&self) -> u64 {
        self.tick
    }

    /// Queries answered so far.
    pub fn query_count(&self) -> u64 {
        self.queries
    }

    /// Absorbs one arrival tick across every flow.
    pub fn tick(&mut self) {
        for flow in self.flows.values_mut() {
            flow.tick(self.opts.dt);
        }
        self.tick += 1;
        lrd_obs::counter("serve.ticks", 1);
    }

    /// Answers one protocol request (everything except `Shutdown`,
    /// which is the server loop's business). Errors become
    /// [`Response::Error`] lines here so the wire never sees a Rust
    /// error type.
    pub fn handle(&mut self, request: &crate::proto::Request) -> Response {
        use crate::proto::Request;
        self.queries += 1;
        let answer = match request {
            Request::Status => Ok(self.status()),
            Request::LossBound { flow, buffer } => {
                self.loss_bound(flow, *buffer).map(BoundAnswer::to_response)
            }
            Request::Solve { flow, buffer } => {
                self.batch_solve(flow, *buffer).map(BoundAnswer::to_response)
            }
            Request::Provision { flow, target_loss } => self.provision(flow, *target_loss),
            Request::Shutdown => Ok(Response::Bye),
        };
        answer.unwrap_or_else(|e| Response::Error {
            message: e.to_string(),
        })
    }

    /// The tick counter and per-flow roster.
    pub fn status(&self) -> Response {
        let flows = self
            .flows
            .values()
            .map(|flow| {
                let window = flow.hurst().window();
                FlowStatus {
                    name: flow.spec().name.clone(),
                    family: flow.spec().model.family().to_string(),
                    samples: window.len() as u64,
                    mean_rate: window.mean(),
                    hurst: flow.hurst().current().map(|pair| pair.pooled()),
                    hurst_staleness: flow.hurst().staleness() as u64,
                    warmed: flow.warmed(),
                }
            })
            .collect();
        Response::Status {
            tick: self.tick,
            flows,
        }
    }

    /// Fits the paper's renewal-fluid model for `flow` at `buffer`
    /// from the flow's current window (see the module docs for the
    /// recipe). Public so tests and benches can compare engine answers
    /// against direct solves of the identical model.
    pub fn fit_model(
        &self,
        flow: &str,
        buffer: f64,
    ) -> Result<QueueModel<TruncatedPareto>, EngineError> {
        let flow = self
            .flows
            .get(flow)
            .ok_or_else(|| EngineError::UnknownFlow(flow.to_string()))?;
        let hurst = flow.hurst();
        let pair = hurst.current().ok_or_else(|| EngineError::NotWarmed {
            flow: flow.spec().name.clone(),
            have: hurst.window().len(),
            need: hurst.window().capacity(),
        })?;
        let service = flow.spec().service;
        let snapshot = hurst.window().snapshot();
        let mean = hurst.window().mean();
        if mean >= service {
            return Err(EngineError::Overloaded { mean, service });
        }
        let histogram = Histogram::from_data(&snapshot, 50);
        let marginal = Marginal::from_histogram(&histogram);
        // α = 3 − 2H, with H clamped into the open LRD range the
        // truncated-Pareto construction accepts; a window estimating
        // H ≈ 0.5 (SRD) fits a nearly-memoryless α → 2⁻ model, which
        // below the correlation horizon is exactly the paper's point.
        let h = pair.pooled().clamp(0.55, 0.95);
        let alpha = 3.0 - 2.0 * h;
        let mean_epoch = mean_run_length(&histogram.quantize(&snapshot)) * self.opts.dt;
        let theta = TruncatedPareto::calibrate_theta(mean_epoch, alpha);
        // The correlation cutoff is what the window can testify to:
        // its own span.
        let cutoff = (hurst.window().capacity() as f64 * self.opts.dt).max(theta * 8.0);
        QueueModel::try_new(
            marginal,
            TruncatedPareto::new(theta, alpha, cutoff),
            service,
            buffer,
        )
        .map_err(|e| EngineError::BadRequest(e.to_string()))
    }

    /// Answers a loss-bound query: refit if the cached model aged past
    /// `max_staleness` (donating the old warm state), then step the
    /// session until a provable bracket exists plus one query budget.
    pub fn loss_bound(&mut self, flow: &str, buffer: f64) -> Result<BoundAnswer, EngineError> {
        check_buffer(buffer)?;
        let key = (flow.to_string(), buffer.to_bits());
        let fresh = |c: &Cached| self.tick - c.model_tick <= self.opts.max_staleness;
        if !self.cache.get(&key).is_some_and(fresh) {
            let donor = self
                .cache
                .remove(&key)
                .and_then(|c| c.session.into_result())
                .map(|(_, warm)| warm);
            let model = self.fit_model(flow, buffer)?;
            let session = SolveSession::builder(&model)
                .options(&self.opts.solver)
                .donor(donor.as_ref())
                .build()
                .expect("serve profile options are valid");
            self.cache.insert(
                key.clone(),
                Cached {
                    model,
                    session,
                    model_tick: self.tick,
                },
            );
        }
        let cached = self.cache.get_mut(&key).expect("inserted above");
        let budget = self.opts.query_budget.max(1);
        // First make the answer provable (a seeded probe proves
        // nothing until it certifies or falls back), then spend one
        // query budget tightening it.
        while cached.session.bounds().is_none() && !cached.session.step_budget(budget) {}
        cached.session.step_budget(budget);
        let (lower, upper) = cached.session.bounds().expect("stepped to provable bounds");
        Ok(BoundAnswer {
            lower,
            upper,
            converged: cached.session.is_done(),
            staleness: self.tick - cached.model_tick,
            bins: cached.session.bins(),
            iterations: cached.session.iterations(),
        })
    }

    /// One-shot batch solve of the same model a [`Self::loss_bound`]
    /// query is answering from (the cached fit when fresh, a fresh fit
    /// otherwise) — the validation hook behind `Request::Solve`.
    pub fn batch_solve(&mut self, flow: &str, buffer: f64) -> Result<BoundAnswer, EngineError> {
        check_buffer(buffer)?;
        let key = (flow.to_string(), buffer.to_bits());
        let (model, staleness) = match self.cache.get(&key) {
            Some(c) if self.tick - c.model_tick <= self.opts.max_staleness => {
                (c.model.clone(), self.tick - c.model_tick)
            }
            _ => (self.fit_model(flow, buffer)?, 0),
        };
        let solution = SolveSession::builder(&model)
            .options(&self.opts.solver)
            .solve();
        Ok(BoundAnswer {
            lower: solution.lower,
            upper: solution.upper,
            converged: solution.converged,
            staleness,
            bins: solution.bins,
            iterations: solution.iterations,
        })
    }

    /// Finds the smallest buffer whose provable **upper** bound is at
    /// or below `target_loss`: geometric doubling to bracket, then
    /// bisection. Answers are conservative by construction (an upper
    /// bound that holds even for degraded solves).
    pub fn provision(&mut self, flow: &str, target_loss: f64) -> Result<Response, EngineError> {
        if !(target_loss.is_finite() && 0.0 < target_loss && target_loss < 1.0) {
            return Err(EngineError::BadRequest(format!(
                "target_loss must lie in (0, 1), got {target_loss}"
            )));
        }
        // Start at one tick's worth of drained backlog — always a
        // positive, physically meaningful buffer.
        let service = self
            .flows
            .get(flow)
            .ok_or_else(|| EngineError::UnknownFlow(flow.to_string()))?
            .spec()
            .service;
        let start = service * self.opts.dt;
        let base = self.fit_model(flow, start)?;
        let mut solves = 0u64;
        let mut solve_at = |buffer: f64| {
            solves += 1;
            SolveSession::builder(&base.with_buffer(buffer))
                .options(&self.opts.solver)
                .solve()
        };
        let mut hi = start;
        let mut sol = solve_at(hi);
        let mut lo = 0.0;
        let mut doublings = 0;
        while sol.upper > target_loss {
            doublings += 1;
            if doublings > 40 {
                return Err(EngineError::Unsatisfiable(format!(
                    "no buffer up to {hi} reaches loss {target_loss}"
                )));
            }
            lo = hi;
            hi *= 2.0;
            sol = solve_at(hi);
        }
        let mut best = (hi, sol.upper);
        for _ in 0..12 {
            let mid = 0.5 * (lo + hi);
            if mid <= lo || mid >= hi {
                break;
            }
            let sol = solve_at(mid);
            if sol.upper <= target_loss {
                hi = mid;
                best = (mid, sol.upper);
            } else {
                lo = mid;
            }
        }
        Ok(Response::Provision {
            buffer: best.0,
            upper: best.1,
            solves,
        })
    }

    /// Spends up to one query budget advancing the stalest unfinished
    /// cached session — the idle work the server loop runs between
    /// connections so bounds keep tightening without queries.
    /// Returns whether any work was done.
    pub fn idle_refine(&mut self) -> bool {
        let target = self
            .cache
            .values_mut()
            .filter(|c| !c.session.is_done())
            .min_by_key(|c| c.model_tick);
        match target {
            Some(c) => {
                c.session.step_budget(self.opts.query_budget.max(1));
                true
            }
            None => false,
        }
    }
}

fn check_buffer(buffer: f64) -> Result<(), EngineError> {
    if buffer.is_finite() && buffer > 0.0 {
        Ok(())
    } else {
        Err(EngineError::BadRequest(format!(
            "buffer must be finite and positive, got {buffer}"
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::Request;

    fn quick_options() -> EngineOptions {
        EngineOptions {
            dt: 0.1,
            window: 64,
            refresh_every: 16,
            max_staleness: 64,
            query_budget: 512,
            ..EngineOptions::default()
        }
    }

    fn markov_engine() -> Engine {
        let spec = crate::flow::FlowSpec::parse(
            "m,family=markov,mean=0.05,low=2.0,high=14.0,service=10.0",
        )
        .unwrap();
        Engine::new(quick_options(), vec![spec], 11)
    }

    fn warmed_markov_engine() -> Engine {
        let mut engine = markov_engine();
        for _ in 0..256 {
            engine.tick();
        }
        engine
    }

    #[test]
    fn unwarmed_and_unknown_flows_are_typed_errors() {
        let mut engine = markov_engine();
        assert!(matches!(
            engine.loss_bound("nope", 1.0),
            Err(EngineError::UnknownFlow(_))
        ));
        assert!(matches!(
            engine.loss_bound("m", 1.0),
            Err(EngineError::NotWarmed { .. })
        ));
        assert!(matches!(
            engine.loss_bound("m", f64::NAN),
            Err(EngineError::BadRequest(_))
        ));
        // The roster still answers while cold.
        let Response::Status { tick, flows } = engine.status() else {
            panic!("expected status");
        };
        assert_eq!(tick, 0);
        assert_eq!(flows.len(), 1);
        assert!(!flows[0].warmed);
    }

    #[test]
    fn degenerate_flow_window_never_panics_the_daemon() {
        // The bugfix contract end to end: a window whose every dyadic
        // block is constant used to panic inside the estimators (and
        // take the daemon down mid-`tick`). Now the failed refresh is
        // swallowed, the flow simply stays cold, and every protocol
        // request still gets an answer line.
        let mut engine = markov_engine();
        let flow = engine.flows.get_mut("m").unwrap();
        for _ in 0..32 {
            flow.inject_sample(1.0);
        }
        for _ in 0..32 {
            flow.inject_sample(2.0);
        }
        // The window is full (64 samples) but no estimate exists, so
        // queries degrade to the typed cold-flow error, never a panic.
        assert!(matches!(
            engine.loss_bound("m", 1.0),
            Err(EngineError::NotWarmed { .. })
        ));
        let response = engine.handle(&Request::LossBound {
            flow: "m".to_string(),
            buffer: 1.0,
        });
        assert!(matches!(response, Response::Error { .. }));
        // The roster still answers and reports the failure honestly:
        // unwarmed, no estimate, and a staleness clock that has been
        // running since the first push.
        let Response::Status { flows, .. } = engine.status() else {
            panic!("expected status");
        };
        assert_eq!(flows[0].samples, 64);
        assert!(!flows[0].warmed);
        assert!(flows[0].hurst.is_none());
        assert_eq!(flows[0].hurst_staleness, 64);
        // Once varied samples displace the degenerate window the flow
        // warms up and answers for real.
        let flow = engine.flows.get_mut("m").unwrap();
        for i in 0..128 {
            flow.inject_sample(2.0 + (i % 7) as f64 * 0.5);
        }
        assert!(engine.loss_bound("m", 1.0).is_ok(), "flow never recovered");
    }

    #[test]
    fn constant_flood_keeps_the_stale_estimate_serving() {
        // A warmed flow whose source degenerates to a constant keeps
        // serving the last good estimate; the roster exposes the rising
        // staleness so operators can see the estimate is frozen.
        let mut engine = warmed_markov_engine();
        let flow = engine.flows.get_mut("m").unwrap();
        for _ in 0..256 {
            flow.inject_sample(5.0);
        }
        let Response::Status { flows, .. } = engine.status() else {
            panic!("expected status");
        };
        assert!(flows[0].warmed, "stale estimate must keep the flow warm");
        assert!(flows[0].hurst.is_some());
        let cadence = quick_options().refresh_every as u64;
        assert!(
            flows[0].hurst_staleness > cadence,
            "staleness {} should have breached the cadence {cadence}",
            flows[0].hurst_staleness
        );
        // Queries still answer over the wire — possibly from a stale
        // model, never via a panic.
        let response = engine.handle(&Request::LossBound {
            flow: "m".to_string(),
            buffer: 1.0,
        });
        assert!(
            !matches!(response, Response::Error { .. }),
            "stale-but-warm flow should still answer: {response:?}"
        );
    }

    #[test]
    fn incremental_queries_match_the_one_shot_batch_solve_bitwise() {
        // The tentpole contract end to end: drive the incremental
        // session to convergence through repeated queries, then a
        // batch solve of the engine's own fitted model must agree bit
        // for bit — the SolveSession equivalence, via the engine.
        let mut engine = warmed_markov_engine();
        let buffer = 0.5;
        let mut answer = engine.loss_bound("m", buffer).unwrap();
        for _ in 0..10_000 {
            if answer.converged {
                break;
            }
            answer = engine.loss_bound("m", buffer).unwrap();
        }
        assert!(answer.converged, "session never converged: {answer:?}");
        let batch = engine.batch_solve("m", buffer).unwrap();
        assert_eq!(answer.lower.to_bits(), batch.lower.to_bits());
        assert_eq!(answer.upper.to_bits(), batch.upper.to_bits());
        assert_eq!(answer.iterations, batch.iterations);
        assert_eq!(answer.bins, batch.bins);
        assert!(answer.lower <= answer.upper);
    }

    #[test]
    fn staleness_is_bounded_and_reported_honestly() {
        let mut engine = warmed_markov_engine();
        let max = engine.options().max_staleness;
        // Irregular tick/query interleaving: every answer's reported
        // staleness must stay within the bound, and the bound must be
        // honest (ticks since the fit, not since the last answer).
        let mut fitted_at = None;
        for step in 0..12u64 {
            for _ in 0..(step * 23 % (max + 7)) {
                engine.tick();
            }
            let answer = engine.loss_bound("m", 1.0).unwrap();
            assert!(
                answer.staleness <= max,
                "staleness {} breached bound {max}",
                answer.staleness
            );
            let now = engine.tick_count();
            match fitted_at {
                Some(at) if now - at <= max => {
                    assert_eq!(answer.staleness, now - at, "staleness misreported")
                }
                _ => fitted_at = Some(now - answer.staleness),
            }
        }
    }

    #[test]
    fn refit_after_staleness_reuses_the_window_not_the_old_model() {
        let mut engine = warmed_markov_engine();
        let first = engine.loss_bound("m", 1.0).unwrap();
        assert_eq!(first.staleness, 0);
        // Age the model past the bound; the next answer must be a
        // fresh fit (staleness 0 again).
        for _ in 0..=engine.options().max_staleness {
            engine.tick();
        }
        let second = engine.loss_bound("m", 1.0).unwrap();
        assert_eq!(second.staleness, 0, "stale model must be refitted");
    }

    #[test]
    fn provision_meets_the_target_and_is_monotone() {
        let mut engine = warmed_markov_engine();
        let answer = |engine: &mut Engine, target: f64| {
            match engine.provision("m", target).unwrap() {
                Response::Provision { buffer, upper, .. } => (buffer, upper),
                other => panic!("expected provision, got {other:?}"),
            }
        };
        let (loose_buffer, loose_upper) = answer(&mut engine, 1e-2);
        let (tight_buffer, tight_upper) = answer(&mut engine, 1e-4);
        assert!(loose_upper <= 1e-2);
        assert!(tight_upper <= 1e-4);
        assert!(
            tight_buffer >= loose_buffer,
            "tighter target {tight_buffer} < looser {loose_buffer}"
        );
        assert!(matches!(
            engine.provision("m", 1.5),
            Err(EngineError::BadRequest(_))
        ));
    }

    #[test]
    fn idle_refinement_converges_sessions_without_queries() {
        let mut engine = warmed_markov_engine();
        let first = engine.loss_bound("m", 0.5).unwrap();
        if !first.converged {
            for _ in 0..10_000 {
                if !engine.idle_refine() {
                    break;
                }
            }
        }
        // All cached sessions are now done: idle_refine reports no
        // work left, and the next query answers from the converged
        // session (staleness still counted from the original fit).
        assert!(!engine.idle_refine());
        let answer = engine.loss_bound("m", 0.5).unwrap();
        assert!(answer.converged);
    }

    #[test]
    fn handle_maps_errors_onto_the_wire() {
        let mut engine = markov_engine();
        let response = engine.handle(&Request::LossBound {
            flow: "ghost".to_string(),
            buffer: 1.0,
        });
        match response {
            Response::Error { message } => assert!(message.contains("ghost")),
            other => panic!("expected error, got {other:?}"),
        }
        assert_eq!(engine.query_count(), 1);
    }
}
