//! The daemon's wire protocol: one JSON line per request, one per
//! response, one request per connection.
//!
//! The framing follows the sweep coordinator's protocol exactly
//! (connection-per-request over localhost TCP or a Unix socket, each
//! side writing one newline-terminated JSON object built with the
//! in-tree JSON layer) so the two daemons share the `lrd-net`
//! transport and the same failure model: a connection dying at any
//! byte loses nothing, because the daemon's authoritative state — the
//! per-flow windows and the solve-session cache — never leaves the
//! process. Clients simply retry.

use lrd_obs::{parse_json, write_json_f64, write_json_string, Json};

/// A client-to-daemon message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Ask for the tick counter and the per-flow roster.
    Status,
    /// Ask for the freshest provable loss-rate bracket of `flow` at
    /// buffer size `buffer`, refined incrementally under the daemon's
    /// staleness contract.
    LossBound {
        /// The flow name (as registered with `--flow`).
        flow: String,
        /// Buffer size in Mb.
        buffer: f64,
    },
    /// Ask for the smallest buffer whose provable upper loss bound is
    /// at or below `target_loss`.
    Provision {
        /// The flow name.
        flow: String,
        /// Target loss rate in `(0, 1)`.
        target_loss: f64,
    },
    /// Ask for a *one-shot batch solve* of the daemon's currently
    /// fitted model for `(flow, buffer)` — the validation hook: once
    /// the incremental session behind [`Request::LossBound`] has
    /// converged, the two answers must agree bit for bit (the
    /// `SolveSession` equivalence contract, live over the wire).
    Solve {
        /// The flow name.
        flow: String,
        /// Buffer size in Mb.
        buffer: f64,
    },
    /// Shut the daemon down gracefully (flushes telemetry).
    Shutdown,
}

impl Request {
    /// The wire discriminant (also the telemetry span tag).
    pub fn kind(&self) -> &'static str {
        match self {
            Request::Status => "status",
            Request::LossBound { .. } => "loss_bound",
            Request::Provision { .. } => "provision",
            Request::Solve { .. } => "solve",
            Request::Shutdown => "shutdown",
        }
    }

    /// Renders the request as one protocol line.
    pub fn to_line(&self) -> String {
        let mut out = String::from("{\"kind\":");
        match self {
            Request::Status => out.push_str("\"status\""),
            Request::LossBound { flow, buffer } => {
                out.push_str("\"loss_bound\",\"flow\":");
                write_json_string(&mut out, flow);
                out.push_str(",\"buffer\":");
                write_json_f64(&mut out, *buffer);
            }
            Request::Provision { flow, target_loss } => {
                out.push_str("\"provision\",\"flow\":");
                write_json_string(&mut out, flow);
                out.push_str(",\"target_loss\":");
                write_json_f64(&mut out, *target_loss);
            }
            Request::Solve { flow, buffer } => {
                out.push_str("\"solve\",\"flow\":");
                write_json_string(&mut out, flow);
                out.push_str(",\"buffer\":");
                write_json_f64(&mut out, *buffer);
            }
            Request::Shutdown => out.push_str("\"shutdown\""),
        }
        out.push('}');
        out
    }

    /// Parses one protocol line into a request.
    pub fn parse(line: &str) -> Result<Request, String> {
        let doc = parse_json(line).map_err(|e| format!("bad request: {e}"))?;
        let str_field = |name: &str| {
            doc.get(name)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("request missing {name:?}"))
        };
        let num_field = |name: &str| {
            doc.get(name)
                .and_then(Json::as_num)
                .ok_or_else(|| format!("request missing {name:?}"))
        };
        match doc.get("kind").and_then(Json::as_str) {
            Some("status") => Ok(Request::Status),
            Some("loss_bound") => Ok(Request::LossBound {
                flow: str_field("flow")?,
                buffer: num_field("buffer")?,
            }),
            Some("provision") => Ok(Request::Provision {
                flow: str_field("flow")?,
                target_loss: num_field("target_loss")?,
            }),
            Some("solve") => Ok(Request::Solve {
                flow: str_field("flow")?,
                buffer: num_field("buffer")?,
            }),
            Some("shutdown") => Ok(Request::Shutdown),
            other => Err(format!("unknown request kind {other:?}")),
        }
    }
}

/// One roster row in a status response: the daemon's live view of a
/// flow.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowStatus {
    /// The flow name.
    pub name: String,
    /// The source family tag (`pareto`, `markov`, `onoff`).
    pub family: String,
    /// Samples currently held in the sliding window.
    pub samples: u64,
    /// Mean of the window samples (Mb/s).
    pub mean_rate: f64,
    /// The pooled streaming Hurst estimate, once the window has filled
    /// with non-constant data.
    pub hurst: Option<f64>,
    /// Pushes absorbed since the Hurst estimate was last refreshed.
    /// Grows past the refresh cadence when the window degenerates (for
    /// example every block constant) and the daemon keeps serving the
    /// stale cached estimate instead of panicking.
    pub hurst_staleness: u64,
    /// Whether the flow can answer model queries yet (window full and
    /// an estimate cached).
    pub warmed: bool,
}

/// A daemon-to-client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Tick counter and flow roster.
    Status {
        /// Arrival ticks absorbed so far.
        tick: u64,
        /// Per-flow roster.
        flows: Vec<FlowStatus>,
    },
    /// A provable loss-rate bracket (answers both `LossBound` and
    /// `Solve`).
    Bound {
        /// Provable lower bound on the loss rate.
        lower: f64,
        /// Provable upper bound on the loss rate.
        upper: f64,
        /// Whether the session behind the answer has converged.
        converged: bool,
        /// Ticks since the answering model was fitted from the window.
        staleness: u64,
        /// Grid resolution of the session.
        bins: u64,
        /// Iterations the session has spent so far.
        iterations: u64,
    },
    /// A provisioning verdict.
    Provision {
        /// The smallest buffer found with `upper <= target_loss` (Mb).
        buffer: f64,
        /// The provable upper loss bound at that buffer.
        upper: f64,
        /// One-shot solves spent on the search.
        solves: u64,
    },
    /// Shutdown acknowledged; the daemon is exiting.
    Bye,
    /// The request could not be answered.
    Error {
        /// Human-readable reason.
        message: String,
    },
}

impl Response {
    /// Renders the response as one protocol line.
    pub fn to_line(&self) -> String {
        let mut out = String::from("{\"kind\":");
        match self {
            Response::Status { tick, flows } => {
                out.push_str(&format!("\"status\",\"tick\":{tick},\"flows\":["));
                for (i, f) in flows.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str("{\"name\":");
                    write_json_string(&mut out, &f.name);
                    out.push_str(",\"family\":");
                    write_json_string(&mut out, &f.family);
                    out.push_str(&format!(",\"samples\":{},\"mean_rate\":", f.samples));
                    write_json_f64(&mut out, f.mean_rate);
                    out.push_str(",\"hurst\":");
                    match f.hurst {
                        Some(h) => write_json_f64(&mut out, h),
                        None => out.push_str("null"),
                    }
                    out.push_str(&format!(
                        ",\"hurst_staleness\":{},\"warmed\":{}}}",
                        f.hurst_staleness, f.warmed
                    ));
                }
                out.push(']');
            }
            Response::Bound {
                lower,
                upper,
                converged,
                staleness,
                bins,
                iterations,
            } => {
                out.push_str("\"bound\",\"lower\":");
                write_json_f64(&mut out, *lower);
                out.push_str(",\"upper\":");
                write_json_f64(&mut out, *upper);
                out.push_str(&format!(
                    ",\"converged\":{converged},\"staleness\":{staleness},\
                     \"bins\":{bins},\"iterations\":{iterations}"
                ));
            }
            Response::Provision {
                buffer,
                upper,
                solves,
            } => {
                out.push_str("\"provision\",\"buffer\":");
                write_json_f64(&mut out, *buffer);
                out.push_str(",\"upper\":");
                write_json_f64(&mut out, *upper);
                out.push_str(&format!(",\"solves\":{solves}"));
            }
            Response::Bye => out.push_str("\"bye\""),
            Response::Error { message } => {
                out.push_str("\"error\",\"message\":");
                write_json_string(&mut out, message);
            }
        }
        out.push('}');
        out
    }

    /// Parses one protocol line into a response.
    pub fn parse(line: &str) -> Result<Response, String> {
        let doc = parse_json(line).map_err(|e| format!("bad response: {e}"))?;
        let num_field = |name: &str| {
            doc.get(name)
                .and_then(Json::as_num)
                .ok_or_else(|| format!("response missing {name:?}"))
        };
        let int_field = |name: &str| {
            doc.get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("response missing {name:?}"))
        };
        match doc.get("kind").and_then(Json::as_str) {
            Some("status") => {
                let mut flows = Vec::new();
                for f in doc
                    .get("flows")
                    .and_then(Json::as_array)
                    .ok_or("status missing flow roster")?
                {
                    flows.push(FlowStatus {
                        name: f
                            .get("name")
                            .and_then(Json::as_str)
                            .ok_or("roster row missing name")?
                            .to_string(),
                        family: f
                            .get("family")
                            .and_then(Json::as_str)
                            .ok_or("roster row missing family")?
                            .to_string(),
                        samples: f.get("samples").and_then(Json::as_u64).unwrap_or(0),
                        mean_rate: f.get("mean_rate").and_then(Json::as_num).unwrap_or(0.0),
                        hurst: f.get("hurst").and_then(Json::as_num),
                        hurst_staleness: f
                            .get("hurst_staleness")
                            .and_then(Json::as_u64)
                            .unwrap_or(0),
                        warmed: f.get("warmed").and_then(Json::as_bool).unwrap_or(false),
                    });
                }
                Ok(Response::Status {
                    tick: int_field("tick")?,
                    flows,
                })
            }
            Some("bound") => Ok(Response::Bound {
                lower: num_field("lower")?,
                upper: num_field("upper")?,
                converged: doc
                    .get("converged")
                    .and_then(Json::as_bool)
                    .ok_or("bound missing converged")?,
                staleness: int_field("staleness")?,
                bins: int_field("bins")?,
                iterations: int_field("iterations")?,
            }),
            Some("provision") => Ok(Response::Provision {
                buffer: num_field("buffer")?,
                upper: num_field("upper")?,
                solves: int_field("solves")?,
            }),
            Some("bye") => Ok(Response::Bye),
            Some("error") => Ok(Response::Error {
                message: doc
                    .get("message")
                    .and_then(Json::as_str)
                    .ok_or("error missing message")?
                    .to_string(),
            }),
            other => Err(format!("unknown response kind {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let cases = vec![
            Request::Status,
            Request::LossBound {
                flow: "mtv".to_string(),
                buffer: 2.5,
            },
            Request::Provision {
                flow: "flow \"quoted\"".to_string(),
                target_loss: 1e-4,
            },
            Request::Solve {
                flow: "bc".to_string(),
                buffer: 0.125,
            },
            Request::Shutdown,
        ];
        for req in cases {
            let line = req.to_line();
            assert_eq!(Request::parse(&line).unwrap(), req, "{line}");
        }
        assert!(Request::parse("{\"kind\":\"gimme\"}").is_err());
        assert!(Request::parse("not json").is_err());
        assert!(Request::parse("{\"kind\":\"loss_bound\",\"flow\":\"x\"}").is_err());
    }

    #[test]
    fn responses_round_trip() {
        let cases = vec![
            Response::Status {
                tick: 4096,
                flows: vec![
                    FlowStatus {
                        name: "mtv".to_string(),
                        family: "pareto".to_string(),
                        samples: 1024,
                        mean_rate: 8.125,
                        hurst: Some(0.8125),
                        hurst_staleness: 3,
                        warmed: true,
                    },
                    FlowStatus {
                        name: "cold".to_string(),
                        family: "onoff".to_string(),
                        samples: 12,
                        mean_rate: 0.25,
                        hurst: None,
                        hurst_staleness: 0,
                        warmed: false,
                    },
                ],
            },
            Response::Status {
                tick: 0,
                flows: vec![],
            },
            Response::Bound {
                lower: 1.25e-3,
                upper: 2.5e-3,
                converged: true,
                staleness: 17,
                bins: 4096,
                iterations: 12345,
            },
            Response::Provision {
                buffer: 3.5,
                upper: 9.5e-5,
                solves: 21,
            },
            Response::Bye,
            Response::Error {
                message: "unknown flow \"nope\"".to_string(),
            },
        ];
        for resp in cases {
            let line = resp.to_line();
            assert_eq!(Response::parse(&line).unwrap(), resp, "{line}");
        }
        assert!(Response::parse("{\"kind\":\"bound\"}").is_err());
        assert!(Response::parse("{\"kind\":\"status\"}").is_err());
    }

    #[test]
    fn float_fields_round_trip_exactly() {
        // write_json_f64 renders the shortest exact decimal, so a
        // bound crossing the wire and coming back compares bit-equal —
        // the property the ci smoke's session-vs-batch diff rests on.
        let exact = Response::Bound {
            lower: 0.1 + 0.2,
            upper: f64::MIN_POSITIVE,
            converged: false,
            staleness: 0,
            bins: 2,
            iterations: 1,
        };
        let Response::Bound { lower, upper, .. } = Response::parse(&exact.to_line()).unwrap()
        else {
            panic!("expected bound");
        };
        assert_eq!(lower.to_bits(), (0.1f64 + 0.2).to_bits());
        assert_eq!(upper.to_bits(), f64::MIN_POSITIVE.to_bits());
    }
}
