//! The online loss-bound daemon (and its one-shot query client).
//!
//! Daemon mode:
//!
//! ```text
//! lrd-serve --flow mtv,family=pareto --flow bc,family=markov \
//!     [--listen 127.0.0.1:7080 | --listen unix:/tmp/lrd.sock] \
//!     [--tick-ms 10] [--warmup-ticks 0] [--seed 1] \
//!     [--window 1024] [--refresh-every 64] [--max-staleness 512] \
//!     [--query-budget 2048] [--telemetry <path>] \
//!     [--telemetry-summary[=<path>]]
//! ```
//!
//! Drives the declared flows open-loop (one arrival tick per
//! `--tick-ms`; `0` freezes the clock so state is a pure function of
//! `--warmup-ticks` and `--seed`), prints `listening <endpoint>` once
//! bound, and answers JSON-line queries until a `shutdown` request or
//! `SIGTERM`/`SIGINT` — either way flushing telemetry on exit.
//!
//! Client mode sends one request line and prints the response line:
//!
//! ```text
//! lrd-serve --ask 127.0.0.1:7080 --request '{"kind":"status"}'
//! ```

use std::io::Write;
use std::process::ExitCode;
use std::time::Duration;

use lrd_cli::{require_value, CommonArgs};
use lrd_net::{connect, recv_line, send_line, Endpoint, Listener};
use lrd_serve::engine::{Engine, EngineOptions};
use lrd_serve::flow::FlowSpec;
use lrd_serve::proto::Request;
use lrd_serve::{serve, signal};

struct Args {
    listen: Endpoint,
    flows: Vec<FlowSpec>,
    tick: Option<Duration>,
    warmup_ticks: u64,
    seed: u64,
    opts: EngineOptions,
    ask: Option<(Endpoint, String)>,
    common: CommonArgs,
}

fn parse_args() -> Result<Args, String> {
    let mut listen = Endpoint::Tcp("127.0.0.1:0".to_string());
    let mut flows = Vec::new();
    let mut tick_ms = 10u64;
    let mut warmup_ticks = 0u64;
    let mut seed = 1u64;
    let mut opts = EngineOptions::default();
    let mut ask = None;
    let mut request = None;

    let integer = |flag: &str, v: &str| -> Result<u64, String> {
        v.parse::<u64>()
            .map_err(|_| format!("{flag} requires a non-negative integer, got `{v}`"))
    };
    let positive = |flag: &str, v: &str| -> Result<u64, String> {
        integer(flag, v)?
            .checked_sub(1)
            .map(|n| n + 1)
            .ok_or_else(|| format!("{flag} must be positive"))
    };
    let endpoint = |v: &str| -> Result<Endpoint, lrd_cli::CliError> {
        Ok(Endpoint::parse(&lrd_cli::parse_endpoint(v)?)
            .expect("parse_endpoint validated the grammar"))
    };
    let common = CommonArgs::parse_with(std::env::args().skip(1), |arg, args| {
        match arg {
            "--help" | "-h" => {
                println!(
                    "usage: lrd-serve --flow <name>,family=<pareto|markov|onoff>[,k=v...]...\n\
                     \u{20}        [--listen <endpoint>] [--tick-ms <n>] [--warmup-ticks <n>]\n\
                     \u{20}        [--seed <n>] [--window <n>] [--refresh-every <n>]\n\
                     \u{20}        [--max-staleness <n>] [--query-budget <n>]\n\
                     \u{20}        [--telemetry <path>] [--telemetry-summary[=<path>]]\n\
                     \u{20}  or:  lrd-serve --ask <endpoint> --request <json-line>\n\
                     \n\
                     Serves loss-bound queries over live synthetic flows. Prints\n\
                     `listening <endpoint>` on stdout once bound; answers JSON-line\n\
                     requests (status, loss_bound, solve, provision, shutdown) one\n\
                     per connection. --tick-ms 0 freezes the arrival clock so the\n\
                     daemon's state is exactly --warmup-ticks deterministic ticks."
                );
                std::process::exit(0);
            }
            "--listen" => listen = endpoint(&require_value("--listen", args)?)?,
            "--flow" => {
                let spec = require_value("--flow", args)?;
                flows.push(FlowSpec::parse(&spec).map_err(invalid)?);
            }
            "--tick-ms" => {
                tick_ms = integer("--tick-ms", &require_value("--tick-ms", args)?).map_err(invalid)?
            }
            "--warmup-ticks" => {
                let v = require_value("--warmup-ticks", args)?;
                warmup_ticks = integer("--warmup-ticks", &v).map_err(invalid)?;
            }
            "--seed" => seed = integer("--seed", &require_value("--seed", args)?).map_err(invalid)?,
            "--window" => {
                let v = require_value("--window", args)?;
                opts.window = positive("--window", &v).map_err(invalid)? as usize;
            }
            "--refresh-every" => {
                let v = require_value("--refresh-every", args)?;
                opts.refresh_every = positive("--refresh-every", &v).map_err(invalid)? as usize;
            }
            "--max-staleness" => {
                let v = require_value("--max-staleness", args)?;
                opts.max_staleness = integer("--max-staleness", &v).map_err(invalid)?;
            }
            "--query-budget" => {
                let v = require_value("--query-budget", args)?;
                opts.query_budget = positive("--query-budget", &v).map_err(invalid)? as usize;
            }
            "--ask" => ask = Some(endpoint(&require_value("--ask", args)?)?),
            "--request" => request = Some(require_value("--request", args)?),
            _ => return Ok(false),
        }
        Ok(true)
    })
    .map_err(|e| e.to_string())?;

    // The shared worker/sweep flags make no sense on a daemon: reject
    // instead of silently ignoring.
    for (set, flag) in [
        (common.quick, "--quick"),
        (common.shard.is_some(), "--shard"),
        (common.checkpoint.is_some(), "--checkpoint"),
        (common.assignment.is_some(), "--assignment"),
        (common.steal.is_some(), "--steal"),
    ] {
        if set {
            return Err(format!("{flag} is a sweep flag; lrd-serve does not accept it"));
        }
    }

    let ask = match (ask, request) {
        (Some(endpoint), Some(request)) => Some((endpoint, request)),
        (None, None) => None,
        _ => return Err("--ask and --request go together".to_string()),
    };
    if ask.is_none() && flows.is_empty() {
        return Err("at least one --flow is required (or use --ask)".to_string());
    }
    Ok(Args {
        listen,
        flows,
        tick: (tick_ms > 0).then(|| Duration::from_millis(tick_ms)),
        warmup_ticks,
        seed,
        opts,
        ask,
        common,
    })
}

/// Adapts a free-form validation message to the extension hook's
/// [`lrd_cli::CliError`] by reusing the unknown-argument shape (the
/// message already names the flag and value).
fn invalid(message: String) -> lrd_cli::CliError {
    lrd_cli::CliError::UnknownArgument(message)
}

/// Client mode: one request line out, one response line printed.
fn ask(endpoint: &Endpoint, request: &str) -> Result<(), String> {
    // Parse locally first so typos fail with a useful message instead
    // of a round trip.
    Request::parse(request)?;
    let mut conn = connect(endpoint).map_err(|e| format!("connect {endpoint}: {e}"))?;
    send_line(conn.as_mut(), request).map_err(|e| e.to_string())?;
    let response = recv_line(conn.as_mut()).map_err(|e| e.to_string())?;
    println!("{response}");
    Ok(())
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    if let Some((endpoint, request)) = &args.ask {
        return ask(endpoint, request);
    }
    let _telemetry = args.common.install_telemetry().map_err(|e| e.to_string())?;
    signal::install();

    let flow_count = args.flows.len();
    let mut engine = Engine::new(args.opts, args.flows, args.seed);
    for _ in 0..args.warmup_ticks {
        engine.tick();
    }

    let listener = Listener::bind(&args.listen).map_err(|e| format!("bind {}: {e}", args.listen))?;
    // The one stdout line: orchestrators read the resolved endpoint
    // (e.g. after --listen 127.0.0.1:0) to hand to clients.
    println!("listening {}", listener.local_endpoint());
    std::io::stdout().flush().map_err(|e| e.to_string())?;
    eprintln!(
        "lrd-serve: {} flow(s), tick {}, warmed up {} tick(s)",
        flow_count,
        match args.tick {
            Some(t) => format!("{} ms", t.as_millis()),
            None => "frozen".to_string(),
        },
        args.warmup_ticks,
    );

    let stats = serve(&listener, &mut engine, args.tick).map_err(|e| e.to_string())?;
    eprintln!(
        "lrd-serve: done — {} tick(s), {} query(ies)",
        stats.ticks, stats.queries
    );
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
