//! Flow specifications and the open-loop arrival ticker.
//!
//! A daemon instance watches one or more **flows**, each a synthetic
//! source drawn from the [`TrafficModel`] families, declared on the
//! command line as
//!
//! ```text
//! --flow <name>,family=pareto[,hurst=0.8][,theta=0.05][,cutoff=1.0]
//!                [,low=2.0][,high=14.0][,service=<rate>]
//! --flow <name>,family=markov[,mean=0.1][,low=2.0][,high=14.0][,service=<rate>]
//! --flow <name>,family=onoff[,peak=1.0][,on_alpha=1.4][,on_min=0.05]
//!                [,off_alpha=1.4][,off_min=0.15][,service=<rate>]
//! ```
//!
//! The renewal families redraw their rate from a two-point marginal
//! `{low, high}` (equiprobable — the paper's reference marginal);
//! `service` defaults to `mean_rate / 0.8`, i.e. 80% utilization.
//!
//! [`Flow`] drives the source **open-loop**: each tick integrates the
//! piecewise-constant rate path over one `dt` interval (carrying the
//! in-progress segment across ticks) and pushes the bin-average rate
//! into a [`StreamingHurst`] window. The engine fits queueing models
//! from that window alone — the daemon never peeks at the generator's
//! true parameters when answering queries, exactly like an operator
//! estimating from a measured trace.

use lrd_rng::{rngs::SmallRng, SeedableRng};
use lrd_stats::{StreamingHurst, MIN_HURST_WINDOW};
use lrd_traffic::{FluidSource, Marginal, OnOffSource, TrafficModel, TrafficStream};
use lrd_traffic::{Exponential, TruncatedPareto};

/// A parsed `--flow` declaration.
#[derive(Debug, Clone)]
pub struct FlowSpec {
    /// The flow's name (the query key).
    pub name: String,
    /// The synthetic source behind the flow.
    pub model: TrafficModel,
    /// The service rate the flow's queue drains at (Mb/s).
    pub service: f64,
}

/// Splits `key=value`, collecting defaults for the keys a family
/// understands and rejecting the rest.
struct FieldSet<'a> {
    name: &'a str,
    pairs: Vec<(&'a str, f64)>,
}

impl<'a> FieldSet<'a> {
    fn take(&mut self, key: &str) -> Option<f64> {
        let at = self.pairs.iter().position(|(k, _)| *k == key)?;
        Some(self.pairs.remove(at).1)
    }

    fn finish(self) -> Result<(), String> {
        match self.pairs.first() {
            Some((key, _)) => Err(format!(
                "flow {:?}: unknown field {key:?} for this family",
                self.name
            )),
            None => Ok(()),
        }
    }
}

impl FlowSpec {
    /// Parses one `--flow` value.
    pub fn parse(spec: &str) -> Result<FlowSpec, String> {
        let mut parts = spec.split(',');
        let name = parts.next().unwrap_or_default().trim();
        if name.is_empty() {
            return Err("flow spec needs a leading name".to_string());
        }
        let mut family = None;
        let mut pairs = Vec::new();
        for part in parts {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("flow {name:?}: expected key=value, got {part:?}"))?;
            if key == "family" {
                family = Some(value.to_string());
                continue;
            }
            let value: f64 = value
                .parse()
                .map_err(|_| format!("flow {name:?}: {key} is not a number: {value:?}"))?;
            if !value.is_finite() || value <= 0.0 {
                return Err(format!("flow {name:?}: {key} must be positive and finite"));
            }
            pairs.push((key, value));
        }
        let mut fields = FieldSet { name, pairs };
        let family = family.ok_or_else(|| format!("flow {name:?}: missing family=..."))?;
        let service = fields.take("service");
        let model = match family.as_str() {
            "pareto" => {
                let hurst = fields.take("hurst").unwrap_or(0.8);
                let theta = fields.take("theta").unwrap_or(0.05);
                let cutoff = fields.take("cutoff").unwrap_or(1.0);
                if !(0.5 < hurst && hurst < 1.0) {
                    return Err(format!("flow {name:?}: hurst must lie in (1/2, 1)"));
                }
                TrafficModel::Pareto(FluidSource::new(
                    two_point(&mut fields)?,
                    TruncatedPareto::from_hurst(hurst, theta, cutoff),
                ))
            }
            "markov" => {
                let mean = fields.take("mean").unwrap_or(0.1);
                TrafficModel::Markov(FluidSource::new(
                    two_point(&mut fields)?,
                    Exponential::new(mean),
                ))
            }
            "onoff" => {
                let peak = fields.take("peak").unwrap_or(1.0);
                let on_alpha = fields.take("on_alpha").unwrap_or(1.4);
                let on_min = fields.take("on_min").unwrap_or(0.05);
                let off_alpha = fields.take("off_alpha").unwrap_or(1.4);
                let off_min = fields.take("off_min").unwrap_or(0.15);
                if on_alpha <= 1.0 || off_alpha <= 1.0 {
                    return Err(format!("flow {name:?}: sojourn shapes must exceed 1"));
                }
                TrafficModel::OnOff(OnOffSource::new(peak, on_alpha, on_min, off_alpha, off_min))
            }
            other => {
                return Err(format!(
                    "flow {name:?}: unknown family {other:?} \
                     (expected pareto, markov or onoff)"
                ))
            }
        };
        fields.finish()?;
        let service = service.unwrap_or(model.mean_rate() / 0.8);
        if service <= model.mean_rate() {
            return Err(format!(
                "flow {name:?}: service rate {service} does not exceed the \
                 mean arrival rate {} (the queue would be unstable)",
                model.mean_rate()
            ));
        }
        Ok(FlowSpec {
            name: name.to_string(),
            model,
            service,
        })
    }
}

/// The equiprobable two-point marginal of the renewal families.
fn two_point(fields: &mut FieldSet<'_>) -> Result<Marginal, String> {
    let low = fields.take("low").unwrap_or(2.0);
    let high = fields.take("high").unwrap_or(14.0);
    if low >= high {
        return Err(format!(
            "flow {:?}: low ({low}) must be below high ({high})",
            fields.name
        ));
    }
    Ok(Marginal::new(&[low, high], &[0.5, 0.5]))
}

/// One live flow: the segment stream, its private RNG, and the
/// sliding-window statistics the engine fits models from.
#[derive(Debug)]
pub struct Flow {
    spec: FlowSpec,
    stream: TrafficStream,
    rng: SmallRng,
    hurst: StreamingHurst,
    /// Rate of the in-progress segment.
    seg_rate: f64,
    /// Remaining duration of the in-progress segment (seconds).
    seg_left: f64,
}

impl Flow {
    /// Instantiates a flow with its own deterministic RNG stream.
    pub fn new(spec: FlowSpec, seed: u64, window: usize, refresh_every: usize) -> Flow {
        let mut rng = SmallRng::seed_from_u64(seed);
        let stream = spec.model.stream(&mut rng);
        Flow {
            spec,
            stream,
            rng,
            hurst: StreamingHurst::new(window.max(MIN_HURST_WINDOW), refresh_every),
            seg_rate: 0.0,
            seg_left: 0.0,
        }
    }

    /// The flow's declaration.
    pub fn spec(&self) -> &FlowSpec {
        &self.spec
    }

    /// The streaming window statistics.
    pub fn hurst(&self) -> &StreamingHurst {
        &self.hurst
    }

    /// Whether the flow has enough data to fit a model: a full window
    /// with a cached Hurst estimate.
    pub fn warmed(&self) -> bool {
        self.hurst.current().is_some()
    }

    /// Absorbs one `dt`-second arrival tick: integrates the
    /// piecewise-constant rate path over the interval (drawing new
    /// segments as needed, carrying the tail of the last one into the
    /// next tick) and pushes the bin-average rate into the window.
    pub fn tick(&mut self, dt: f64) {
        let mut remaining = dt;
        let mut work = 0.0;
        while remaining > 0.0 {
            if self.seg_left <= 0.0 {
                let seg = self.stream.next_segment(&mut self.rng);
                self.seg_rate = seg.rate;
                self.seg_left = seg.duration;
            }
            let take = self.seg_left.min(remaining);
            work += take * self.seg_rate;
            self.seg_left -= take;
            remaining -= take;
        }
        self.hurst.push(work / dt);
    }

    /// Pushes one rate sample straight into the window, bypassing the
    /// segment stream. Test seam: lets the engine tests drive a flow's
    /// window into exact degenerate shapes (constant, every-block-
    /// constant) that the synthetic sources never emit on their own.
    #[cfg(test)]
    pub(crate) fn inject_sample(&mut self, v: f64) {
        self.hurst.push(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_parse_with_defaults_and_overrides() {
        let spec = FlowSpec::parse("mtv,family=pareto").unwrap();
        assert_eq!(spec.name, "mtv");
        assert_eq!(spec.model.family(), "pareto");
        assert!((spec.model.nominal_hurst() - 0.8).abs() < 1e-12);
        assert!((spec.service - spec.model.mean_rate() / 0.8).abs() < 1e-12);

        let spec = FlowSpec::parse("m,family=markov,mean=0.2,low=1.0,high=3.0,service=2.6")
            .unwrap();
        assert_eq!(spec.model.family(), "markov");
        assert!((spec.model.mean_rate() - 2.0).abs() < 1e-12);
        assert!((spec.service - 2.6).abs() < 1e-12);

        let spec = FlowSpec::parse("o,family=onoff,peak=2.0,on_alpha=1.2").unwrap();
        assert_eq!(spec.model.family(), "onoff");
        assert!((spec.model.nominal_hurst() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn malformed_specs_are_typed_errors() {
        for (bad, needle) in [
            ("", "leading name"),
            ("x", "missing family"),
            ("x,family=zipf", "unknown family"),
            ("x,family=pareto,bogus=1", "unknown field"),
            ("x,family=pareto,hurst=1.5", "hurst"),
            ("x,family=markov,mean=nope", "not a number"),
            ("x,family=markov,mean=-1", "positive"),
            ("x,family=markov,low=5,high=2", "below"),
            ("x,family=onoff,on_alpha=1.0,off_alpha=1.4", "exceed 1"),
            ("x,family=markov,service=0.1", "unstable"),
            ("x,family=pareto,hurst", "key=value"),
        ] {
            match FlowSpec::parse(bad) {
                Err(e) => assert!(
                    e.contains(needle),
                    "error for {bad:?} should mention {needle:?}, got {e:?}"
                ),
                Ok(s) => panic!("{bad:?} parsed: {s:?}"),
            }
        }
    }

    #[test]
    fn ticking_preserves_the_mean_rate() {
        // Integrating the segment stream into bins must conserve work:
        // over many ticks the bin-average mean approaches the source
        // mean rate.
        let spec = FlowSpec::parse("m,family=markov,mean=0.05").unwrap();
        let want = spec.model.mean_rate();
        let mut flow = Flow::new(spec, 7, 256, 64);
        let dt = 0.1;
        let (mut sum, mut n) = (0.0, 0u64);
        for _ in 0..20_000 {
            flow.tick(dt);
            n += 1;
            sum += flow.hurst().window().iter().last().unwrap();
        }
        let mean = sum / n as f64;
        assert!(
            (mean - want).abs() < 0.3,
            "ticked mean {mean} vs source mean {want}"
        );
        assert!(flow.warmed());
    }

    #[test]
    fn segments_carry_across_tick_boundaries() {
        // With dt far below the minimum segment duration, consecutive
        // ticks must reuse the in-progress segment rather than redraw:
        // the pushed samples repeat the segment rate exactly.
        let spec = FlowSpec::parse("p,family=pareto,theta=5.0,cutoff=50.0").unwrap();
        let mut flow = Flow::new(spec, 3, 64, 1);
        flow.tick(0.01);
        let first = flow.hurst().window().iter().last().unwrap();
        for _ in 0..10 {
            flow.tick(0.01);
            let v = flow.hurst().window().iter().last().unwrap();
            assert_eq!(v.to_bits(), first.to_bits(), "segment was redrawn mid-flight");
        }
    }
}
