//! Minimal async-signal-safe shutdown flag.
//!
//! The daemon must flush buffered telemetry on `SIGTERM`/`SIGINT`
//! rather than dying mid-line, but the workspace takes no external
//! dependencies — so this module installs a raw `signal(2)` handler
//! via the libc symbol `std` already links. The handler only stores an
//! [`AtomicBool`] (the one action that is async-signal-safe); the
//! server loop polls [`shutdown_requested`] between connections and
//! performs the actual teardown on its own thread.

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// Whether a termination signal has arrived (or [`request_shutdown`]
/// was called).
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// Raises the shutdown flag from ordinary code (tests, the server's
/// own `Shutdown` request path).
pub fn request_shutdown() {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Clears the process-global flag between in-process server tests.
#[doc(hidden)]
pub fn clear_for_tests() {
    SHUTDOWN.store(false, Ordering::SeqCst);
}

#[cfg(unix)]
mod imp {
    use super::SHUTDOWN;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn handle(_signum: i32) {
        SHUTDOWN.store(true, Ordering::SeqCst);
    }

    /// Routes `SIGINT` and `SIGTERM` to the shutdown flag.
    pub fn install() {
        let handler = handle as extern "C" fn(i32) as usize;
        unsafe {
            signal(SIGINT, handler);
            signal(SIGTERM, handler);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    /// No signal routing off Unix; `Shutdown` requests still work.
    pub fn install() {}
}

pub use imp::install;
