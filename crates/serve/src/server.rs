//! The poll loop: connections, arrival ticks, idle refinement.
//!
//! [`serve`] multiplexes three duties on one thread over a
//! non-blocking [`Listener`]:
//!
//! 1. **queries** — each accepted connection carries one JSON-line
//!    request and gets one JSON-line response (the `lrd-net`
//!    connection-per-request discipline);
//! 2. **ticks** — while the accept queue is empty, due arrival ticks
//!    are drained against the wall clock (or never, when the clock is
//!    frozen for deterministic runs);
//! 3. **refinement** — leftover idle time advances the stalest cached
//!    solve session, so bounds keep tightening between queries.
//!
//! The loop exits on a `Shutdown` request or a termination signal
//! (see [`crate::signal`]), flushing telemetry on the way out — and
//! roughly once a second while idle, so even a `SIGKILL` loses at most
//! a second of buffered events.

use std::io::{self, ErrorKind};
use std::time::{Duration, Instant};

use lrd_net::{recv_line, send_line, Conn, Listener};

use crate::engine::Engine;
use crate::proto::{Request, Response};
use crate::signal;

/// How long the loop naps when there is nothing to accept, tick or
/// refine.
const IDLE_NAP: Duration = Duration::from_millis(1);

/// How long after the last query the loop keeps polling hot instead
/// of napping. A client streaming queries connection-per-request
/// would otherwise eat one nap of latency per query; ten quiet
/// milliseconds mean the burst is over and the nap is free.
const BUSY_SPIN: Duration = Duration::from_millis(10);

/// Cadence of the idle telemetry flush.
const FLUSH_EVERY: Duration = Duration::from_secs(1);

/// Upper bound on ticks drained per loop pass, so a long stall ends in
/// a burst of bounded size instead of an unbounded catch-up spiral.
const MAX_TICK_DRAIN: u32 = 256;

/// What the loop did before it exited.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeStats {
    /// Arrival ticks absorbed.
    pub ticks: u64,
    /// Queries answered.
    pub queries: u64,
}

/// Runs the daemon loop until shutdown. `tick` is the arrival-tick
/// period; `None` freezes the clock (no ticks ever fire — the
/// deterministic mode `--tick-ms 0` selects).
pub fn serve(
    listener: &Listener,
    engine: &mut Engine,
    tick: Option<Duration>,
) -> io::Result<ServeStats> {
    let mut next_tick = tick.map(|period| Instant::now() + period);
    let mut next_flush = Instant::now() + FLUSH_EVERY;
    let mut last_query = Instant::now();
    loop {
        if signal::shutdown_requested() {
            break;
        }
        match listener.accept() {
            Ok(mut conn) => {
                let shutdown = answer(conn.as_mut(), engine);
                last_query = Instant::now();
                if shutdown {
                    signal::request_shutdown();
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                let mut worked = false;
                if let (Some(period), Some(due)) = (tick, next_tick.as_mut()) {
                    let mut drained = 0;
                    while Instant::now() >= *due && drained < MAX_TICK_DRAIN {
                        engine.tick();
                        *due += period;
                        drained += 1;
                    }
                    // A stall longer than the drain cap resynchronizes
                    // instead of replaying the backlog forever.
                    if drained == MAX_TICK_DRAIN {
                        *due = Instant::now() + period;
                    }
                    worked |= drained > 0;
                }
                worked |= engine.idle_refine();
                if Instant::now() >= next_flush {
                    lrd_obs::flush_current();
                    next_flush = Instant::now() + FLUSH_EVERY;
                }
                if !worked && last_query.elapsed() > BUSY_SPIN {
                    std::thread::sleep(IDLE_NAP);
                }
            }
            Err(e) => return Err(e),
        }
    }
    lrd_obs::flush_current();
    Ok(ServeStats {
        ticks: engine.tick_count(),
        queries: engine.query_count(),
    })
}

/// Answers one connection. Returns whether the request asked the
/// daemon to shut down. Transport errors (timeout, oversized or
/// unparseable line) are answered with an `Error` response when the
/// connection is still writable, and otherwise dropped — one bad
/// client must never take the loop down.
fn answer(conn: &mut dyn Conn, engine: &mut Engine) -> bool {
    let started = Instant::now();
    let line = match recv_line(conn) {
        Ok(line) => line,
        Err(_) => return false,
    };
    let (response, shutdown) = match Request::parse(&line) {
        Ok(request) => {
            let span = lrd_obs::span!("serve.query", kind = request.kind());
            let response = engine.handle(&request);
            drop(span);
            (response, matches!(request, Request::Shutdown))
        }
        Err(message) => (Response::Error { message }, false),
    };
    let _ = send_line(conn, &response.to_line());
    lrd_obs::counter("serve.queries", 1);
    lrd_obs::histogram(
        "serve.query_us",
        started.elapsed().as_secs_f64() * 1e6,
    );
    shutdown
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineOptions;
    use crate::flow::FlowSpec;
    use lrd_net::{connect, Endpoint};

    fn engine() -> Engine {
        let spec = FlowSpec::parse("m,family=markov,mean=0.05,service=10.0").unwrap();
        let mut engine = Engine::new(
            EngineOptions {
                window: 64,
                refresh_every: 16,
                ..EngineOptions::default()
            },
            vec![spec],
            5,
        );
        for _ in 0..128 {
            engine.tick();
        }
        engine
    }

    #[test]
    fn serves_queries_then_stops_on_shutdown_request() {
        let endpoint = Endpoint::parse("127.0.0.1:0").unwrap();
        let listener = Listener::bind(&endpoint).unwrap();
        let endpoint = listener.local_endpoint();
        let server = std::thread::spawn(move || {
            let mut engine = engine();
            serve(&listener, &mut engine, None).unwrap()
        });
        let ask = |request: &Request| {
            let mut conn = connect(&endpoint).unwrap();
            send_line(conn.as_mut(), &request.to_line()).unwrap();
            Response::parse(&recv_line(conn.as_mut()).unwrap()).unwrap()
        };
        match ask(&Request::Status) {
            Response::Status { tick, flows } => {
                assert_eq!(tick, 128);
                assert_eq!(flows.len(), 1);
                assert!(flows[0].warmed);
            }
            other => panic!("expected status, got {other:?}"),
        }
        match ask(&Request::LossBound {
            flow: "m".to_string(),
            buffer: 1.0,
        }) {
            Response::Bound { lower, upper, .. } => assert!(lower <= upper),
            other => panic!("expected bound, got {other:?}"),
        }
        // A garbage line gets an error response, not a dropped loop.
        let mut conn = connect(&endpoint).unwrap();
        send_line(conn.as_mut(), "{\"kind\":\"nope\"}").unwrap();
        match Response::parse(&recv_line(conn.as_mut()).unwrap()).unwrap() {
            Response::Error { .. } => {}
            other => panic!("expected error, got {other:?}"),
        }
        assert!(matches!(ask(&Request::Shutdown), Response::Bye));
        let stats = server.join().unwrap();
        assert!(stats.queries >= 3);
        // The shutdown flag is process-global: clear it so other tests
        // in this binary can run servers of their own.
        crate::signal::clear_for_tests();
    }
}
