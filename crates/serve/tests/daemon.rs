//! End-to-end tests of the `lrd-serve` binary: spawn the real daemon,
//! talk the real protocol, kill it with real signals.

use std::io::{BufRead, BufReader, Read};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use lrd_net::{connect, recv_line, send_line, Endpoint};
use lrd_obs::parse_json;
use lrd_serve::proto::{Request, Response};

/// Spawns the daemon with `extra` flags on a fresh Unix socket and
/// waits for its `listening <endpoint>` line.
fn spawn_daemon(tag: &str, extra: &[&str]) -> (Child, Endpoint, std::path::PathBuf) {
    let dir = std::env::temp_dir().join(format!("lrd-serve-test-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let socket = dir.join("daemon.sock");
    let mut child = Command::new(env!("CARGO_BIN_EXE_lrd-serve"))
        .arg("--listen")
        .arg(format!("unix:{}", socket.display()))
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    let stdout = child.stdout.take().unwrap();
    let mut lines = BufReader::new(stdout).lines();
    let line = lines.next().expect("daemon exited early").unwrap();
    let endpoint = line
        .strip_prefix("listening ")
        .unwrap_or_else(|| panic!("unexpected stdout line: {line:?}"))
        .trim();
    (child, Endpoint::parse(endpoint).unwrap(), dir)
}

fn ask(endpoint: &Endpoint, request: &Request) -> Response {
    let mut conn = connect(endpoint).unwrap();
    send_line(conn.as_mut(), &request.to_line()).unwrap();
    Response::parse(&recv_line(conn.as_mut()).unwrap()).unwrap()
}

#[test]
fn protocol_flow_and_session_batch_equivalence_over_the_wire() {
    // Frozen clock + deterministic warmup: the daemon's state is a
    // pure function of the flags, so the assertions are exact.
    let (mut child, endpoint, dir) = spawn_daemon(
        "proto",
        &[
            "--flow",
            "m,family=markov,mean=0.05,low=2.0,high=14.0,service=10.0",
            "--tick-ms",
            "0",
            "--warmup-ticks",
            "256",
            "--window",
            "64",
            "--refresh-every",
            "16",
            "--seed",
            "11",
        ],
    );

    match ask(&endpoint, &Request::Status) {
        Response::Status { tick, flows } => {
            assert_eq!(tick, 256);
            assert_eq!(flows.len(), 1);
            assert_eq!(flows[0].name, "m");
            assert_eq!(flows[0].family, "markov");
            assert_eq!(flows[0].samples, 64);
            assert!(flows[0].warmed, "256 warmup ticks must fill a 64-window");
            assert!(flows[0].hurst.is_some());
        }
        other => panic!("expected status, got {other:?}"),
    }

    // Query the incremental session until it converges, then a batch
    // solve must agree bit for bit — the SolveSession equivalence
    // contract, verified across the wire.
    let query = Request::LossBound {
        flow: "m".to_string(),
        buffer: 1.0,
    };
    let mut bound = None;
    for _ in 0..10_000 {
        match ask(&endpoint, &query) {
            Response::Bound {
                lower,
                upper,
                converged,
                staleness,
                ..
            } => {
                assert_eq!(staleness, 0, "frozen clock must never age the fit");
                if converged {
                    bound = Some((lower, upper));
                    break;
                }
            }
            other => panic!("expected bound, got {other:?}"),
        }
    }
    let (lower, upper) = bound.expect("session never converged");
    match ask(
        &endpoint,
        &Request::Solve {
            flow: "m".to_string(),
            buffer: 1.0,
        },
    ) {
        Response::Bound {
            lower: batch_lower,
            upper: batch_upper,
            converged,
            ..
        } => {
            assert!(converged);
            assert_eq!(lower.to_bits(), batch_lower.to_bits());
            assert_eq!(upper.to_bits(), batch_upper.to_bits());
        }
        other => panic!("expected bound, got {other:?}"),
    }

    match ask(
        &endpoint,
        &Request::Provision {
            flow: "m".to_string(),
            target_loss: 1e-2,
        },
    ) {
        Response::Provision { buffer, upper, .. } => {
            assert!(buffer > 0.0);
            assert!(upper <= 1e-2);
        }
        other => panic!("expected provision, got {other:?}"),
    }

    match ask(
        &endpoint,
        &Request::LossBound {
            flow: "ghost".to_string(),
            buffer: 1.0,
        },
    ) {
        Response::Error { message } => assert!(message.contains("ghost")),
        other => panic!("expected error, got {other:?}"),
    }

    assert!(matches!(ask(&endpoint, &Request::Shutdown), Response::Bye));
    let status = child.wait().unwrap();
    assert!(status.success(), "daemon exited with {status:?}");
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn sigterm_flushes_telemetry_before_exit() {
    // Regression for the buffered-sink flush bug: a daemon killed by
    // SIGTERM must leave a telemetry file of complete, parseable JSON
    // lines including the drained tick counter — no truncated tail,
    // no silently dropped buffer.
    let dir = std::env::temp_dir().join(format!("lrd-serve-test-{}-sig", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let telemetry = dir.join("telemetry.jsonl");
    let (mut child, endpoint, dir) = spawn_daemon(
        "sigterm",
        &[
            "--flow",
            "m,family=markov,mean=0.05,service=10.0",
            "--tick-ms",
            "1",
            "--window",
            "64",
            "--telemetry",
            telemetry.to_str().unwrap(),
        ],
    );

    // Let it tick, and push at least one query through so both event
    // kinds are in flight when the signal lands.
    std::thread::sleep(Duration::from_millis(300));
    ask(&endpoint, &Request::Status);

    let term = Command::new("kill")
        .arg("-TERM")
        .arg(child.id().to_string())
        .status()
        .unwrap();
    assert!(term.success());
    let status = child.wait().unwrap();
    assert!(status.success(), "SIGTERM must exit cleanly, got {status:?}");
    let mut stderr = String::new();
    child.stderr.take().unwrap().read_to_string(&mut stderr).unwrap();
    assert!(
        stderr.contains("lrd-serve: done"),
        "shutdown summary missing from stderr: {stderr:?}"
    );

    let contents = std::fs::read_to_string(&telemetry).unwrap();
    assert!(!contents.is_empty(), "telemetry file is empty");
    let mut saw_ticks = false;
    for line in contents.lines() {
        let doc = parse_json(line)
            .unwrap_or_else(|e| panic!("unparseable telemetry line {line:?}: {e}"));
        if doc.get("name").and_then(lrd_obs::Json::as_str) == Some("serve.ticks") {
            saw_ticks = true;
        }
    }
    assert!(
        saw_ticks,
        "flushed telemetry must include the serve.ticks counter"
    );
    std::fs::remove_dir_all(dir).ok();
}
