//! The shared command-line surface of every binary in the workspace.
//!
//! The 17 figure binaries, the sweep coordinator, the fleet monitor,
//! and the serving daemon all accept the same core flags (`--quick`,
//! `--threads`, `--telemetry`, `--telemetry-summary`, `--shard`,
//! `--checkpoint`, `--assignment`, `--steal`), so parsing lives here
//! exactly once as [`CommonArgs`]. Binaries with extra flags layer
//! them over the shared core through [`CommonArgs::parse_with`]'s
//! extension hook instead of re-rolling the whole loop.
//!
//! Invalid invocations produce a typed [`CliError`] — the binaries
//! print it to stderr and exit with status 1 instead of silently
//! ignoring unknown flags (the degradation contract in DESIGN.md: bad
//! configuration is an error, not a guess).

use std::fmt;
use std::path::PathBuf;
use std::sync::Arc;

/// One shard of an `n`-way partition as typed on a command line:
/// `--shard i/n`. This is the *grammar* half of sharding; lattice
/// ownership semantics (round-robin vs. planner-assigned sets) live
/// with the sweep layer, which converts from this type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardArg {
    /// Zero-based shard index, `< count`.
    pub index: u32,
    /// Total number of shards, `>= 1`.
    pub count: u32,
}

impl ShardArg {
    /// A validated shard; `None` when `count == 0` or `index >= count`.
    pub fn new(index: u32, count: u32) -> Option<ShardArg> {
        (count > 0 && index < count).then_some(ShardArg { index, count })
    }

    /// Parses the CLI form `"i/n"` (e.g. `"0/2"`).
    ///
    /// Only strings that round-trip through [`Display`](fmt::Display)
    /// are accepted: `u32::from_str` tolerates a leading `+` (and we
    /// would otherwise inherit leading zeros and stray whitespace), but
    /// a shard spec that renders differently from what was typed is a
    /// recipe for mismatched checkpoint names across hosts.
    pub fn parse(s: &str) -> Option<ShardArg> {
        let (i, n) = s.split_once('/')?;
        let arg = ShardArg::new(i.parse().ok()?, n.parse().ok()?)?;
        (arg.to_string() == s).then_some(arg)
    }
}

impl fmt::Display for ShardArg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

/// The shared run configuration every binary understands.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CommonArgs {
    /// Use the reduced quick-profile grids (`--quick`).
    pub quick: bool,
    /// Write structured JSONL telemetry to this path
    /// (`--telemetry <path>`).
    pub telemetry: Option<PathBuf>,
    /// Print the aggregated telemetry table to stderr on exit
    /// (`--telemetry-summary`).
    pub telemetry_summary: bool,
    /// Write the aggregated telemetry table to this file instead
    /// (`--telemetry-summary=<path>`); composes with the stderr form.
    pub telemetry_summary_file: Option<PathBuf>,
    /// Size the global worker pool to this many threads (`--threads N`).
    /// `None` defers to `LRD_THREADS` or the detected parallelism;
    /// `Some(1)` forces the bit-for-bit-identical serial path.
    pub threads: Option<usize>,
    /// Solve only this slice of the sweep lattice (`--shard i/n`).
    /// `None` means the full lattice.
    pub shard: Option<ShardArg>,
    /// Stream completed sweep points to this JSONL file and resume
    /// from it when it already exists (`--checkpoint <path>`).
    pub checkpoint: Option<PathBuf>,
    /// Take this shard's point set from a planner-produced assignment
    /// file (`--assignment <path>`, written by `sweep_plan`) instead
    /// of the round-robin rule. Requires `--shard i/n` to pick the row.
    pub assignment: Option<PathBuf>,
    /// Run as a work-stealing worker against the `sweep_coord`
    /// coordinator at this endpoint (`--steal host:port` or
    /// `--steal unix:<path>`). Requires `--checkpoint`; mutually
    /// exclusive with `--shard`/`--assignment` (the coordinator, not a
    /// static split, decides which points this process solves).
    pub steal: Option<String>,
    /// Identity stamped on JSONL telemetry records instead of the pid
    /// default. Never parsed from a flag — callers that know their
    /// stable identity (steal-mode workers adopt it from their
    /// checkpoint) set it before installing telemetry, so offline
    /// tooling can join the records with other ledgers by name.
    pub identity: Option<String>,
}

impl CommonArgs {
    /// Parses an argument list (without the program name) containing
    /// only the shared flags.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<CommonArgs, CliError> {
        CommonArgs::parse_with(args, |_, _| Ok(false))
    }

    /// Parses an argument list, routing every argument the shared core
    /// does not recognize (including `--help`) through `ext` first.
    /// `ext` returns `Ok(true)` when it consumed the argument (pulling
    /// any value it needs from the iterator), `Ok(false)` to fall
    /// through to the typed [`CliError::UnknownArgument`] rejection.
    pub fn parse_with<I, F>(args: I, mut ext: F) -> Result<CommonArgs, CliError>
    where
        I: IntoIterator<Item = String>,
        F: FnMut(&str, &mut dyn Iterator<Item = String>) -> Result<bool, CliError>,
    {
        let mut config = CommonArgs::default();
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--quick" => config.quick = true,
                "--telemetry" => {
                    let path = args.next().ok_or(CliError::MissingValue("--telemetry"))?;
                    config.telemetry = Some(PathBuf::from(path));
                }
                "--telemetry-summary" => config.telemetry_summary = true,
                "--threads" => {
                    let n = args.next().ok_or(CliError::MissingValue("--threads"))?;
                    config.threads = Some(parse_threads(&n)?);
                }
                "--shard" => {
                    let s = args.next().ok_or(CliError::MissingValue("--shard"))?;
                    config.shard = Some(parse_shard(&s)?);
                }
                "--checkpoint" => {
                    let path = args.next().ok_or(CliError::MissingValue("--checkpoint"))?;
                    config.checkpoint = Some(PathBuf::from(path));
                }
                "--assignment" => {
                    let path = args.next().ok_or(CliError::MissingValue("--assignment"))?;
                    config.assignment = Some(PathBuf::from(path));
                }
                "--steal" => {
                    let endpoint = args.next().ok_or(CliError::MissingValue("--steal"))?;
                    config.steal = Some(parse_endpoint(&endpoint)?);
                }
                other if other.starts_with("--threads=") => {
                    let n = &other["--threads=".len()..];
                    if n.is_empty() {
                        return Err(CliError::MissingValue("--threads"));
                    }
                    config.threads = Some(parse_threads(n)?);
                }
                other if other.starts_with("--telemetry=") => {
                    let path = &other["--telemetry=".len()..];
                    if path.is_empty() {
                        return Err(CliError::MissingValue("--telemetry"));
                    }
                    config.telemetry = Some(PathBuf::from(path));
                }
                other if other.starts_with("--telemetry-summary=") => {
                    let path = &other["--telemetry-summary=".len()..];
                    if path.is_empty() {
                        return Err(CliError::MissingValue("--telemetry-summary"));
                    }
                    config.telemetry_summary_file = Some(PathBuf::from(path));
                }
                other if other.starts_with("--shard=") => {
                    let s = &other["--shard=".len()..];
                    if s.is_empty() {
                        return Err(CliError::MissingValue("--shard"));
                    }
                    config.shard = Some(parse_shard(s)?);
                }
                other if other.starts_with("--checkpoint=") => {
                    let path = &other["--checkpoint=".len()..];
                    if path.is_empty() {
                        return Err(CliError::MissingValue("--checkpoint"));
                    }
                    config.checkpoint = Some(PathBuf::from(path));
                }
                other if other.starts_with("--assignment=") => {
                    let path = &other["--assignment=".len()..];
                    if path.is_empty() {
                        return Err(CliError::MissingValue("--assignment"));
                    }
                    config.assignment = Some(PathBuf::from(path));
                }
                other if other.starts_with("--steal=") => {
                    let endpoint = &other["--steal=".len()..];
                    if endpoint.is_empty() {
                        return Err(CliError::MissingValue("--steal"));
                    }
                    config.steal = Some(parse_endpoint(endpoint)?);
                }
                other => {
                    if !ext(other, &mut args)? {
                        return Err(CliError::UnknownArgument(other.to_string()));
                    }
                }
            }
        }
        Ok(config)
    }

    /// Applies a `--threads` request to the global worker pool —
    /// called once right after parsing, before any solver work can
    /// touch the pool. A no-op without the flag.
    pub fn apply_threads(&self) {
        if let Some(n) = self.threads {
            if !lrd_pool::set_global_threads(n) {
                eprintln!("warning: worker pool already started; --threads {n} ignored");
            }
        }
    }

    /// The telemetry sinks this configuration asks for: a JSONL writer
    /// when `--telemetry` was given (stamped with
    /// [`identity`](CommonArgs::identity) when one is set), a summary
    /// table (to a file and/or stderr) when `--telemetry-summary` was.
    /// Empty (telemetry stays disabled) with neither flag. Harnesses
    /// that want to observe the run themselves can append their own
    /// sink before installing.
    ///
    /// # Errors
    ///
    /// [`CliError::Io`] naming the sink file that could not be created
    /// — the `--telemetry` JSONL path or the `--telemetry-summary`
    /// file, whichever actually failed.
    pub fn build_subscribers(&self) -> Result<Vec<Arc<dyn lrd_obs::Subscriber>>, CliError> {
        let io_error = |path: &PathBuf, e: std::io::Error| CliError::Io {
            path: path.clone(),
            message: e.to_string(),
        };
        let mut sinks: Vec<Arc<dyn lrd_obs::Subscriber>> = Vec::new();
        if let Some(path) = &self.telemetry {
            let mut sink =
                lrd_obs::JsonlSubscriber::create(path).map_err(|e| io_error(path, e))?;
            if let Some(identity) = &self.identity {
                sink = sink.with_identity(identity);
            }
            sinks.push(Arc::new(sink));
        }
        if let Some(path) = &self.telemetry_summary_file {
            let file = std::fs::File::create(path).map_err(|e| io_error(path, e))?;
            sinks.push(Arc::new(lrd_obs::SummarySubscriber::to_writer(Box::new(
                file,
            ))));
        }
        if self.telemetry_summary {
            sinks.push(Arc::new(lrd_obs::SummarySubscriber::stderr()));
        }
        Ok(sinks)
    }

    /// Installs the configured telemetry sinks for the lifetime of the
    /// returned guard — the one-liner every binary calls right after
    /// parsing. A no-op guard when no telemetry was requested.
    ///
    /// # Errors
    ///
    /// An unwritable sink path surfaces as [`CliError::Io`] naming the
    /// path that failed; deciding what to do with it (the binaries
    /// print and exit 1) stays with the caller — library code never
    /// terminates the process.
    pub fn install_telemetry(&self) -> Result<lrd_obs::InstallGuard, CliError> {
        Ok(lrd_obs::install_fanout(self.build_subscribers()?))
    }
}

/// Pulls the value of `flag` from the argument stream — the helper
/// extension parsers use for their own `--flag <value>` spellings.
pub fn require_value(
    flag: &'static str,
    args: &mut dyn Iterator<Item = String>,
) -> Result<String, CliError> {
    args.next().ok_or(CliError::MissingValue(flag))
}

/// Why the command line was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// An argument the binary does not understand.
    UnknownArgument(String),
    /// A flag that needs a value was given without one.
    MissingValue(&'static str),
    /// A flag value that does not parse (e.g. `--threads zero`).
    InvalidValue(&'static str, String),
    /// A `--shard` value that is not of the form `i/n` with
    /// `0 <= i < n`.
    InvalidShard(String),
    /// An endpoint value that is neither `host:port` nor `unix:<path>`.
    InvalidEndpoint(String),
    /// A file named on the command line could not be opened.
    Io {
        /// The offending path.
        path: PathBuf,
        /// The rendered OS error.
        message: String,
    },
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::UnknownArgument(arg) => {
                write!(f, "unknown argument `{arg}` (see --help)")
            }
            CliError::MissingValue(flag) => {
                write!(f, "{flag} requires a value")
            }
            CliError::InvalidValue(flag, value) => {
                write!(f, "{flag} requires a positive integer, got `{value}`")
            }
            CliError::InvalidShard(value) => {
                write!(
                    f,
                    "--shard requires the form i/n with 0 <= i < n (e.g. 0/4), got `{value}`"
                )
            }
            CliError::InvalidEndpoint(value) => {
                write!(
                    f,
                    "expected an endpoint of the form host:port or unix:<path> \
                     (e.g. 127.0.0.1:7077), got `{value}`"
                )
            }
            CliError::Io { path, message } => {
                write!(f, "cannot open sink file {}: {message}", path.display())
            }
        }
    }
}

impl std::error::Error for CliError {}

fn parse_threads(value: &str) -> Result<usize, CliError> {
    match value.parse::<usize>() {
        Ok(n) if n > 0 => Ok(n),
        _ => Err(CliError::InvalidValue("--threads", value.to_string())),
    }
}

fn parse_shard(value: &str) -> Result<ShardArg, CliError> {
    ShardArg::parse(value).ok_or_else(|| CliError::InvalidShard(value.to_string()))
}

/// Validates an endpoint string (`host:port` or `unix:<path>`),
/// returning it unchanged — shared by `--steal`, `--listen`, `--coord`
/// and friends.
pub fn parse_endpoint(value: &str) -> Result<String, CliError> {
    lrd_net::Endpoint::parse(value)
        .map(|_| value.to_string())
        .ok_or_else(|| CliError::InvalidEndpoint(value.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    fn parse(args: Vec<String>) -> Result<CommonArgs, CliError> {
        CommonArgs::parse(args)
    }

    #[test]
    fn shard_arg_parse_and_display() {
        let s = ShardArg::parse("1/3").unwrap();
        assert_eq!((s.index, s.count), (1, 3));
        assert_eq!(s.to_string(), "1/3");
        assert_eq!(ShardArg::parse("10/12").unwrap().to_string(), "10/12");
        for bad in [
            "", "1", "3/3", "4/3", "1/0", "-1/3", "a/b", "1/3/5",
            // Signed and otherwise non-round-tripping forms that
            // u32::from_str alone would tolerate.
            "+1/3", "1/+3", "+0/1", "01/3", "1/03", "00/1", " 1/3", "1/3 ", "1 /3", "1/ 3",
        ] {
            assert_eq!(ShardArg::parse(bad), None, "{bad:?}");
        }
    }

    #[test]
    fn empty_is_full_profile() {
        assert_eq!(parse(strings(&[])), Ok(CommonArgs::default()));
    }

    #[test]
    fn quick_flag() {
        let config = parse(strings(&["--quick"])).unwrap();
        assert!(config.quick);
        assert!(config.telemetry.is_none());
        assert!(!config.telemetry_summary);
    }

    #[test]
    fn telemetry_flags() {
        let config =
            parse(strings(&["--telemetry", "out.jsonl", "--telemetry-summary"])).unwrap();
        assert_eq!(config.telemetry, Some(PathBuf::from("out.jsonl")));
        assert!(config.telemetry_summary);
        assert!(config.telemetry_summary_file.is_none());
        let config = parse(strings(&["--telemetry=t.jsonl"])).unwrap();
        assert_eq!(config.telemetry, Some(PathBuf::from("t.jsonl")));
        // The `=` form of --telemetry-summary writes the table to a
        // file and does not imply the stderr table.
        let config = parse(strings(&["--telemetry-summary=s.txt"])).unwrap();
        assert_eq!(config.telemetry_summary_file, Some(PathBuf::from("s.txt")));
        assert!(!config.telemetry_summary);
        assert_eq!(
            parse(strings(&["--telemetry-summary="])),
            Err(CliError::MissingValue("--telemetry-summary"))
        );
    }

    #[test]
    fn telemetry_without_path_is_a_typed_error() {
        assert_eq!(
            parse(strings(&["--telemetry"])),
            Err(CliError::MissingValue("--telemetry"))
        );
        assert_eq!(
            parse(strings(&["--telemetry="])),
            Err(CliError::MissingValue("--telemetry"))
        );
    }

    #[test]
    fn threads_flag_both_spellings() {
        let config = parse(strings(&["--threads", "4"])).unwrap();
        assert_eq!(config.threads, Some(4));
        let config = parse(strings(&["--threads=2", "--quick"])).unwrap();
        assert_eq!(config.threads, Some(2));
        assert!(config.quick);
    }

    #[test]
    fn threads_value_is_validated() {
        assert_eq!(
            parse(strings(&["--threads"])),
            Err(CliError::MissingValue("--threads"))
        );
        assert_eq!(
            parse(strings(&["--threads="])),
            Err(CliError::MissingValue("--threads"))
        );
        for bad in ["0", "-1", "two", "1.5"] {
            assert_eq!(
                parse(strings(&["--threads", bad])),
                Err(CliError::InvalidValue("--threads", bad.to_string())),
                "--threads {bad} should be rejected"
            );
        }
        let e = parse(strings(&["--threads", "0"])).unwrap_err();
        assert!(e.to_string().contains("--threads"));
        assert!(e.to_string().contains('0'));
    }

    #[test]
    fn unknown_arguments_are_typed_errors() {
        for bad in ["--fast", "quick", "-q", "--buffer=2", "extra"] {
            match parse(strings(&[bad])) {
                Err(CliError::UnknownArgument(a)) => assert_eq!(a, bad),
                other => panic!("expected UnknownArgument for {bad}, got {other:?}"),
            }
        }
    }

    #[test]
    fn error_message_names_the_argument() {
        let e = parse(strings(&["--bogus"])).unwrap_err();
        assert!(e.to_string().contains("--bogus"));
        assert!(parse(strings(&["--telemetry"]))
            .unwrap_err()
            .to_string()
            .contains("--telemetry"));
    }

    #[test]
    fn shard_flag_both_spellings() {
        let config = parse(strings(&["--shard", "1/4"])).unwrap();
        assert_eq!(config.shard, ShardArg::new(1, 4));
        let config = parse(strings(&["--shard=0/2", "--checkpoint=ck.jsonl"])).unwrap();
        assert_eq!(config.shard, ShardArg::new(0, 2));
        assert_eq!(config.checkpoint, Some(PathBuf::from("ck.jsonl")));
        let config = parse(strings(&["--checkpoint", "shard.jsonl"])).unwrap();
        assert_eq!(config.checkpoint, Some(PathBuf::from("shard.jsonl")));
        assert_eq!(config.shard, None);
    }

    #[test]
    fn shard_value_is_validated() {
        assert_eq!(
            parse(strings(&["--shard"])),
            Err(CliError::MissingValue("--shard"))
        );
        assert_eq!(
            parse(strings(&["--shard="])),
            Err(CliError::MissingValue("--shard"))
        );
        assert_eq!(
            parse(strings(&["--checkpoint"])),
            Err(CliError::MissingValue("--checkpoint"))
        );
        for bad in ["2", "2/2", "3/2", "1/0", "a/b", "-1/2"] {
            assert_eq!(
                parse(strings(&["--shard", bad])),
                Err(CliError::InvalidShard(bad.to_string())),
                "--shard {bad} should be rejected"
            );
        }
        let e = parse(strings(&["--shard", "9/3"])).unwrap_err();
        assert!(e.to_string().contains("9/3"));
        assert!(e.to_string().contains("i/n"));
    }

    #[test]
    fn steal_flag_both_spellings_and_validation() {
        let config = parse(strings(&["--steal", "127.0.0.1:7077"])).unwrap();
        assert_eq!(config.steal, Some("127.0.0.1:7077".to_string()));
        let config = parse(strings(&["--steal=unix:/tmp/coord.sock", "--quick"])).unwrap();
        assert_eq!(config.steal, Some("unix:/tmp/coord.sock".to_string()));
        assert_eq!(
            parse(strings(&["--steal"])),
            Err(CliError::MissingValue("--steal"))
        );
        assert_eq!(
            parse(strings(&["--steal="])),
            Err(CliError::MissingValue("--steal"))
        );
        for bad in ["nocolon", "unix:"] {
            assert_eq!(
                parse(strings(&["--steal", bad])),
                Err(CliError::InvalidEndpoint(bad.to_string())),
                "--steal {bad} should be rejected"
            );
        }
        let e = parse(strings(&["--steal", "nocolon"])).unwrap_err();
        assert!(e.to_string().contains("host:port"));
    }

    #[test]
    fn assignment_flag_both_spellings() {
        let config = parse(strings(&["--assignment", "plan.json"])).unwrap();
        assert_eq!(config.assignment, Some(PathBuf::from("plan.json")));
        let config = parse(strings(&["--assignment=p.json", "--shard=0/2"])).unwrap();
        assert_eq!(config.assignment, Some(PathBuf::from("p.json")));
        assert_eq!(
            parse(strings(&["--assignment"])),
            Err(CliError::MissingValue("--assignment"))
        );
        assert_eq!(
            parse(strings(&["--assignment="])),
            Err(CliError::MissingValue("--assignment"))
        );
    }

    #[test]
    fn extension_hook_consumes_binary_specific_flags() {
        let mut listen = None;
        let config = CommonArgs::parse_with(
            strings(&["--quick", "--listen", "127.0.0.1:0", "--threads", "2"]),
            |flag, args| match flag {
                "--listen" => {
                    listen = Some(require_value("--listen", args)?);
                    Ok(true)
                }
                _ => Ok(false),
            },
        )
        .unwrap();
        assert!(config.quick);
        assert_eq!(config.threads, Some(2));
        assert_eq!(listen, Some("127.0.0.1:0".to_string()));

        // An extension that declines still produces the typed error.
        let err = CommonArgs::parse_with(strings(&["--bogus"]), |_, _| Ok(false)).unwrap_err();
        assert_eq!(err, CliError::UnknownArgument("--bogus".to_string()));

        // ...and one that fails propagates its own error.
        let err = CommonArgs::parse_with(strings(&["--listen"]), |flag, args| match flag {
            "--listen" => require_value("--listen", args).map(|_| true),
            _ => Ok(false),
        })
        .unwrap_err();
        assert_eq!(err, CliError::MissingValue("--listen"));
    }

    #[test]
    fn unwritable_telemetry_is_a_typed_error() {
        let config = CommonArgs {
            telemetry: Some(PathBuf::from("/nonexistent-dir-for-cli-test/t.jsonl")),
            ..CommonArgs::default()
        };
        let err = config
            .install_telemetry()
            .map(|_guard| ())
            .expect_err("an unwritable path must fail");
        match err {
            CliError::Io { path, message } => {
                assert_eq!(path, PathBuf::from("/nonexistent-dir-for-cli-test/t.jsonl"));
                assert!(!message.is_empty());
            }
            other => panic!("expected CliError::Io, got {other:?}"),
        }
    }

    #[test]
    fn sink_errors_name_the_failing_path_not_the_telemetry_flag() {
        // Regression: the error used to be attributed to the
        // --telemetry path unconditionally (or to "?" when none was
        // given), even when a different sink failed to open.
        let bad = PathBuf::from("/nonexistent-dir-for-cli-test/summary.txt");

        // No --telemetry at all: the old code reported path "?".
        let config = CommonArgs {
            telemetry_summary_file: Some(bad.clone()),
            ..CommonArgs::default()
        };
        match config.install_telemetry().map(|_g| ()).unwrap_err() {
            CliError::Io { path, .. } => assert_eq!(path, bad),
            other => panic!("expected CliError::Io, got {other:?}"),
        }

        // A perfectly writable --telemetry plus a failing summary
        // file: the old code blamed the telemetry path.
        let dir = std::env::temp_dir().join(format!("lrd-cli-sink-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let good = dir.join("t.jsonl");
        let config = CommonArgs {
            telemetry: Some(good.clone()),
            telemetry_summary_file: Some(bad.clone()),
            ..CommonArgs::default()
        };
        match config.install_telemetry().map(|_g| ()).unwrap_err() {
            CliError::Io { path, .. } => {
                assert_eq!(path, bad, "must blame the sink that failed");
                assert_ne!(path, good);
            }
            other => panic!("expected CliError::Io, got {other:?}"),
        }
    }

    #[test]
    fn no_flags_build_no_subscribers() {
        let sinks = CommonArgs::default().build_subscribers().unwrap();
        assert!(sinks.is_empty());
    }

    #[test]
    fn summary_flag_builds_one_subscriber() {
        let config = CommonArgs {
            telemetry_summary: true,
            ..CommonArgs::default()
        };
        assert_eq!(config.build_subscribers().unwrap().len(), 1);
    }
}
