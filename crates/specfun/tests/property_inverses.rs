//! Property-based round-trip and identity tests for the special
//! functions, run as seeded hand-rolled case loops. The failing case's
//! seed offset is embedded in every assertion message.

use lrd_rng::{rngs::SmallRng, Rng, SeedableRng};
use lrd_specfun::*;

const CASES: u64 = 128;

#[test]
fn erf_erfinv_roundtrip() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x5F_0000 + case);
        let y = rng.gen_range(-0.999_999f64..0.999_999);
        let x = erfinv(y);
        assert!(
            (erf(x) - y).abs() < 1e-10,
            "case {case}: erf(erfinv({y})) = {}",
            erf(x)
        );
    }
}

#[test]
fn erfc_erfcinv_roundtrip() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x5F_1000 + case);
        let y = rng.gen_range(1e-12f64..1.999_999);
        let x = erfcinv(y);
        let back = erfc(x);
        assert!(
            ((back - y) / y).abs() < 1e-8,
            "case {case}: erfc(erfcinv({y})) = {back}"
        );
    }
}

#[test]
fn erf_is_odd_and_bounded() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x5F_2000 + case);
        let x = rng.gen_range(-6.0f64..6.0);
        assert!((erf(x) + erf(-x)).abs() < 1e-14, "case {case}: x = {x}");
        assert!(erf(x).abs() <= 1.0, "case {case}: x = {x}");
    }
}

#[test]
fn erf_plus_erfc_is_one() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x5F_3000 + case);
        let x = rng.gen_range(-6.0f64..6.0);
        assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-12, "case {case}: x = {x}");
    }
}

#[test]
fn norm_cdf_quantile_roundtrip() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x5F_4000 + case);
        let p = rng.gen_range(1e-9f64..1.0 - 1e-9);
        let x = norm_quantile(p);
        let back = norm_cdf(x);
        assert!(
            (back - p).abs() < 1e-9 * p.max(1.0 - p).max(1e-3),
            "case {case}: cdf(quantile({p})) = {back}"
        );
    }
}

#[test]
fn norm_cdf_is_monotone() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x5F_5000 + case);
        let a = rng.gen_range(-8.0f64..8.0);
        let b = rng.gen_range(-8.0f64..8.0);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        assert!(norm_cdf(lo) <= norm_cdf(hi) + 1e-15, "case {case}: {lo}, {hi}");
    }
}

#[test]
fn gamma_recurrence() {
    // Γ(x+1) = x·Γ(x), verified in log space.
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x5F_6000 + case);
        let x = rng.gen_range(0.1f64..30.0);
        let lhs = lgamma(x + 1.0);
        let rhs = x.ln() + lgamma(x);
        assert!(
            (lhs - rhs).abs() < 1e-10 * lhs.abs().max(1.0),
            "case {case}: x = {x}"
        );
    }
}

#[test]
fn gamma_p_q_partition() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x5F_7000 + case);
        let a = rng.gen_range(0.05f64..50.0);
        let x = rng.gen_range(0.0f64..100.0);
        let s = gamma_p(a, x) + gamma_q(a, x);
        assert!((s - 1.0).abs() < 1e-10, "case {case}: P+Q = {s} at a={a}, x={x}");
    }
}

#[test]
fn inv_gamma_p_roundtrip() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x5F_8000 + case);
        let a = rng.gen_range(0.2f64..50.0);
        let p = rng.gen_range(1e-6f64..0.999_999);
        let x = inv_gamma_p(a, p);
        let back = gamma_p(a, x);
        assert!(
            (back - p).abs() < 1e-7,
            "case {case}: P(a, invP({p})) = {back} at a={a}"
        );
    }
}

#[test]
fn gamma_p_monotone_in_x() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x5F_9000 + case);
        let a = rng.gen_range(0.2f64..20.0);
        let x = rng.gen_range(0.0f64..50.0);
        let dx = rng.gen_range(0.0f64..5.0);
        assert!(
            gamma_p(a, x + dx) >= gamma_p(a, x) - 1e-12,
            "case {case}: a={a}, x={x}, dx={dx}"
        );
    }
}
