//! Property-based round-trip and identity tests for the special
//! functions.

use lrd_specfun::*;
use proptest::prelude::*;

proptest! {
    #[test]
    fn erf_erfinv_roundtrip(y in -0.999_999f64..0.999_999) {
        let x = erfinv(y);
        prop_assert!((erf(x) - y).abs() < 1e-10, "erf(erfinv({y})) = {}", erf(x));
    }

    #[test]
    fn erfc_erfcinv_roundtrip(y in 1e-12f64..1.999_999) {
        let x = erfcinv(y);
        let back = erfc(x);
        prop_assert!(
            ((back - y) / y).abs() < 1e-8,
            "erfc(erfcinv({y})) = {back}"
        );
    }

    #[test]
    fn erf_is_odd_and_bounded(x in -6.0f64..6.0) {
        prop_assert!((erf(x) + erf(-x)).abs() < 1e-14);
        prop_assert!(erf(x).abs() <= 1.0);
    }

    #[test]
    fn erf_plus_erfc_is_one(x in -6.0f64..6.0) {
        prop_assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn norm_cdf_quantile_roundtrip(p in 1e-9f64..1.0) {
        prop_assume!(p < 1.0 - 1e-9);
        let x = norm_quantile(p);
        let back = norm_cdf(x);
        prop_assert!(
            (back - p).abs() < 1e-9 * p.max(1.0 - p).max(1e-3),
            "cdf(quantile({p})) = {back}"
        );
    }

    #[test]
    fn norm_cdf_is_monotone(a in -8.0f64..8.0, b in -8.0f64..8.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(norm_cdf(lo) <= norm_cdf(hi) + 1e-15);
    }

    #[test]
    fn gamma_recurrence(x in 0.1f64..30.0) {
        // Γ(x+1) = x·Γ(x), verified in log space.
        let lhs = lgamma(x + 1.0);
        let rhs = x.ln() + lgamma(x);
        prop_assert!((lhs - rhs).abs() < 1e-10 * lhs.abs().max(1.0));
    }

    #[test]
    fn gamma_p_q_partition(a in 0.05f64..50.0, x in 0.0f64..100.0) {
        let s = gamma_p(a, x) + gamma_q(a, x);
        prop_assert!((s - 1.0).abs() < 1e-10, "P+Q = {s} at a={a}, x={x}");
    }

    #[test]
    fn inv_gamma_p_roundtrip(a in 0.2f64..50.0, p in 1e-6f64..0.999_999) {
        let x = inv_gamma_p(a, p);
        let back = gamma_p(a, x);
        prop_assert!((back - p).abs() < 1e-7, "P(a, invP({p})) = {back} at a={a}");
    }

    #[test]
    fn gamma_p_monotone_in_x(a in 0.2f64..20.0, x in 0.0f64..50.0, dx in 0.0f64..5.0) {
        prop_assert!(gamma_p(a, x + dx) >= gamma_p(a, x) - 1e-12);
    }
}
