//! Gamma function family: `lgamma`, `gamma`, and the regularized
//! incomplete gamma functions `P(a, x)` and `Q(a, x)` with the inverse
//! of `P` in its first argument fixed.
//!
//! `P(a, x)` is evaluated by its power series for `x < a + 1` and by the
//! Lentz continued-fraction expansion of `Q(a, x)` otherwise; this is the
//! classical split that keeps both expansions rapidly convergent.

/// Lanczos coefficients for `g = 7`, `n = 9` (Godfrey's table).
const LANCZOS_G: f64 = 7.0;
const LANCZOS: [f64; 9] = [
    0.999_999_999_999_809_9,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_1,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_311_6e-7,
];

const LN_SQRT_2PI: f64 = 0.918_938_533_204_672_8;

/// Natural logarithm of the gamma function for `x > 0`.
///
/// Uses the Lanczos approximation with `g = 7`; relative accuracy is
/// about `1e-13` over the positive real axis.
///
/// # Panics
///
/// Panics if `x <= 0` (the workspace never needs the reflected branch,
/// and silently returning complex-logarithm surrogates would hide bugs).
pub fn lgamma(x: f64) -> f64 {
    assert!(x > 0.0, "lgamma requires x > 0, got {x}");
    // Lanczos is formulated for gamma(z) with z = x; shift by 1:
    // gamma(x) = gamma(z + 1) / z with z = x - 1 internally.
    let z = x - 1.0;
    let mut acc = LANCZOS[0];
    for (i, &c) in LANCZOS.iter().enumerate().skip(1) {
        acc += c / (z + i as f64);
    }
    let t = z + LANCZOS_G + 0.5;
    LN_SQRT_2PI + (z + 0.5) * t.ln() - t + acc.ln()
}

/// The gamma function for `x > 0`.
pub fn gamma(x: f64) -> f64 {
    lgamma(x).exp()
}

/// Regularized lower incomplete gamma function
/// `P(a, x) = γ(a, x) / Γ(a)` for `a > 0`, `x >= 0`.
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_p requires a > 0, got {a}");
    assert!(x >= 0.0, "gamma_p requires x >= 0, got {x}");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        lower_series(a, x)
    } else {
        1.0 - upper_cf(a, x)
    }
}

/// Regularized upper incomplete gamma function
/// `Q(a, x) = 1 - P(a, x)`.
pub fn gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_q requires a > 0, got {a}");
    assert!(x >= 0.0, "gamma_q requires x >= 0, got {x}");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - lower_series(a, x)
    } else {
        upper_cf(a, x)
    }
}

/// Power-series evaluation of `P(a, x)`, convergent and stable for
/// `x < a + 1`.
fn lower_series(a: f64, x: f64) -> f64 {
    let mut term = 1.0 / a;
    let mut sum = term;
    let mut n = a;
    for _ in 0..500 {
        n += 1.0;
        term *= x / n;
        sum += term;
        if term.abs() < sum.abs() * 1e-16 {
            break;
        }
    }
    (sum.ln() + a * x.ln() - x - lgamma(a)).exp()
}

/// Modified Lentz continued fraction for `Q(a, x)`, stable for
/// `x >= a + 1`.
fn upper_cf(a: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < 1e-16 {
            break;
        }
    }
    (a * x.ln() - x - lgamma(a)).exp() * h
}

/// Inverse of the regularized lower incomplete gamma function in its
/// second argument: returns `x` such that `P(a, x) = p`.
///
/// Used for Gamma-distribution quantiles when synthesizing video-like
/// traffic marginals. Halley-refined from a Wilson–Hilferty initial
/// guess; accurate to near machine precision for `p` away from the
/// endpoints.
///
/// # Panics
///
/// Panics unless `a > 0` and `0 <= p <= 1`.
pub fn inv_gamma_p(a: f64, p: f64) -> f64 {
    assert!(a > 0.0, "inv_gamma_p requires a > 0, got {a}");
    assert!((0.0..=1.0).contains(&p), "inv_gamma_p requires p in [0,1], got {p}");
    if p == 0.0 {
        return 0.0;
    }
    if p == 1.0 {
        return f64::INFINITY;
    }

    // Wilson–Hilferty starting point: the cube-root transform of a
    // Gamma variate is approximately normal. For small p (especially
    // with a < 1) it degenerates, so fall back to the exact small-x
    // asymptotic P(a, x) ≈ x^a / (a Γ(a))  =>  x ≈ (p a Γ(a))^{1/a}.
    let g = crate::normal::norm_quantile(p);
    let t = 1.0 - 1.0 / (9.0 * a) + g / (3.0 * a.sqrt());
    let wh = a * t * t * t;
    let small = ((p.ln() + a.ln() + lgamma(a)) / a).exp();
    let mut x = if wh > small.max(1e-6 * a) { wh } else { small };

    // Halley iterations on f(x) = P(a, x) - p.
    let lga = lgamma(a);
    for _ in 0..60 {
        let f = gamma_p(a, x) - p;
        // pdf of Gamma(a, 1): x^{a-1} e^{-x} / Γ(a)
        let lpdf = (a - 1.0) * x.ln() - x - lga;
        let df = lpdf.exp();
        if df == 0.0 {
            break;
        }
        // Halley step: u = f/df, correction factor for second derivative
        // f''/f' = (a - 1)/x - 1.
        let u = f / df;
        let corr = u * ((a - 1.0) / x - 1.0) / 2.0;
        let step = if corr.abs() < 0.5 { u / (1.0 - corr) } else { u };
        let x_new = (x - step).max(x * 1e-3);
        if (x_new - x).abs() <= 1e-14 * x.max(1.0) {
            x = x_new;
            break;
        }
        x = x_new;
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(a: f64, b: f64) -> f64 {
        if b == 0.0 {
            a.abs()
        } else {
            ((a - b) / b).abs()
        }
    }

    #[test]
    fn lgamma_integer_factorials() {
        // Γ(n) = (n-1)!
        let mut fact = 1.0f64;
        for n in 1..15u32 {
            if n > 1 {
                fact *= (n - 1) as f64;
            }
            assert!(
                rel(lgamma(n as f64), fact.ln()) < 1e-12,
                "lgamma({n}) mismatch"
            );
        }
    }

    #[test]
    fn lgamma_half_integer() {
        // Γ(1/2) = sqrt(pi)
        let sqrt_pi = std::f64::consts::PI.sqrt();
        assert!(rel(gamma(0.5), sqrt_pi) < 1e-12);
        // Γ(3/2) = sqrt(pi)/2
        assert!(rel(gamma(1.5), sqrt_pi / 2.0) < 1e-12);
        // Γ(5/2) = 3 sqrt(pi)/4
        assert!(rel(gamma(2.5), 3.0 * sqrt_pi / 4.0) < 1e-12);
    }

    #[test]
    #[should_panic(expected = "lgamma requires x > 0")]
    fn lgamma_rejects_nonpositive() {
        lgamma(0.0);
    }

    #[test]
    fn gamma_p_known_values() {
        // P(1, x) = 1 - e^{-x} (exponential CDF).
        for &x in &[0.1, 0.5, 1.0, 2.0, 5.0, 10.0] {
            assert!(rel(gamma_p(1.0, x), 1.0 - (-x_f(x)).exp()) < 1e-13);
        }
        fn x_f(x: f64) -> f64 {
            x
        }
        // P(1/2, x) = erf(sqrt(x)).
        for &x in &[0.01, 0.25, 1.0, 4.0, 9.0] {
            assert!(rel(gamma_p(0.5, x), crate::erf(x.sqrt())) < 1e-12);
        }
    }

    #[test]
    fn gamma_p_plus_q_is_one() {
        for &a in &[0.3, 1.0, 2.5, 10.0, 100.0] {
            for &x in &[0.0, 0.1, 1.0, 5.0, 50.0, 200.0] {
                let s = gamma_p(a, x) + gamma_q(a, x);
                assert!((s - 1.0).abs() < 1e-12, "P+Q != 1 at a={a}, x={x}: {s}");
            }
        }
    }

    #[test]
    fn gamma_p_monotone_in_x() {
        let a = 2.7;
        let mut prev = -1.0;
        for i in 0..200 {
            let x = i as f64 * 0.1;
            let p = gamma_p(a, x);
            assert!(p >= prev - 1e-15, "P(a,.) not monotone at x={x}");
            prev = p;
        }
    }

    #[test]
    fn inv_gamma_p_roundtrip() {
        for &a in &[0.5, 1.0, 2.0, 5.0, 22.0, 120.0] {
            for &p in &[1e-8, 1e-4, 0.01, 0.3, 0.5, 0.7, 0.99, 1.0 - 1e-6] {
                let x = inv_gamma_p(a, p);
                let back = gamma_p(a, x);
                assert!(
                    (back - p).abs() < 1e-9,
                    "roundtrip failed: a={a}, p={p}, x={x}, back={back}"
                );
            }
        }
    }

    #[test]
    fn inv_gamma_p_endpoints() {
        assert_eq!(inv_gamma_p(3.0, 0.0), 0.0);
        assert!(inv_gamma_p(3.0, 1.0).is_infinite());
    }
}
