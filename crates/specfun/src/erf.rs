//! Error function family.
//!
//! `erf` and `erfc` are evaluated through the regularized incomplete
//! gamma functions (`erf(x) = P(1/2, x²)` for `x >= 0`), which keeps a
//! single, well-tested numerical core for the whole crate. The inverses
//! start from a rational approximation of the normal quantile and are
//! polished with Halley iterations on the forward function, yielding
//! near machine-precision round-trips.

use crate::gamma::{gamma_p, gamma_q};

const TWO_OVER_SQRT_PI: f64 = std::f64::consts::FRAC_2_SQRT_PI;

/// The error function `erf(x) = (2/√π) ∫₀ˣ e^{-t²} dt`.
///
/// Odd in `x`; `erf(±∞) = ±1`. Relative accuracy ~1e-13.
pub fn erf(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    if x == 0.0 {
        return 0.0;
    }
    let v = gamma_p(0.5, x * x);
    if x > 0.0 {
        v
    } else {
        -v
    }
}

/// The complementary error function `erfc(x) = 1 - erf(x)`.
///
/// Evaluated via `Q(1/2, x²)` for positive `x` so that the tail is
/// computed without cancellation: `erfc(10)` is accurate to full
/// precision even though it is ~2e-45.
pub fn erfc(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    if x >= 0.0 {
        gamma_q(0.5, x * x)
    } else {
        1.0 + gamma_p(0.5, x * x)
    }
}

/// Inverse error function: returns `x` such that `erf(x) = y` for
/// `y ∈ (-1, 1)`; returns `±∞` at the endpoints.
///
/// This is what the correlation-horizon formula (paper Eq. 26) needs:
/// `T_CH = B μ / (2√2 σ_T σ_λ erfinv(p))`.
pub fn erfinv(y: f64) -> f64 {
    assert!(
        (-1.0..=1.0).contains(&y),
        "erfinv requires y in [-1, 1], got {y}"
    );
    if y == 1.0 {
        return f64::INFINITY;
    }
    if y == -1.0 {
        return f64::NEG_INFINITY;
    }
    if y == 0.0 {
        return 0.0;
    }
    // erfinv(y) = Φ⁻¹((y+1)/2) / √2.
    let mut x = crate::normal::norm_quantile((y + 1.0) / 2.0) / std::f64::consts::SQRT_2;
    // Halley refinement on f(x) = erf(x) - y.
    // f'(x) = 2/√π e^{-x²}; f''/f' = -2x.
    for _ in 0..4 {
        let f = erf(x) - y;
        let df = TWO_OVER_SQRT_PI * (-x * x).exp();
        if df == 0.0 {
            break;
        }
        let u = f / df;
        x -= u / (1.0 + u * x);
    }
    x
}

/// Inverse complementary error function: `x` such that `erfc(x) = y`
/// for `y ∈ (0, 2)`.
pub fn erfcinv(y: f64) -> f64 {
    assert!(
        (0.0..=2.0).contains(&y),
        "erfcinv requires y in [0, 2], got {y}"
    );
    if y == 0.0 {
        return f64::INFINITY;
    }
    if y == 2.0 {
        return f64::NEG_INFINITY;
    }
    // For central y this is fine; for tiny y, refine in erfc directly to
    // avoid the cancellation in 1 - y.
    if y >= 0.25 {
        return erfinv(1.0 - y);
    }
    // Tail: initial guess from asymptotics of erfc: erfc(x) ≈
    // e^{-x²}/(x√π)  =>  x ≈ sqrt(ln(1/(y²π ln(1/y)))) roughly; use the
    // normal-quantile route instead which stays accurate in the tail.
    let mut x = -crate::normal::norm_quantile(y / 2.0) / std::f64::consts::SQRT_2;
    for _ in 0..4 {
        let f = erfc(x) - y;
        let df = -TWO_OVER_SQRT_PI * (-x * x).exp();
        if df == 0.0 {
            break;
        }
        let u = f / df;
        x -= u / (1.0 - u * x);
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(a: f64, b: f64) -> f64 {
        if b == 0.0 {
            a.abs()
        } else {
            ((a - b) / b).abs()
        }
    }

    #[test]
    fn erf_reference_values() {
        // Reference values computed with mpmath to 20 digits.
        let cases = [
            (0.1, 0.112_462_916_018_284_89),
            (0.5, 0.520_499_877_813_046_5),
            (1.0, 0.842_700_792_949_714_9),
            (1.5, 0.966_105_146_475_310_7),
            (2.0, 0.995_322_265_018_952_7),
            (3.0, 0.999_977_909_503_001_4),
        ];
        for &(x, want) in &cases {
            assert!(rel(erf(x), want) < 1e-12, "erf({x})");
            assert!(rel(erf(-x), -want) < 1e-12, "erf(-{x})");
        }
    }

    #[test]
    fn erfc_tail_accuracy() {
        // erfc(5) = 1.5374597944280348e-12 (mpmath).
        assert!(rel(erfc(5.0), 1.537_459_794_428_034_8e-12) < 1e-10);
        // erfc(10) = 2.0884875837625448e-45.
        assert!(rel(erfc(10.0), 2.088_487_583_762_545e-45) < 1e-9);
    }

    #[test]
    fn erf_plus_erfc() {
        for &x in &[-3.0, -1.0, -0.1, 0.0, 0.2, 1.7, 4.0] {
            assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-13);
        }
    }

    #[test]
    fn erfinv_roundtrip() {
        for i in 1..100 {
            let y = -0.99 + 0.02 * i as f64;
            if y.abs() >= 1.0 {
                continue;
            }
            let x = erfinv(y);
            assert!(rel(erf(x), y) < 1e-12, "erfinv roundtrip at y={y}");
        }
        // Very close to 1: erfinv(0.999999).
        let x = erfinv(0.999_999);
        assert!(rel(erf(x), 0.999_999) < 1e-12);
    }

    #[test]
    fn erfinv_known_value() {
        // erfinv(0.5) = 0.47693627620446982 (mpmath).
        assert!(rel(erfinv(0.5), 0.476_936_276_204_469_9) < 1e-12);
        // erfinv(0.99) = 1.8213863677184497.
        assert!(rel(erfinv(0.99), 1.821_386_367_718_449_7) < 1e-12);
    }

    #[test]
    fn erfcinv_roundtrip_including_tail() {
        for &y in &[1.9, 1.0, 0.5, 0.1, 1e-3, 1e-8, 1e-14] {
            let x = erfcinv(y);
            assert!(rel(erfc(x), y) < 1e-10, "erfcinv roundtrip at y={y}");
        }
    }

    #[test]
    fn erfinv_endpoints() {
        assert!(erfinv(1.0).is_infinite());
        assert!(erfinv(-1.0).is_infinite());
        assert_eq!(erfinv(0.0), 0.0);
    }

    #[test]
    fn erf_odd_symmetry() {
        for i in 0..50 {
            let x = i as f64 * 0.1;
            assert_eq!(erf(x), -erf(-x));
        }
    }
}
