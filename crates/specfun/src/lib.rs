//! Special functions used throughout the `lrd` workspace.
//!
//! This crate is dependency-free and provides double-precision
//! implementations of:
//!
//! * the error function family ([`erf`], [`erfc`], [`erfinv`], [`erfcinv`]),
//! * the (log-)gamma function ([`lgamma`], [`gamma`]),
//! * the regularized incomplete gamma functions ([`gamma_p`], [`gamma_q`])
//!   and the inverse of `P(a, ·)` ([`inv_gamma_p`]),
//! * the standard normal distribution ([`norm_pdf`], [`norm_cdf`],
//!   [`norm_quantile`]).
//!
//! The correlation-horizon estimator of Grossglauser & Bolot (Eq. 26)
//! requires `erfinv`; synthetic trace generation maps fractional Gaussian
//! noise through the normal CDF and then through Gamma/lognormal quantile
//! functions, which require `inv_gamma_p` and `norm_quantile`.
//!
//! Accuracy targets are around `1e-12` relative error over the ranges
//! exercised by the workspace; every function is validated against
//! high-precision reference values in the test suite, and the inverse
//! functions are validated as round-trips by property-based tests.

#![warn(missing_docs)]

mod erf;
mod gamma;
mod normal;

pub use erf::{erf, erfc, erfcinv, erfinv};
pub use gamma::{gamma, gamma_p, gamma_q, inv_gamma_p, lgamma};
pub use normal::{norm_cdf, norm_pdf, norm_quantile};

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        if b == 0.0 {
            a.abs() < tol
        } else {
            ((a - b) / b).abs() < tol
        }
    }

    #[test]
    fn crate_level_smoke() {
        assert!(close(erf(1.0), 0.8427007929497149, 1e-12));
        assert!(close(gamma(5.0), 24.0, 1e-12));
        assert!(close(norm_cdf(0.0), 0.5, 1e-15));
    }
}
