//! Standard normal distribution: density, CDF, and quantile.
//!
//! The quantile uses Acklam's rational approximation (relative error
//! ~1.15e-9) refined by one Halley step against [`norm_cdf`], giving
//! near machine precision across the whole open interval.

use crate::erf::erfc;

const SQRT_2: f64 = std::f64::consts::SQRT_2;
const SQRT_2PI: f64 = 2.506_628_274_631_000_7;

/// Standard normal probability density `φ(x) = e^{-x²/2} / √(2π)`.
pub fn norm_pdf(x: f64) -> f64 {
    (-0.5 * x * x).exp() / SQRT_2PI
}

/// Standard normal cumulative distribution `Φ(x)`.
///
/// Evaluated via `erfc` so both tails retain full relative accuracy.
pub fn norm_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / SQRT_2)
}

/// Standard normal quantile `Φ⁻¹(p)` for `p ∈ (0, 1)`; `±∞` at the
/// endpoints.
pub fn norm_quantile(p: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&p),
        "norm_quantile requires p in [0, 1], got {p}"
    );
    if p == 0.0 {
        return f64::NEG_INFINITY;
    }
    if p == 1.0 {
        return f64::INFINITY;
    }
    let mut x = acklam(p);
    // One Halley step on f(x) = Φ(x) - p: f' = φ(x), f''/f' = -x.
    let f = norm_cdf(x) - p;
    let df = norm_pdf(x);
    if df > 0.0 {
        let u = f / df;
        x -= u / (1.0 + u * x / 2.0);
    }
    x
}

/// Acklam's rational approximation to the normal quantile.
fn acklam(p: f64) -> f64 {
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.024_25;
    const P_HIGH: f64 = 1.0 - P_LOW;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= P_HIGH {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(a: f64, b: f64) -> f64 {
        if b == 0.0 {
            a.abs()
        } else {
            ((a - b) / b).abs()
        }
    }

    #[test]
    fn cdf_reference_values() {
        // mpmath references.
        let cases = [
            (-3.0, 1.349_898_031_630_094_6e-3),
            (-1.0, 0.158_655_253_931_457_05),
            (0.0, 0.5),
            (1.0, 0.841_344_746_068_543),
            (1.959_963_984_540_054, 0.975),
            (3.0, 0.998_650_101_968_369_9),
        ];
        for &(x, want) in &cases {
            assert!(rel(norm_cdf(x), want) < 1e-12, "cdf({x})");
        }
    }

    #[test]
    fn quantile_roundtrip() {
        for i in 1..999 {
            let p = i as f64 / 1000.0;
            let x = norm_quantile(p);
            assert!(rel(norm_cdf(x), p) < 1e-11, "quantile roundtrip p={p}");
        }
        for &p in &[1e-10, 1e-6, 1.0 - 1e-6, 1.0 - 1e-10] {
            let x = norm_quantile(p);
            assert!(
                (norm_cdf(x) - p).abs() / p.min(1.0 - p) < 1e-8,
                "tail roundtrip p={p}"
            );
        }
    }

    #[test]
    fn quantile_known_values() {
        assert!(rel(norm_quantile(0.975), 1.959_963_984_540_054) < 1e-12);
        assert!(rel(norm_quantile(0.5), 0.0) < 1e-15 || norm_quantile(0.5).abs() < 1e-15);
        // Φ⁻¹(0.84134474606854293) = 1.
        assert!(rel(norm_quantile(0.841_344_746_068_543), 1.0) < 1e-11);
    }

    #[test]
    fn pdf_integrates_to_one() {
        // Simple trapezoid check over [-8, 8].
        let n = 16_000;
        let h = 16.0 / n as f64;
        let mut s = 0.0;
        for i in 0..=n {
            let x = -8.0 + i as f64 * h;
            let w = if i == 0 || i == n { 0.5 } else { 1.0 };
            s += w * norm_pdf(x);
        }
        assert!((s * h - 1.0).abs() < 1e-10);
    }

    #[test]
    fn quantile_endpoints() {
        assert!(norm_quantile(0.0).is_infinite());
        assert!(norm_quantile(1.0).is_infinite());
    }

    #[test]
    fn quantile_symmetry() {
        for &p in &[0.01, 0.1, 0.3, 0.45] {
            let a = norm_quantile(p);
            let b = norm_quantile(1.0 - p);
            assert!((a + b).abs() < 1e-10, "asymmetry at p={p}: {a} vs {b}");
        }
    }
}
