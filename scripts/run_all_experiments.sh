#!/usr/bin/env bash
# Regenerates every figure at full resolution into results/.
# Usage: scripts/run_all_experiments.sh [--quick]
set -euo pipefail
cd "$(dirname "$0")/.."
MODE="${1:-}"
BINS="fig02_bounds fig03_marginals fig04_mtv_model fig05_bc_model fig06_shuffle_demo \
      fig07_mtv_shuffle fig08_bc_shuffle fig09_marginal_compare \
      fig10_hurst_vs_scaling fig11_hurst_vs_multiplex \
      fig12_mtv_buffer_scaling fig13_bc_buffer_scaling fig14_ch_scaling corpus_report \
      ch_validation markov_baseline runtime_report"
for b in $BINS; do
  echo "=== $b ==="
  cargo run --release -p lrd-experiments --bin "$b" -- $MODE >/dev/null
done
echo "all figures regenerated into results/"
