#!/usr/bin/env bash
# The canonical offline gate: everything a change must pass before it
# lands. Runs entirely from the committed Cargo.lock with no network
# access — the workspace has zero crates-io dependencies, so a plain
# toolchain install is enough.
#
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "=== build (release, all targets) ==="
cargo build --release --workspace --locked

echo "=== test (release) ==="
cargo test -q --release --workspace --locked

echo "=== clippy (-D warnings) ==="
cargo clippy --workspace --all-targets --locked -- -D warnings

echo "ci: all gates passed"
