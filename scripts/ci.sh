#!/usr/bin/env bash
# The canonical offline gate: everything a change must pass before it
# lands. Runs entirely from the committed Cargo.lock with no network
# access — the workspace has zero crates-io dependencies, so a plain
# toolchain install is enough.
#
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "=== build (release, all targets) ==="
cargo build --release --workspace --locked

echo "=== test (release) ==="
cargo test -q --release --workspace --locked

echo "=== clippy (-D warnings) ==="
cargo clippy --workspace --all-targets --locked -- -D warnings

echo "=== telemetry smoke (--telemetry JSONL capture) ==="
smokedir="$(mktemp -d -t lrd-telemetry.XXXXXX)"
trap 'rm -rf "$smokedir"' EXIT
capture="$smokedir/fig02.jsonl"
LRD_RESULTS_DIR="$smokedir" cargo run -q --release --locked \
    -p lrd-experiments --bin fig02_bounds -- \
    --quick --telemetry "$capture" > /dev/null
cargo run -q --release --locked --example telemetry_check -- "$capture" \
    --figure fig02_bounds --profile quick

echo "=== parallel smoke (--threads 2 figure run + telemetry check) ==="
# The same figure surface through the worker pool: two threads must
# produce a valid run and well-formed telemetry (determinism itself is
# pinned bit-for-bit by tests/parallel_determinism.rs).
par_capture="$smokedir/fig04_threads2.jsonl"
LRD_RESULTS_DIR="$smokedir" cargo run -q --release --locked \
    -p lrd-experiments --bin fig04_mtv_model -- \
    --quick --threads 2 --telemetry "$par_capture" > /dev/null
cargo run -q --release --locked --example telemetry_check -- "$par_capture" \
    --figure fig04_mtv_model --profile quick

echo "=== shard smoke (split / merge reproduces the unsharded surface) ==="
# Kill any stale checkpoints first: a leftover file from a previous run
# would be resumed from instead of solved, masking regressions.
rm -f "$smokedir"/fig04_shard*.jsonl
LRD_RESULTS_DIR="$smokedir" cargo run -q --release --locked \
    -p lrd-experiments --bin fig04_mtv_model -- --quick \
    > "$smokedir/fig04_full.csv"
LRD_RESULTS_DIR="$smokedir" cargo run -q --release --locked \
    -p lrd-experiments --bin fig04_mtv_model -- --quick \
    --shard 0/2 --checkpoint "$smokedir/fig04_shard0.jsonl" > /dev/null
LRD_RESULTS_DIR="$smokedir" cargo run -q --release --locked \
    -p lrd-experiments --bin fig04_mtv_model -- --quick \
    --shard 1/2 --checkpoint "$smokedir/fig04_shard1.jsonl" > /dev/null
LRD_RESULTS_DIR="$smokedir" cargo run -q --release --locked \
    -p lrd-experiments --bin sweep_merge -- \
    "$smokedir/fig04_shard0.jsonl" "$smokedir/fig04_shard1.jsonl" \
    > "$smokedir/fig04_merged.csv"
diff -u "$smokedir/fig04_full.csv" "$smokedir/fig04_merged.csv"

echo "=== scalar smoke (LRD_SIMD=off reproduces the SIMD surface) ==="
# The SIMD dispatch contract (DESIGN.md §14): vectorized and forced-
# scalar butterflies compute bit-identical transforms, so the figure
# CSV must be byte-identical to the default-dispatch run above.
LRD_RESULTS_DIR="$smokedir" LRD_SIMD=off cargo run -q --release --locked \
    -p lrd-experiments --bin fig04_mtv_model -- --quick \
    > "$smokedir/fig04_scalar.csv"
diff -u "$smokedir/fig04_full.csv" "$smokedir/fig04_scalar.csv"

echo "=== plan smoke (cost-weighted re-split reproduces the surface) ==="
# The shard smoke's checkpoints recorded per-point solve_us durations;
# feed them to the planner, re-run the sweep under the explicit
# assignment it emits, and the merged figure must still be byte-exact.
cargo run -q --release --locked -p lrd-experiments --bin sweep_plan -- \
    --shards 2 --output "$smokedir/assignment.json" \
    "$smokedir/fig04_shard0.jsonl" "$smokedir/fig04_shard1.jsonl"
for i in 0 1; do
    LRD_RESULTS_DIR="$smokedir" cargo run -q --release --locked \
        -p lrd-experiments --bin fig04_mtv_model -- --quick \
        --shard "$i/2" --assignment "$smokedir/assignment.json" \
        --checkpoint "$smokedir/fig04_planned$i.jsonl" > /dev/null
done
LRD_RESULTS_DIR="$smokedir" cargo run -q --release --locked \
    -p lrd-experiments --bin sweep_merge -- \
    "$smokedir/fig04_planned0.jsonl" "$smokedir/fig04_planned1.jsonl" \
    > "$smokedir/fig04_planned.csv"
diff -u "$smokedir/fig04_full.csv" "$smokedir/fig04_planned.csv"

echo "=== chaos smoke (work-stealing sweep survives a worker SIGKILL) ==="
# A coordinator plus two stealing workers, one SIGKILLed mid-lease and
# respawned: the merged figure must be byte-identical to the unsharded
# run, and the coordinator's telemetry ledger must balance exactly.
LRD_RESULTS_DIR="$smokedir" cargo run -q --release --locked \
    -p lrd-experiments --bin sweep_chaos -- \
    --figure fig04_mtv_model --quick --workers 2 --kill worker:0 \
    --tear-tail --seed 42 --heartbeat-ms 50 --lease-ttl-ms 250 \
    --batch-points 3 --dir "$smokedir/chaos" \
    --coord-telemetry "$smokedir/coord.jsonl" \
    > "$smokedir/fig04_chaos.csv"
diff -u "$smokedir/fig04_full.csv" "$smokedir/fig04_chaos.csv"
cargo run -q --release --locked --example telemetry_check -- \
    "$smokedir/coord.jsonl" --coord --figure fig04_mtv_model --profile quick

echo "=== fleet smoke (status query, sweep_top, sweep_trace, --fleet gate) ==="
# A live coordinator with two telemetry-capturing steal workers: poll
# the read-only status query, merge byte-exact, join the lease ledger
# with the per-worker telemetry into a Chrome trace, and reconcile the
# whole fleet with telemetry_check --fleet.
fleetdir="$smokedir/fleet"
mkdir -p "$fleetdir"
LRD_RESULTS_DIR="$smokedir" cargo run -q --release --locked \
    -p lrd-experiments --bin sweep_coord -- \
    --figure fig04_mtv_model --quick --listen 127.0.0.1:0 \
    --lease-log "$fleetdir/coord.leases" --heartbeat-ms 50 \
    --lease-ttl-ms 400 --batch-points 3 > "$fleetdir/coord.out" &
coord_pid=$!
for _ in $(seq 100); do
    grep -q '^listening ' "$fleetdir/coord.out" 2>/dev/null && break
    sleep 0.1
done
endpoint="$(awk '/^listening /{print $2}' "$fleetdir/coord.out")"
# Deterministic status poll: the coordinator is up and cannot drain
# before a worker appears, so --once must succeed here.
cargo run -q --release --locked -p lrd-experiments --bin sweep_top -- \
    --coord "$endpoint" --once
LRD_RESULTS_DIR="$smokedir" cargo run -q --release --locked \
    -p lrd-experiments --bin fig04_mtv_model -- --quick \
    --steal "$endpoint" --checkpoint "$fleetdir/w0.jsonl" \
    --telemetry "$fleetdir/w0-telemetry.jsonl" > /dev/null &
worker0_pid=$!
LRD_RESULTS_DIR="$smokedir" cargo run -q --release --locked \
    -p lrd-experiments --bin fig04_mtv_model -- --quick \
    --steal "$endpoint" --checkpoint "$fleetdir/w1.jsonl" \
    --telemetry "$fleetdir/w1-telemetry.jsonl" > /dev/null &
worker1_pid=$!
# Best-effort mid-flight roster poll: the quick sweep may drain before
# this lands, and the monitor is read-only either way.
cargo run -q --release --locked -p lrd-experiments --bin sweep_top -- \
    --coord "$endpoint" --once --json || true
wait "$worker0_pid" "$worker1_pid" "$coord_pid"
LRD_RESULTS_DIR="$smokedir" cargo run -q --release --locked \
    -p lrd-experiments --bin sweep_merge -- \
    "$fleetdir/w0.jsonl" "$fleetdir/w1.jsonl" \
    > "$fleetdir/fig04_fleet.csv"
diff -u "$smokedir/fig04_full.csv" "$fleetdir/fig04_fleet.csv"
cargo run -q --release --locked -p lrd-experiments --bin sweep_trace -- \
    --lease-log "$fleetdir/coord.leases" --out "$fleetdir/trace.json" \
    "$fleetdir/w0-telemetry.jsonl" "$fleetdir/w1-telemetry.jsonl"
cargo run -q --release --locked --example telemetry_check -- --fleet \
    --lease-log "$fleetdir/coord.leases" --trace "$fleetdir/trace.json" \
    --figure fig04_mtv_model --profile quick \
    "$fleetdir/w0-telemetry.jsonl" "$fleetdir/w1-telemetry.jsonl"

echo "=== service smoke (lrd-serve: status, session/batch equivalence, shutdown) ==="
# A frozen-clock daemon (state is a pure function of the flags), two
# flows, queried through the bundled client: the roster must be fully
# warmed, a converged incremental loss_bound must match the one-shot
# solve of the same fitted model *textually* (write_json_f64 renders
# exact shortest decimals, so bit-equality is string equality), and a
# shutdown request must end the process cleanly with flushed telemetry.
servedir="$smokedir/serve"
mkdir -p "$servedir"
cargo run -q --release --locked -p lrd-serve --bin lrd-serve -- \
    --listen "unix:$servedir/daemon.sock" \
    --flow mtv,family=pareto,service=10.0 \
    --flow bc,family=markov,mean=0.05,service=10.0 \
    --tick-ms 0 --warmup-ticks 2048 --window 256 --refresh-every 64 \
    --seed 7 --telemetry "$servedir/serve-telemetry.jsonl" \
    > "$servedir/serve.out" 2> /dev/null &
serve_pid=$!
for _ in $(seq 100); do
    grep -q '^listening ' "$servedir/serve.out" 2>/dev/null && break
    sleep 0.1
done
serve_endpoint="$(awk '/^listening /{print $2}' "$servedir/serve.out")"
ask() {
    cargo run -q --release --locked -p lrd-serve --bin lrd-serve -- \
        --ask "$serve_endpoint" --request "$1"
}
serve_status="$(ask '{"kind":"status"}')"
grep -q '"tick":2048' <<<"$serve_status"
[ "$(grep -o '"warmed":true' <<<"$serve_status" | wc -l)" -eq 2 ]
serve_bound=""
for _ in $(seq 200); do
    serve_bound="$(ask '{"kind":"loss_bound","flow":"bc","buffer":1.0}')"
    grep -q '"converged":true' <<<"$serve_bound" && break
done
grep -q '"converged":true' <<<"$serve_bound"
serve_solve="$(ask '{"kind":"solve","flow":"bc","buffer":1.0}')"
extract_bracket() { sed -E 's/.*"lower":([^,]*),"upper":([^,]*),.*/\1 \2/' <<<"$1"; }
[ "$(extract_bracket "$serve_bound")" = "$(extract_bracket "$serve_solve")" ]
ask '{"kind":"provision","flow":"bc","target_loss":0.01}' \
    | grep -q '"kind":"provision"'
ask '{"kind":"shutdown"}' | grep -q '"kind":"bye"'
wait "$serve_pid"
grep -q '"name":"serve.queries"' "$servedir/serve-telemetry.jsonl"

echo "=== trace smoke (out-of-core corpus: gen, validate, ingest, figure) ==="
# A small synthetic packet corpus through the whole out-of-core path:
# byte-level validation (`info` streams and checks every record), the
# two-pass one-pass-estimator ingestion (`hurst`), and the
# trace-driven figure whose solver telemetry must meet the registry
# budget like every other figure.
tracedir="$smokedir/trace"
mkdir -p "$tracedir"
cargo run -q --release --locked -p lrd-trace --bin lrd-trace -- \
    gen --out "$tracedir/bc.lrdpkt" --kind bellcore --bins 4096 --seed 42 \
    > /dev/null
trace_info="$(cargo run -q --release --locked -p lrd-trace --bin lrd-trace -- \
    info --trace "$tracedir/bc.lrdpkt")"
grep -q '^validated' <<<"$trace_info"
trace_hurst="$(cargo run -q --release --locked -p lrd-trace --bin lrd-trace -- \
    hurst --trace "$tracedir/bc.lrdpkt" --dt 0.01)"
grep -q '^pooled       : H = 0\.' <<<"$trace_hurst"
trace_capture="$smokedir/trace_loss.jsonl"
LRD_RESULTS_DIR="$smokedir" cargo run -q --release --locked \
    -p lrd-experiments --bin trace_loss -- \
    --quick --telemetry "$trace_capture" > /dev/null
cargo run -q --release --locked --example telemetry_check -- "$trace_capture" \
    --figure trace_loss --profile quick

echo "ci: all gates passed"
