//! Integration tests of the capacity-planning searches and the
//! occupancy-tail API against the simulator.

use lrd::fluidq::{min_buffer_for_loss, min_streams_for_loss};
use lrd::prelude::*;
use lrd_rng::SeedableRng;

fn opts() -> SolverOptions {
    SolverOptions {
        max_bins: 1 << 12,
        ..SolverOptions::default()
    }
}

#[test]
fn sized_buffer_validates_in_simulation() {
    // Size a buffer with the solver, then check by Monte Carlo that
    // the simulated loss indeed meets the target.
    let marginal = Marginal::new(&[2.0, 14.0], &[0.5, 0.5]);
    let iv = TruncatedPareto::new(0.05, 1.4, 0.5);
    let model = QueueModel::from_utilization(marginal.clone(), iv, 0.8, 0.1);
    let target = 2e-3;
    let d = min_buffer_for_loss(&model, target, model.service_rate() * 30.0, 0.05, &opts())
        .expect("feasible design");

    let source = FluidSource::new(marginal, iv);
    let mut rng = lrd_rng::rngs::SmallRng::seed_from_u64(71);
    let (rep, _) = simulate_source(&source, model.service_rate(), d.value, 2_000_000, &mut rng);
    assert!(
        rep.loss_rate <= target * 1.15,
        "simulated loss {:.3e} violates designed target {target:.1e}",
        rep.loss_rate
    );
}

#[test]
fn multiplexing_design_is_consistent_with_figures() {
    // The stream count needed at a tight target must be larger than at
    // a loose one, and both must satisfy their own targets.
    let marginal = Marginal::new(&[2.0, 14.0], &[0.5, 0.5]);
    let iv = TruncatedPareto::new(0.05, 1.4, 0.5);
    let model = QueueModel::from_utilization(marginal, iv, 0.8, 0.1);
    let loose = min_streams_for_loss(&model, 1e-2, 20, 200, &opts());
    let tight = min_streams_for_loss(&model, 1e-5, 20, 200, &opts());
    if let (Some(a), Some(b)) = (&loose, &tight) {
        assert!(b.value >= a.value, "tighter target needs fewer streams?");
        assert!(a.loss_upper_bound <= 1e-2 && b.loss_upper_bound <= 1e-5);
    } else {
        assert!(loose.is_some(), "loose target should be feasible");
    }
}

#[test]
fn occupancy_tail_matches_simulation() {
    // Tail probabilities from the bound chains bracket the empirical
    // arrival-epoch occupancy tail.
    let marginal = Marginal::new(&[2.0, 14.0], &[0.5, 0.5]);
    let iv = TruncatedPareto::new(0.05, 1.4, 1.0);
    let model = QueueModel::from_utilization(marginal.clone(), iv, 0.8, 0.2);
    let mut solver = BoundSolver::new(model.clone(), 256);
    for _ in 0..4000 {
        solver.step();
    }

    let source = FluidSource::new(marginal, iv);
    let mut rng = lrd_rng::rngs::SmallRng::seed_from_u64(72);
    let (_, samples) = simulate_source(
        &source,
        model.service_rate(),
        model.buffer(),
        600_000,
        &mut rng,
    );
    let stationary = &samples[100_000..];
    for frac in [0.25, 0.5, 0.75, 0.9] {
        let x = model.buffer() * frac;
        let bracket = solver.tail_probability(x);
        let emp = stationary.iter().filter(|s| s.occupancy > x).count() as f64
            / stationary.len() as f64;
        assert!(
            emp >= bracket.from_lower_chain - 0.02 && emp <= bracket.from_upper_chain + 0.02,
            "tail at {frac} B: empirical {emp:.4} outside [{:.4}, {:.4}]",
            bracket.from_lower_chain,
            bracket.from_upper_chain
        );
    }
}

#[test]
fn mean_occupancy_brackets_simulation() {
    let marginal = Marginal::new(&[2.0, 14.0], &[0.5, 0.5]);
    let iv = TruncatedPareto::new(0.05, 1.4, 1.0);
    let model = QueueModel::from_utilization(marginal.clone(), iv, 0.8, 0.2);
    let mut solver = BoundSolver::new(model.clone(), 256);
    for _ in 0..4000 {
        solver.step();
    }
    let bracket = solver.mean_occupancy();

    let source = FluidSource::new(marginal, iv);
    let mut rng = lrd_rng::rngs::SmallRng::seed_from_u64(73);
    let (_, samples) = simulate_source(
        &source,
        model.service_rate(),
        model.buffer(),
        600_000,
        &mut rng,
    );
    let stationary = &samples[100_000..];
    let emp = stationary.iter().map(|s| s.occupancy).sum::<f64>() / stationary.len() as f64;
    let slack = 0.05 * model.buffer();
    assert!(
        emp >= bracket.from_lower_chain - slack && emp <= bracket.from_upper_chain + slack,
        "mean occupancy {emp:.4} outside [{:.4}, {:.4}]",
        bracket.from_lower_chain,
        bracket.from_upper_chain
    );
}
