//! End-to-end exercises of the trace-analysis pipeline: synthesis →
//! marginal/epoch extraction → shuffling → simulation, plus Hurst
//! estimation on every generator the workspace ships.

use lrd::prelude::*;
use lrd::traffic::{fgn, onoff, shuffle};
use lrd_rng::SeedableRng;

#[test]
fn synthetic_traces_reproduce_published_statistics() {
    let mtv = synth::mtv_like_with_len(synth::DEFAULT_SEED, 1 << 15);
    assert_eq!(mtv.dt(), synth::MTV_DT);
    assert!((mtv.mean_rate() - synth::MTV_MEAN_RATE).abs() / synth::MTV_MEAN_RATE < 0.05);

    let bc = synth::bellcore_like_with_len(synth::DEFAULT_SEED, 1 << 15);
    assert_eq!(bc.dt(), synth::BELLCORE_DT);
    assert!(bc.rates().iter().all(|&r| r >= 0.0));

    // The headline statistics the solver consumes: a 50-bin marginal
    // that sums to one and a positive mean epoch.
    for t in [&mtv, &bc] {
        let m = t.marginal(50);
        assert!((m.probs().iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(t.mean_epoch(50) > t.dt() * 0.99);
    }
}

#[test]
fn all_estimators_agree_on_strong_lrd() {
    let mut rng = lrd_rng::rngs::SmallRng::seed_from_u64(1);
    let x = fgn::davies_harte(&mut rng, 0.9, 1 << 16);
    let estimates = [
        ("rs", rs_estimate(&x).h),
        ("vt", variance_time_estimate(&x).h),
        ("gph", gph_estimate(&x).h),
        ("wav", wavelet_estimate(&x).h),
    ];
    for (name, h) in estimates {
        assert!(
            (h - 0.9).abs() < 0.15,
            "{name} estimate {h} too far from true 0.9"
        );
    }
}

#[test]
fn onoff_aggregate_feeds_the_queue_sensibly() {
    // The paper's physical LRD generator, run through the simulator:
    // higher aggregate load ⇒ higher loss; loss always in [0, 1].
    let src = onoff::OnOffSource::new(1.0, 1.4, 0.05, 1.4, 0.15);
    let mut rng = lrd_rng::rngs::SmallRng::seed_from_u64(2);
    let trace = onoff::aggregate_trace(&src, 30, 0.1, 40_000, &mut rng);
    let mean = trace.mean_rate();
    let mut prev = -1.0;
    for util in [0.5, 0.7, 0.9] {
        let c = mean / util;
        let rep = simulate_trace(&trace, c, c * 0.5);
        assert!((0.0..=1.0).contains(&rep.loss_rate));
        assert!(
            rep.loss_rate >= prev,
            "loss should rise with utilization: {} after {prev} at ρ={util}",
            rep.loss_rate
        );
        prev = rep.loss_rate;
    }
}

#[test]
fn shuffling_preserves_marginal_exactly() {
    let trace = synth::mtv_like_with_len(7, 4096);
    let mut rng = lrd_rng::rngs::SmallRng::seed_from_u64(3);
    let shuffled = shuffle::external_shuffle(&trace, 37, &mut rng);
    let a = trace.marginal(50);
    let b = shuffled.marginal(50);
    assert_eq!(a.rates(), b.rates());
    for (pa, pb) in a.probs().iter().zip(b.probs()) {
        assert!((pa - pb).abs() < 1e-12);
    }
    // And the simulated mean work is identical.
    assert!((trace.total_work() - shuffled.total_work()).abs() < 1e-6);
}

#[test]
fn internal_shuffle_preserves_long_range_structure() {
    // Internal shuffling (the dual of Fig. 6) keeps block means, so
    // an aggregated Hurst estimate is unchanged while the fine-scale
    // correlation collapses.
    let mut rng = lrd_rng::rngs::SmallRng::seed_from_u64(4);
    let g = fgn::davies_harte(&mut rng, 0.9, 1 << 15);
    let trace = Trace::new(0.01, g.iter().map(|v| v.abs() + 0.1).collect());
    let block = 64;
    let shuffled = shuffle::internal_shuffle(&trace, block, &mut rng);
    let agg_orig = variance_time_estimate(trace.aggregate(block).rates()).h;
    let agg_shuf = variance_time_estimate(shuffled.aggregate(block).rates()).h;
    assert!(
        (agg_orig - agg_shuf).abs() < 0.05,
        "block-level H changed: {agg_orig} vs {agg_shuf}"
    );
}

#[test]
fn corpus_experiments_are_deterministic_end_to_end() {
    use lrd_experiments::figures::{fig09, Profile};
    use lrd_experiments::Corpus;
    let a = fig09::run(&Corpus::quick(), Profile::Quick);
    let b = fig09::run(&Corpus::quick(), Profile::Quick);
    assert_eq!(a.len(), b.len());
    for (sa, sb) in a.iter().zip(&b) {
        assert_eq!(sa.points, sb.points, "nondeterminism in {}", sa.name);
    }
}
