//! Fault-injection suite for the hermetic fault-tolerance layer.
//!
//! Every degenerate input below must produce either a typed error or a
//! degraded-but-valid solution — **never** a panic and never a hang.
//! The cases mirror the error-handling contract in DESIGN.md: NaN/±inf
//! parameters, empty and zero-mass marginals, shape parameters at and
//! beyond the (1, 2) boundary, zero-length traces, and budget-starved
//! solver configurations.

use lrd::prelude::*;
use lrd::rng::{rngs::SmallRng, SeedableRng};
use lrd::traffic::Interarrival;

fn model_err<T>(r: Result<T, ModelError>) -> ModelError {
    r.err().expect("expected a ModelError")
}

// ---------------------------------------------------------------- pareto

#[test]
fn pareto_nan_and_inf_parameters_are_typed_errors() {
    for (theta, alpha, cutoff) in [
        (f64::NAN, 1.4, 1.0),
        (f64::INFINITY, 1.4, 1.0),
        (0.05, f64::NAN, 1.0),
        (0.05, f64::NEG_INFINITY, 1.0),
        (0.05, 1.4, f64::NAN),
    ] {
        match model_err(TruncatedPareto::try_new(theta, alpha, cutoff)) {
            ModelError::NonFiniteInput { .. } => {}
            other => panic!("expected NonFiniteInput, got {other:?}"),
        }
    }
    // An infinite cutoff is the legitimate untruncated (LRD) case.
    assert!(TruncatedPareto::try_new(0.05, 1.4, f64::INFINITY).is_ok());
}

#[test]
fn pareto_alpha_at_and_beyond_the_open_interval_boundary() {
    // The self-similar regime is the *open* interval (1, 2): both
    // endpoints and everything outside must be rejected.
    for alpha in [1.0, 2.0, 0.9, 2.5, -1.4, 0.0] {
        match model_err(TruncatedPareto::try_new(0.05, alpha, 1.0)) {
            ModelError::ParamOutOfDomain { param, value, .. } => {
                assert_eq!(param, "alpha");
                assert_eq!(value, alpha);
            }
            other => panic!("alpha {alpha}: expected ParamOutOfDomain, got {other:?}"),
        }
    }
    // Just inside the boundary is fine.
    assert!(TruncatedPareto::try_new(0.05, 1.0 + 1e-9, 1.0).is_ok());
    assert!(TruncatedPareto::try_new(0.05, 2.0 - 1e-9, 1.0).is_ok());
}

#[test]
fn pareto_nonpositive_scale_and_cutoff_rejected() {
    assert!(TruncatedPareto::try_new(0.0, 1.4, 1.0).is_err());
    assert!(TruncatedPareto::try_new(-0.05, 1.4, 1.0).is_err());
    assert!(TruncatedPareto::try_new(0.05, 1.4, 0.0).is_err());
    assert!(TruncatedPareto::try_new(0.05, 1.4, -2.0).is_err());
}

#[test]
fn hurst_mapping_boundaries_rejected() {
    for hurst in [0.5, 1.0, 0.2, 1.3, f64::NAN] {
        assert!(
            TruncatedPareto::try_from_hurst(hurst, 0.05, 1.0).is_err(),
            "H = {hurst} should be rejected"
        );
    }
    assert!(TruncatedPareto::try_from_hurst(0.8, 0.05, 1.0).is_ok());
}

#[test]
fn exponential_degenerate_means_rejected() {
    for mean in [0.0, -1.0, f64::NAN, f64::INFINITY] {
        assert!(Exponential::try_new(mean).is_err(), "mean = {mean}");
    }
}

// -------------------------------------------------------------- marginal

#[test]
fn marginal_length_mismatch_is_typed() {
    match model_err(Marginal::try_new(&[1.0], &[0.5, 0.5])) {
        ModelError::LengthMismatch { left, right, .. } => {
            assert_eq!((left, right), (1, 2));
        }
        other => panic!("expected LengthMismatch, got {other:?}"),
    }
}

#[test]
fn empty_marginal_is_typed() {
    match model_err(Marginal::try_new(&[], &[])) {
        ModelError::EmptySupport { .. } => {}
        other => panic!("expected EmptySupport, got {other:?}"),
    }
}

#[test]
fn marginal_non_finite_entries_are_typed() {
    assert!(matches!(
        model_err(Marginal::try_new(&[f64::NAN], &[1.0])),
        ModelError::NonFiniteInput { .. }
    ));
    assert!(matches!(
        model_err(Marginal::try_new(&[f64::INFINITY, 1.0], &[0.5, 0.5])),
        ModelError::NonFiniteInput { .. }
    ));
    assert!(matches!(
        model_err(Marginal::try_new(&[1.0], &[f64::NAN])),
        ModelError::NonFiniteInput { .. }
    ));
}

#[test]
fn marginal_negative_probability_is_typed() {
    assert!(matches!(
        model_err(Marginal::try_new(&[1.0, 2.0], &[0.5, -0.5])),
        ModelError::ParamOutOfDomain { param: "probability", .. }
    ));
}

#[test]
fn zero_mass_marginal_is_typed() {
    match model_err(Marginal::try_new(&[1.0, 2.0], &[0.0, 0.0])) {
        ModelError::NonNormalized { total } => assert_eq!(total, 0.0),
        other => panic!("expected NonNormalized, got {other:?}"),
    }
}

// ----------------------------------------------------------------- trace

#[test]
fn zero_length_trace_is_typed() {
    match model_err(Trace::try_new(0.01, vec![])) {
        ModelError::EmptySupport { what } => assert_eq!(what, "trace"),
        other => panic!("expected EmptySupport, got {other:?}"),
    }
}

#[test]
fn trace_bad_dt_and_rates_are_typed() {
    assert!(Trace::try_new(0.0, vec![1.0]).is_err());
    assert!(Trace::try_new(-0.1, vec![1.0]).is_err());
    assert!(Trace::try_new(f64::NAN, vec![1.0]).is_err());
    assert!(Trace::try_new(f64::INFINITY, vec![1.0]).is_err());
    assert!(matches!(
        model_err(Trace::try_new(0.01, vec![1.0, f64::NAN])),
        ModelError::NonFiniteInput { .. }
    ));
    assert!(matches!(
        model_err(Trace::try_new(0.01, vec![1.0, -1.0])),
        ModelError::ParamOutOfDomain { .. }
    ));
}

// ---------------------------------------------------------------- source

/// An interval distribution reporting a non-finite mean, standing in
/// for a buggy downstream `Interarrival` implementation.
struct BrokenIntervals;

impl Interarrival for BrokenIntervals {
    fn ccdf(&self, _t: f64) -> f64 {
        1.0
    }
    fn prob_ge(&self, _t: f64) -> f64 {
        1.0
    }
    fn mean(&self) -> f64 {
        f64::NAN
    }
    fn variance(&self) -> f64 {
        f64::NAN
    }
    fn int_ccdf(&self, _t: f64) -> f64 {
        f64::NAN
    }
    fn sup(&self) -> f64 {
        f64::INFINITY
    }
    fn sample<R: lrd::rng::Rng + ?Sized>(&self, _rng: &mut R) -> f64 {
        f64::NAN
    }
}

#[test]
fn fluid_source_rejects_degenerate_interval_distribution() {
    let m = Marginal::new(&[1.0, 5.0], &[0.5, 0.5]);
    assert!(matches!(
        model_err(FluidSource::try_new(m, BrokenIntervals)),
        ModelError::NonFiniteInput { .. }
    ));
}

// ----------------------------------------------------------- queue model

#[test]
fn queue_model_degenerate_parameters_are_typed() {
    let m = || Marginal::new(&[2.0, 14.0], &[0.5, 0.5]);
    let d = || TruncatedPareto::new(0.05, 1.4, 1.0);
    for (c, b) in [
        (f64::NAN, 1.0),
        (f64::INFINITY, 1.0),
        (0.0, 1.0),
        (-1.0, 1.0),
        (10.0, f64::NAN),
        (10.0, f64::INFINITY),
        (10.0, 0.0),
        (10.0, -1.0),
    ] {
        assert!(
            QueueModel::try_new(m(), d(), c, b).is_err(),
            "c = {c}, B = {b} should be rejected"
        );
    }
    // A marginal rate exactly at the service rate is the excluded
    // degenerate case.
    assert!(matches!(
        model_err(QueueModel::try_new(m(), d(), 14.0, 1.0)),
        ModelError::ParamOutOfDomain { param: "marginal rate", .. }
    ));
}

#[test]
fn queue_model_bad_utilization_is_typed() {
    let m = || Marginal::new(&[2.0, 14.0], &[0.5, 0.5]);
    let d = || TruncatedPareto::new(0.05, 1.4, 1.0);
    for rho in [0.0, -0.5, 1.5, f64::NAN] {
        assert!(
            QueueModel::try_from_utilization(m(), d(), rho, 1.0).is_err(),
            "utilization {rho} should be rejected"
        );
    }
    // A zero-mean marginal cannot be loaded to any utilization.
    assert!(QueueModel::try_from_utilization(
        Marginal::constant(0.0),
        d(),
        0.8,
        1.0
    )
    .is_err());
}

// ------------------------------------------------------------- simulator

#[test]
fn fluid_queue_degenerate_parameters_are_typed() {
    for (c, b) in [(0.0, 1.0), (f64::NAN, 1.0), (1.0, 0.0), (1.0, f64::NAN)] {
        assert!(FluidQueue::try_new(c, b).is_err(), "c = {c}, B = {b}");
    }
}

#[test]
fn bad_offers_are_typed_and_leave_the_queue_untouched() {
    let mut q = FluidQueue::new(1.0, 2.0);
    q.offer(2.0, 1.0);
    let (occ, arrived, elapsed) = (q.occupancy(), q.arrived(), q.elapsed());
    for (rate, dur) in [
        (f64::NAN, 1.0),
        (f64::INFINITY, 1.0),
        (-1.0, 1.0),
        (1.0, f64::NAN),
        (1.0, f64::INFINITY),
        (1.0, 0.0),
        (1.0, -1.0),
    ] {
        assert!(q.try_offer(rate, dur).is_err(), "rate {rate}, dur {dur}");
        assert_eq!(q.occupancy(), occ, "occupancy changed on failed offer");
        assert_eq!(q.arrived(), arrived, "arrivals changed on failed offer");
        assert_eq!(q.elapsed(), elapsed, "clock changed on failed offer");
    }
}

#[test]
fn simulate_source_zero_intervals_is_typed() {
    let source = FluidSource::new(
        Marginal::new(&[2.0, 14.0], &[0.5, 0.5]),
        TruncatedPareto::new(0.05, 1.4, 1.0),
    );
    let mut rng = SmallRng::seed_from_u64(1);
    assert!(try_simulate_source(&source, 10.0, 2.0, 0, &mut rng).is_err());
    // And bad queue parameters travel through the same typed path.
    assert!(try_simulate_source(&source, f64::NAN, 2.0, 10, &mut rng).is_err());
}

#[test]
fn simulate_trace_bad_queue_is_typed() {
    let trace = Trace::new(0.01, vec![1.0, 2.0, 3.0]);
    assert!(try_simulate_trace(&trace, 0.0, 1.0).is_err());
    assert!(try_simulate_trace(&trace, 1.0, f64::NEG_INFINITY).is_err());
    assert!(try_simulate_trace(&trace, 1.0, 1.0).is_ok());
}

// ---------------------------------------------------------------- solver

fn lossy_model() -> QueueModel<TruncatedPareto> {
    QueueModel::new(
        Marginal::new(&[2.0, 14.0], &[0.5, 0.5]),
        TruncatedPareto::new(0.05, 1.4, 1.0),
        10.0,
        2.0,
    )
}

/// Fallible solve through the session API — the typed-error surface
/// under test.
fn session_solve(
    model: &QueueModel<TruncatedPareto>,
    opts: &SolverOptions,
) -> Result<LossSolution, SolverError> {
    Ok(SolveSession::builder(model).options(opts).run()?.0)
}

#[test]
fn invalid_solver_options_are_typed_errors() {
    let bad: Vec<SolverOptions> = vec![
        SolverOptions { rel_gap: 0.0, ..SolverOptions::default() },
        SolverOptions { rel_gap: -0.1, ..SolverOptions::default() },
        SolverOptions { rel_gap: f64::NAN, ..SolverOptions::default() },
        SolverOptions { rel_gap: f64::INFINITY, ..SolverOptions::default() },
        SolverOptions { initial_bins: 1, ..SolverOptions::default() },
        SolverOptions { max_bins: 1, ..SolverOptions::default() },
        SolverOptions { zero_floor: f64::NAN, ..SolverOptions::default() },
        SolverOptions { zero_floor: -1.0, ..SolverOptions::default() },
        SolverOptions { max_iterations_per_level: 0, ..SolverOptions::default() },
        SolverOptions { stall_tolerance: f64::NAN, ..SolverOptions::default() },
        SolverOptions { stall_tolerance: 1.0, ..SolverOptions::default() },
        SolverOptions { stall_window: 0, ..SolverOptions::default() },
        SolverOptions { max_total_cost: 0.0, ..SolverOptions::default() },
        SolverOptions { max_total_cost: f64::NAN, ..SolverOptions::default() },
    ];
    let model = lossy_model();
    for opts in &bad {
        match session_solve(&model, opts) {
            Err(SolverError::InvalidOption { .. }) => {}
            other => panic!("expected InvalidOption for {opts:?}, got {other:?}"),
        }
    }
}

#[test]
fn budget_starved_solver_degrades_instead_of_failing() {
    let opts = SolverOptions {
        max_total_cost: 300.0,
        rel_gap: 1e-9, // unreachable: forces the budget path
        ..SolverOptions::default()
    };
    let sol = session_solve(&lossy_model(), &opts).expect("valid options");
    assert!(!sol.converged);
    assert!(sol.is_degraded());
    assert!(matches!(
        sol.degradation,
        Some(DegradationReason::BudgetExhausted { spent, budget })
            if spent > budget && budget == 300.0
    ));
    assert!(sol.lower.is_finite() && sol.upper.is_finite());
    assert!(0.0 <= sol.lower && sol.lower <= sol.upper);
}

#[test]
fn grid_ceiling_degrades_instead_of_failing() {
    let opts = SolverOptions {
        initial_bins: 8,
        max_bins: 8, // no refinement allowed
        rel_gap: 1e-9,
        ..SolverOptions::default()
    };
    let sol = session_solve(&lossy_model(), &opts).expect("valid options");
    assert!(!sol.converged);
    assert_eq!(sol.bins, 8);
    assert!(matches!(
        sol.degradation,
        Some(DegradationReason::GridCeiling { max_bins: 8 })
    ));
    assert!(sol.lower.is_finite() && sol.upper.is_finite());
    assert!(sol.lower <= sol.upper);
}

#[test]
fn stall_triggers_refinement_before_hitting_the_ceiling() {
    // With an unreachable gap target the coarse grid must stall, the
    // stall must trigger one refinement (8 → 16 bins), and the ceiling
    // must then stop the solve with valid non-converged bounds.
    let opts = SolverOptions {
        initial_bins: 8,
        max_bins: 16,
        rel_gap: 1e-9,
        ..SolverOptions::default()
    };
    let sol = session_solve(&lossy_model(), &opts).expect("valid options");
    assert!(!sol.converged);
    assert_eq!(sol.bins, 16, "stall did not trigger refinement");
    assert!(matches!(
        sol.degradation,
        Some(DegradationReason::GridCeiling { max_bins: 16 })
    ));
    assert!(sol.lower.is_finite() && sol.upper.is_finite());
    assert!(sol.lower <= sol.upper);
}

#[test]
fn bound_solver_rejects_degenerate_grids() {
    assert!(BoundSolver::try_new(lossy_model(), 0).is_err());
    assert!(BoundSolver::try_new(lossy_model(), 1).is_err());
    assert!(BoundSolver::try_new(lossy_model(), 2).is_ok());
}

#[test]
fn clean_solve_reports_no_degradation() {
    let sol = session_solve(&lossy_model(), &SolverOptions::default()).expect("valid options");
    assert!(sol.converged);
    assert!(!sol.is_degraded());
    assert_eq!(sol.degradation, None);
}

#[test]
fn error_messages_are_informative() {
    // The Display strings are the public degradation contract: they
    // must name the parameter and the violated constraint.
    let e = TruncatedPareto::try_new(0.05, 2.5, 1.0).unwrap_err();
    let msg = e.to_string();
    assert!(msg.contains("alpha") && msg.contains("(1, 2)") && msg.contains("2.5"), "{msg}");

    let e = session_solve(
        &lossy_model(),
        &SolverOptions { rel_gap: -1.0, ..SolverOptions::default() },
    )
    .unwrap_err();
    let msg = e.to_string();
    assert!(msg.contains("rel_gap") && msg.contains("-1"), "{msg}");
}

// ------------------------------------------------- degradation telemetry

/// Tests below install a process-global telemetry subscriber, so they
/// must not overlap with each other; they serialize on this lock. Other
/// tests in this binary may still emit telemetry concurrently, so every
/// assertion filters on option values unique to the locked test
/// (budget = 123.0, max_bins = 4).
static TELEMETRY_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn telemetry_lock() -> std::sync::MutexGuard<'static, ()> {
    TELEMETRY_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[test]
fn degraded_solves_emit_typed_telemetry_events() {
    let _serial = telemetry_lock();
    let collector = std::sync::Arc::new(lrd::obs::CollectingSubscriber::new());
    {
        let _guard = lrd::obs::install(collector.clone());
        let budget_starved = SolverOptions {
            max_total_cost: 123.0,
            rel_gap: 1e-9,
            ..SolverOptions::default()
        };
        let sol = session_solve(&lossy_model(), &budget_starved).expect("valid options");
        assert!(matches!(sol.degradation, Some(DegradationReason::BudgetExhausted { .. })));

        let ceiling_bound = SolverOptions {
            max_bins: 4,
            rel_gap: 1e-9,
            ..SolverOptions::default()
        };
        let sol = session_solve(&lossy_model(), &ceiling_bound).expect("valid options");
        assert!(matches!(sol.degradation, Some(DegradationReason::GridCeiling { max_bins: 4 })));
    }
    let degraded = collector.events("solver.degraded");
    assert!(
        degraded.iter().any(|e| {
            e.field("reason").and_then(|v| v.as_str()) == Some("budget_exhausted")
                && e.field("budget").and_then(|v| v.as_f64()) == Some(123.0)
        }),
        "no budget_exhausted event with budget = 123: {degraded:?}"
    );
    assert!(
        degraded.iter().any(|e| {
            e.field("reason").and_then(|v| v.as_str()) == Some("grid_ceiling")
                && e.field("max_bins").and_then(|v| v.as_u64()) == Some(4)
        }),
        "no grid_ceiling event with max_bins = 4: {degraded:?}"
    );
}

#[test]
fn every_degradation_reason_variant_has_a_typed_event() {
    // MassLeak and NumericalBreakdown are hard to force through a real
    // solve, so the event-shape contract is checked on emit() directly:
    // each variant must produce a "solver.degraded" event whose
    // `reason` field round-trips kind(), with the variant payload
    // attached as typed fields.
    let _serial = telemetry_lock();
    let variants = [
        DegradationReason::GridCeiling { max_bins: 97 },
        DegradationReason::BudgetExhausted { spent: 456.0, budget: 123.0 },
        DegradationReason::MassLeak { deficit: 3e-7 },
        DegradationReason::NumericalBreakdown,
    ];
    let collector = std::sync::Arc::new(lrd::obs::CollectingSubscriber::new());
    {
        let _guard = lrd::obs::install(collector.clone());
        for reason in &variants {
            reason.emit();
        }
    }
    for reason in &variants {
        let hit = collector
            .events("solver.degraded")
            .into_iter()
            .find(|e| e.field("reason").and_then(|v| v.as_str()) == Some(reason.kind()))
            .unwrap_or_else(|| panic!("no solver.degraded event for {:?}", reason.kind()));
        match *reason {
            DegradationReason::GridCeiling { max_bins } => {
                assert_eq!(hit.field("max_bins").and_then(|v| v.as_u64()), Some(max_bins as u64));
            }
            DegradationReason::BudgetExhausted { spent, budget } => {
                assert_eq!(hit.field("spent").and_then(|v| v.as_f64()), Some(spent));
                assert_eq!(hit.field("budget").and_then(|v| v.as_f64()), Some(budget));
            }
            DegradationReason::MassLeak { deficit } => {
                assert_eq!(hit.field("deficit").and_then(|v| v.as_f64()), Some(deficit));
            }
            DegradationReason::NumericalBreakdown => {}
        }
    }
}
