//! Cross-validation of the numerical solver against Monte-Carlo
//! simulation — the strongest end-to-end correctness check in the
//! workspace: the two implementations share no code beyond the traffic
//! model itself.

use lrd::prelude::*;
use lrd_rng::SeedableRng;

/// Asserts that the simulated loss rate falls inside (a slightly
/// widened copy of) the solver's provable bounds.
fn check(model: &QueueModel<TruncatedPareto>, seed: u64, intervals: usize) {
    let sol = SolveSession::builder(model)
        .options(&SolverOptions::default())
        .solve();
    assert!(sol.converged, "solver did not converge for {model:?}");
    let source = FluidSource::new(model.marginal().clone(), *model.intervals());
    let mut rng = lrd_rng::rngs::SmallRng::seed_from_u64(seed);
    let (rep, _) = simulate_source(
        &source,
        model.service_rate(),
        model.buffer(),
        intervals,
        &mut rng,
    );
    // Monte-Carlo noise: allow the simulated value to stray a little
    // beyond the bounds relative to the midpoint.
    let slack = 0.15 * sol.loss().max(1e-6);
    assert!(
        rep.loss_rate >= sol.lower - slack && rep.loss_rate <= sol.upper + slack,
        "simulated loss {:.4e} outside bounds [{:.4e}, {:.4e}] (model {model:?})",
        rep.loss_rate,
        sol.lower,
        sol.upper,
    );
}

#[test]
fn two_rate_source_across_cutoffs() {
    let marginal = Marginal::new(&[2.0, 14.0], &[0.5, 0.5]);
    for (i, tc) in [0.2, 1.0, 5.0, f64::INFINITY].into_iter().enumerate() {
        let model = QueueModel::from_utilization(
            marginal.clone(),
            TruncatedPareto::new(0.05, 1.4, tc),
            0.8,
            0.2,
        );
        check(&model, 100 + i as u64, 1_500_000);
    }
}

#[test]
fn two_rate_source_across_buffers() {
    let marginal = Marginal::new(&[2.0, 14.0], &[0.5, 0.5]);
    for (i, b) in [0.05, 0.2, 0.8].into_iter().enumerate() {
        let model = QueueModel::from_utilization(
            marginal.clone(),
            TruncatedPareto::new(0.05, 1.4, 1.0),
            0.8,
            b,
        );
        check(&model, 200 + i as u64, 1_500_000);
    }
}

#[test]
fn multi_rate_marginal_and_low_utilization() {
    let marginal = Marginal::new(
        &[0.5, 3.0, 7.0, 12.0, 20.0],
        &[0.3, 0.3, 0.2, 0.15, 0.05],
    );
    for (i, util) in [0.4, 0.7].into_iter().enumerate() {
        let model = QueueModel::from_utilization(
            marginal.clone(),
            TruncatedPareto::new(0.03, 1.6, 2.0),
            util,
            0.3,
        );
        check(&model, 300 + i as u64, 1_500_000);
    }
}

#[test]
fn exponential_intervals_agree_too() {
    let marginal = Marginal::new(&[2.0, 14.0], &[0.5, 0.5]);
    let model = QueueModel::from_utilization(marginal.clone(), Exponential::new(0.08), 0.8, 0.2);
    let sol = SolveSession::builder(&model)
        .options(&SolverOptions::default())
        .solve();
    assert!(sol.converged);
    let source = FluidSource::new(marginal, Exponential::new(0.08));
    let mut rng = lrd_rng::rngs::SmallRng::seed_from_u64(42);
    let (rep, _) = simulate_source(
        &source,
        model.service_rate(),
        model.buffer(),
        1_500_000,
        &mut rng,
    );
    let slack = 0.15 * sol.loss().max(1e-6);
    assert!(
        rep.loss_rate >= sol.lower - slack && rep.loss_rate <= sol.upper + slack,
        "simulated {:.4e} vs [{:.4e}, {:.4e}]",
        rep.loss_rate,
        sol.lower,
        sol.upper
    );
}

#[test]
fn occupancy_distribution_matches_solver_bounds() {
    // Distribution-level check: the empirical CDF of the occupancy at
    // arrival epochs must lie between the solver's bound CDFs.
    let marginal = Marginal::new(&[2.0, 14.0], &[0.5, 0.5]);
    let iv = TruncatedPareto::new(0.05, 1.4, 1.0);
    let model = QueueModel::from_utilization(marginal.clone(), iv, 0.8, 0.2);

    let bins = 200;
    let mut solver = BoundSolver::new(model.clone(), bins);
    for _ in 0..3_000 {
        solver.step();
    }

    let source = FluidSource::new(marginal, iv);
    let mut rng = lrd_rng::rngs::SmallRng::seed_from_u64(7);
    let (_, samples) = simulate_source(
        &source,
        model.service_rate(),
        model.buffer(),
        400_000,
        &mut rng,
    );
    // Discard a warm-up prefix so the empirical law is stationary.
    let stationary = &samples[50_000..];

    let d = model.buffer() / bins as f64;
    let lower = solver.occupancy_lower();
    let upper = solver.occupancy_upper();
    let mut cdf_l = 0.0;
    let mut cdf_h = 0.0;
    for j in (0..=bins).step_by(20) {
        cdf_l = lower[..=j].iter().sum::<f64>();
        cdf_h = upper[..=j].iter().sum::<f64>();
        let x = j as f64 * d;
        let emp = stationary.iter().filter(|s| s.occupancy <= x + 1e-12).count() as f64
            / stationary.len() as f64;
        // Q_L ⪯ Q ⪯ Q_H means CDF_L >= CDF(Q) >= CDF_H; allow MC slack.
        assert!(
            emp <= cdf_l + 0.02 && emp >= cdf_h - 0.02,
            "empirical CDF {emp:.4} at x={x:.3} outside [{cdf_h:.4}, {cdf_l:.4}]"
        );
    }
    let _ = (cdf_l, cdf_h);
}
