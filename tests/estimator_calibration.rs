//! Statistical calibration of the Hurst estimators on exact fGn: every
//! estimator must land within a few standard errors of the true value
//! across the Hurst range the paper's traces occupy.

use lrd::prelude::*;
use lrd::stats::hurst::{gph_std_error, whittle_std_error};
use lrd::stats::whittle_estimate;
use lrd::traffic::fgn;
use lrd_rng::SeedableRng;

const N: usize = 1 << 16;

fn sample(h: f64, seed: u64) -> Vec<f64> {
    let mut rng = lrd_rng::rngs::SmallRng::seed_from_u64(seed);
    fgn::davies_harte(&mut rng, h, N)
}

#[test]
fn gph_within_confidence_band() {
    // GPH bandwidth m = ⌊√n⌋ = 256 → s.e. ≈ 0.04; allow 3 s.e. plus a
    // small bias allowance.
    let m = (N as f64).sqrt() as usize;
    let band = 3.0 * gph_std_error(m) + 0.02;
    for (i, &h) in [0.6, 0.75, 0.9].iter().enumerate() {
        let est = gph_estimate(&sample(h, 900 + i as u64));
        assert!(
            (est.h - h).abs() < band,
            "GPH at H={h}: estimate {:.3} outside ±{band:.3}",
            est.h
        );
    }
}

#[test]
fn whittle_within_confidence_band() {
    // Local Whittle bandwidth m = ⌊n^0.65⌋ ≈ 1351 → s.e. ≈ 0.014; the
    // n^0.65 bandwidth trades variance for bias, so allow 3 s.e. plus a
    // larger bias allowance.
    let m = (N as f64).powf(0.65) as usize;
    let band = 3.0 * whittle_std_error(m) + 0.04;
    for (i, &h) in [0.6, 0.75, 0.9].iter().enumerate() {
        let est = whittle_estimate(&sample(h, 910 + i as u64));
        assert!(
            (est.h - h).abs() < band,
            "Whittle at H={h}: estimate {:.3} outside ±{band:.3}",
            est.h
        );
    }
}

#[test]
fn estimators_rank_hurst_correctly() {
    // Even where absolute calibration is biased, every estimator must
    // order clearly separated Hurst values correctly.
    let lo = sample(0.6, 920);
    let hi = sample(0.9, 921);
    type Estimator = fn(&[f64]) -> lrd::stats::HurstEstimate;
    let pairs: [(&str, Estimator); 4] = [
        ("rs", rs_estimate),
        ("vt", variance_time_estimate),
        ("gph", gph_estimate),
        ("wavelet", wavelet_estimate),
    ];
    for (name, est) in pairs {
        let a = est(&lo).h;
        let b = est(&hi).h;
        assert!(b > a + 0.1, "{name} failed to separate H=0.6 from H=0.9: {a:.3} vs {b:.3}");
    }
}

#[test]
fn estimates_are_stable_across_seeds() {
    // Dispersion across independent sample paths stays modest for the
    // wavelet estimator (the one the experiments report).
    let h = 0.83;
    let estimates: Vec<f64> = (0..5)
        .map(|i| wavelet_estimate(&sample(h, 930 + i)).h)
        .collect();
    let mean = lrd::stats::mean(&estimates);
    let sd = lrd::stats::std_dev(&estimates);
    assert!((mean - h).abs() < 0.05, "wavelet mean bias {mean:.3} vs {h}");
    assert!(sd < 0.04, "wavelet dispersion too high: {sd:.3}");
}
