//! The resumable [`SolveSession`] is a pure control-flow refactor of
//! the historical one-shot protocol: chopping a solve into arbitrarily
//! small `step_budget` chunks must change *when* work happens, never
//! *what* is computed. This suite drives every sweep figure in the
//! registry through heavily chunked sessions and demands the surfaces
//! match the one-shot path bit for bit; it also pins the deprecated
//! free functions to the session they now delegate to.

use lrd::prelude::*;
use lrd_experiments::figures::Profile;
use lrd_experiments::run::FigureKind;
use lrd_experiments::sweep::{run_points, ShardSpec};
use lrd_experiments::{Corpus, FIGURES};
use lrd_fluidq::{set_session_run_chunk, DEFAULT_RUN_CHUNK};

/// Restores the default run chunk even if an assertion unwinds, so a
/// failure here cannot poison unrelated solves in this binary.
struct ChunkGuard;

impl Drop for ChunkGuard {
    fn drop(&mut self) {
        set_session_run_chunk(DEFAULT_RUN_CHUNK);
    }
}

#[test]
fn chunked_sessions_reproduce_every_registry_figure_bitwise() {
    let corpus = Corpus::quick();
    let _restore = ChunkGuard;
    let mut figures = 0usize;
    for spec in FIGURES {
        let FigureKind::Sweep { build, .. } = &spec.kind else {
            continue;
        };
        let sweep = build(&corpus, Profile::Quick);

        // Reference surface: the production one-shot path (the same
        // code the legacy shims run).
        set_session_run_chunk(DEFAULT_RUN_CHUNK);
        let reference = run_points(&sweep, &ShardSpec::FULL, None).unwrap();

        // Chunked surface: every solve inside the figure closures now
        // advances its session three iterations per `step_budget`
        // call, crossing probe fallbacks, refinement epochs and level
        // boundaries mid-chunk.
        set_session_run_chunk(3);
        let chunked = run_points(&sweep, &ShardSpec::FULL, None).unwrap();
        set_session_run_chunk(DEFAULT_RUN_CHUNK);

        assert_eq!(reference.len(), chunked.len(), "{}", spec.name);
        for (r, c) in reference.iter().zip(&chunked) {
            assert_eq!(r.index, c.index, "{}", spec.name);
            assert_eq!(
                r.value.to_bits(),
                c.value.to_bits(),
                "{}: point {} value moved under chunked stepping",
                spec.name,
                r.index
            );
            assert_eq!(r.converged, c.converged, "{}: point {}", spec.name, r.index);
            assert_eq!(r.iterations, c.iterations, "{}: point {}", spec.name, r.index);
            assert_eq!(r.bins, c.bins, "{}: point {}", spec.name, r.index);
        }
        figures += 1;
    }
    // fig04/05, fig10/11, fig12/13 and ch_validation are all sweeps;
    // anything less means the registry walk silently skipped figures.
    assert!(figures >= 7, "only {figures} sweep figures compared");
}

#[test]
fn deprecated_free_functions_delegate_to_the_session_bitwise() {
    let corpus = Corpus::quick();
    let model = corpus.mtv.model(0.8, 0.1, 0.5);
    let opts = SolverOptions::sweep_profile();

    #[allow(deprecated)]
    let legacy = lrd::fluidq::solve(&model, &opts);
    let session = SolveSession::builder(&model).options(&opts).solve();
    assert_eq!(legacy.lower.to_bits(), session.lower.to_bits());
    assert_eq!(legacy.upper.to_bits(), session.upper.to_bits());
    assert_eq!(legacy.iterations, session.iterations);
    assert_eq!(legacy.bins, session.bins);
    assert_eq!(legacy.converged, session.converged);

    // The warm pair: the shim and the builder must export identical
    // donor state and certify identically from it.
    #[allow(deprecated)]
    let (l_sol, l_state) = lrd_fluidq::solve_warm(&model, &opts, None);
    let (s_sol, s_state) = SolveSession::builder(&model).options(&opts).solve_warm();
    assert_eq!(l_sol.upper.to_bits(), s_sol.upper.to_bits());
    assert_eq!(l_state.bins(), s_state.bins());
    assert_eq!(l_state.is_zero(), s_state.is_zero());

    let bigger = corpus.mtv.model(0.8, 0.2, 0.5);
    #[allow(deprecated)]
    let l_warm = lrd_fluidq::solve_warm(&bigger, &opts, Some(&l_state)).0;
    let s_warm = SolveSession::builder(&bigger)
        .options(&opts)
        .donor(Some(&s_state))
        .solve_warm()
        .0;
    assert_eq!(l_warm.lower.to_bits(), s_warm.lower.to_bits());
    assert_eq!(l_warm.upper.to_bits(), s_warm.upper.to_bits());
    assert_eq!(l_warm.iterations, s_warm.iterations);
}
