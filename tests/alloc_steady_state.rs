//! Steady-state allocation guard for the convolution pipeline.
//!
//! The solver's inner loop is `Convolver::conv` — once a convolver has
//! warmed up (plan fetched, scratch buffers grown to size), repeated
//! convolutions and solver steps must perform **zero** heap
//! allocations: every buffer is reused via `clear`/`resize`, the FFT
//! plan comes from the process-wide cache, and the serial pool path
//! shares one pre-allocated scope state. Allocation counts, unlike
//! wall-clock time, are exactly reproducible — so this is a hard
//! regression guard, not a benchmark. The counting allocator is
//! process-global, hence the dedicated integration-test binary.

use lrd::fft::Convolver;
use lrd::pool::with_threads;
use lrd::prelude::*;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations_during(f: impl FnOnce()) -> usize {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    f();
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

#[test]
fn warm_convolver_fft_path_never_allocates() {
    // kernel_len * signal_len = 512 * 256 clears DIRECT_THRESHOLD, so
    // this exercises the real-FFT path with its persistent spectra.
    let kernel: Vec<f64> = (0..512).map(|i| 1.0 / (i + 1) as f64).collect();
    let signal: Vec<f64> = (0..256).map(|i| (i as f64 * 0.1).sin()).collect();
    let mut cv = Convolver::new(&kernel, signal.len());
    let warm = cv.conv(&signal).to_vec();
    let allocs = allocations_during(|| {
        for _ in 0..100 {
            let out = cv.conv(&signal);
            assert_eq!(out.len(), kernel.len() + signal.len() - 1);
        }
    });
    assert_eq!(allocs, 0, "warm FFT-path conv allocated {allocs} times in 100 calls");
    // Reuse must not change the answer.
    assert_eq!(cv.conv(&signal), &warm[..]);
}

#[test]
fn warm_convolver_direct_path_never_allocates() {
    let kernel = [0.25, 0.5, 0.25];
    let signal: Vec<f64> = (0..64).map(|i| i as f64).collect();
    let mut cv = Convolver::new(&kernel, signal.len());
    let _ = cv.conv(&signal);
    let allocs = allocations_during(|| {
        for _ in 0..100 {
            let _ = cv.conv(&signal);
        }
    });
    assert_eq!(allocs, 0, "warm direct-path conv allocated {allocs} times in 100 calls");
}

#[test]
fn warm_solver_steps_never_allocate_on_the_serial_path() {
    // A full solver step is two chain updates (convolution, clamp,
    // renormalize, swap) through the pool. On the serial path the
    // whole thing must be allocation-free once warmed; the parallel
    // path necessarily boxes its tasks, which is why the solver keeps
    // `--threads 1` as the reference configuration.
    let model = QueueModel::from_utilization(
        Marginal::new(&[2.0, 14.0], &[0.5, 0.5]),
        TruncatedPareto::from_hurst(0.8, 0.05, 1.0),
        0.8,
        0.2,
    );
    with_threads(1, || {
        let mut solver = BoundSolver::new(model.clone(), 512);
        for _ in 0..4 {
            solver.step();
        }
        let allocs = allocations_during(|| {
            for _ in 0..50 {
                solver.step();
            }
        });
        assert_eq!(allocs, 0, "warm serial solver step allocated {allocs} times in 50 steps");
    });
}
