//! The streaming (sliding-window) Hurst estimators against their batch
//! counterparts on exact fractional Gaussian noise: feeding an fGn
//! series through the window must reproduce the batch dyadic-size
//! estimate of the same samples, land near the true `H`, and never let
//! the cached estimate go staler than the configured cadence.

use lrd::stats::{
    dyadic_sizes, try_rs_estimate_with_sizes, try_variance_time_estimate_with_sizes,
    StreamingHurst,
};
use lrd::traffic::fgn;
use lrd_rng::SeedableRng;

const N: usize = 1 << 14;
const WINDOW: usize = 1 << 12;

fn sample(h: f64, seed: u64) -> Vec<f64> {
    let mut rng = lrd_rng::rngs::SmallRng::seed_from_u64(seed);
    fgn::davies_harte(&mut rng, h, N)
}

#[test]
fn streaming_matches_batch_on_the_trailing_window() {
    for (i, &h) in [0.6, 0.75, 0.9].iter().enumerate() {
        let series = sample(h, 7100 + i as u64);
        let mut s = StreamingHurst::new(WINDOW, 1);
        for &v in &series {
            s.push(v);
        }
        // Cadence 1 ⇒ the cache was refreshed on the final push, so it
        // must equal the batch estimators on the trailing window over
        // the backend's dyadic block sizes exactly.
        let tail = &series[N - WINDOW..];
        let pair = s.current().expect("window filled");
        let rs = try_rs_estimate_with_sizes(tail, &dyadic_sizes(8, WINDOW / 4)).unwrap();
        let vt = try_variance_time_estimate_with_sizes(tail, &dyadic_sizes(1, WINDOW / 8))
            .unwrap();
        assert_eq!(
            pair.rs.h.to_bits(),
            rs.h.to_bits(),
            "R/S streaming/batch split at H={h}"
        );
        assert_eq!(
            pair.vt.h.to_bits(),
            vt.h.to_bits(),
            "variance-time streaming/batch split at H={h}"
        );
    }
}

#[test]
fn streaming_estimates_track_the_true_hurst() {
    // R/S and variance-time are the two weakest estimators in the
    // suite (both biased toward 0.5 on finite samples), and the
    // streaming window is a quarter of the calibration suite's series,
    // so the band is loose — this is a sanity rail, not calibration.
    for (i, &h) in [0.6, 0.75, 0.9].iter().enumerate() {
        let series = sample(h, 7200 + i as u64);
        let mut s = StreamingHurst::new(WINDOW, 256);
        for &v in &series {
            s.push(v);
        }
        let pooled = s.current().expect("window filled").pooled();
        assert!(
            (pooled - h).abs() < 0.2,
            "pooled streaming estimate {pooled:.3} far from true H={h}"
        );
    }
}

#[test]
fn staleness_never_breaches_the_cadence_under_irregular_feeding() {
    // Deterministic but irregular chunk sizes emulate ticks delivering
    // a varying number of samples; the bound must hold after every
    // chunk, which is exactly when a daemon would read the estimate.
    let series = sample(0.8, 7300);
    let mut s = StreamingHurst::new(64, 17);
    let mut fed = 0usize;
    let mut chunk = 1usize;
    while fed < series.len() {
        let take = chunk % 29 + 1;
        for &v in &series[fed..(fed + take).min(series.len())] {
            s.push(v);
        }
        fed = (fed + take).min(series.len());
        chunk += 7;
        if s.current().is_some() {
            assert!(
                s.staleness() < s.refresh_every(),
                "staleness {} after {fed} samples",
                s.staleness()
            );
        }
    }
}
