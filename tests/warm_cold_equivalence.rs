//! Warm-start is a pure performance optimisation: for every sweep
//! figure in the registry, the wavefront-scheduled warm run must
//! reproduce the cold-solved surface bit for bit. Iteration counts may
//! (and should) drop — values never move.

use lrd_experiments::figures::Profile;
use lrd_experiments::run::FigureKind;
use lrd_experiments::sweep::{run_points, ShardSpec};
use lrd_experiments::{Corpus, FIGURES};

#[test]
fn warm_and_cold_surfaces_are_bit_identical_on_every_registry_figure() {
    let corpus = Corpus::quick();
    let mut warm_figures = 0usize;
    let mut certified_points = 0u64;
    for spec in FIGURES {
        let FigureKind::Sweep { build, .. } = &spec.kind else {
            continue;
        };
        let sweep = build(&corpus, Profile::Quick);
        if sweep.plan.warm_axis.is_some() {
            warm_figures += 1;
        }

        // The production path: wavefront schedule, donors along the
        // warm axis (a no-op donor-wise for cold plans).
        let warm = run_points(&sweep, &ShardSpec::FULL, None).unwrap();
        assert_eq!(warm.len(), sweep.plan.len());

        for point in &warm {
            // The cold reference: the same point solved with no donor.
            let (cold, _state) = (sweep.solve)(&sweep.plan.point(point.index), None);
            assert_eq!(
                point.value.to_bits(),
                cold.value.to_bits(),
                "{}: point {} value moved under warm start",
                spec.name,
                point.index
            );
            assert_eq!(point.converged, cold.converged, "{}", spec.name);
            // The warm path either certifies (0 iterations, and then
            // bins reflect the certificate, not a refinement ladder)
            // or runs the identical cold protocol.
            if point.iterations == 0 && cold.iterations != 0 {
                certified_points += 1;
            } else {
                assert_eq!(
                    point.iterations, cold.iterations,
                    "{}: point {} took a third path",
                    spec.name, point.index
                );
                assert_eq!(point.bins, cold.bins, "{}", spec.name);
            }
        }
    }
    // fig04/05, fig12/13 and ch_validation declare warm axes; the
    // quick corpus must exercise at least one actual certificate or
    // this test proves nothing about the warm path.
    assert!(warm_figures >= 5, "only {warm_figures} warm figures");
    assert!(
        certified_points > 0,
        "no quick-profile point was warm-certified"
    );
}
