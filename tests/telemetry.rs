//! End-to-end telemetry contract: the JSONL stream written by
//! [`lrd::obs::JsonlSubscriber`] during a real solve must round-trip
//! through the in-tree JSON parser, and the solver's recorded gap
//! series must narrow across refinement epochs.

use lrd::fluidq::GAP_HISTORY_CAPACITY;
use lrd::obs::{self, Json};
use lrd::prelude::*;
use std::io::Write;
use std::sync::{Arc, Mutex, MutexGuard};

/// The global subscriber is process-wide; tests that install one (or
/// merely emit telemetry that an installed sink would capture) must not
/// overlap.
static TELEMETRY_LOCK: Mutex<()> = Mutex::new(());

fn telemetry_lock() -> MutexGuard<'static, ()> {
    TELEMETRY_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// An in-memory `Write` sink that stays readable after the subscriber
/// takes ownership of its clone.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn contents(&self) -> String {
        String::from_utf8(self.0.lock().unwrap_or_else(|e| e.into_inner()).clone())
            .expect("telemetry stream must be UTF-8")
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap_or_else(|e| e.into_inner()).extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn bursty_model() -> QueueModel<TruncatedPareto> {
    QueueModel::new(
        Marginal::new(&[2.0, 14.0], &[0.5, 0.5]),
        TruncatedPareto::new(0.05, 1.4, 1.0),
        10.0,
        2.0,
    )
}

/// Forces exactly two refinements (8 → 16 → 32 bins): the gap target
/// is unreachable, each level exhausts its iteration allowance, and the
/// ceiling stops the solve at 32 bins. Total iterations (3 × 16 = 48)
/// stay under `GAP_HISTORY_CAPACITY`, so the ring buffer keeps the
/// whole series.
fn refining_options() -> SolverOptions {
    SolverOptions {
        initial_bins: 8,
        max_bins: 32,
        max_iterations_per_level: 16,
        rel_gap: 1e-9,
        ..SolverOptions::default()
    }
}

#[test]
fn jsonl_stream_round_trips_through_the_in_tree_parser() {
    let _serial = telemetry_lock();
    let buf = SharedBuf::default();
    let sol = {
        let _guard = obs::install(Arc::new(obs::JsonlSubscriber::new(Box::new(buf.clone()))));
        SolveSession::builder(&bursty_model())
            .options(&refining_options())
            .run()
            .expect("valid options")
            .0
    };
    // Dropping the guard flushed the sink, draining aggregated
    // counters; every line must now parse with the in-tree parser.
    let text = buf.contents();
    let lines: Vec<Json> = text
        .lines()
        .map(|line| obs::parse_json(line).unwrap_or_else(|e| panic!("bad JSONL line {line:?}: {e}")))
        .collect();
    assert!(!lines.is_empty(), "solve produced no telemetry");

    let kind = |j: &Json| j.get("kind").and_then(Json::as_str).map(str::to_owned);
    let name = |j: &Json| j.get("name").and_then(Json::as_str).map(str::to_owned);
    let of = |k: &str, n: &str| {
        lines
            .iter()
            .filter(|j| kind(j).as_deref() == Some(k) && name(j).as_deref() == Some(n))
            .collect::<Vec<_>>()
    };

    let solves = of("span", "solver.solve");
    assert_eq!(solves.len(), 1, "expected exactly one solver.solve span");
    let solve = solves[0];
    assert!(solve.get("dur_us").and_then(Json::as_f64).is_some_and(|d| d >= 0.0));
    let fields = solve.get("fields").expect("span carries fields");
    assert_eq!(fields.get("bins").and_then(Json::as_u64), Some(sol.bins as u64));
    assert_eq!(fields.get("converged").and_then(Json::as_bool), Some(sol.converged));

    assert_eq!(of("span", "solver.level").len(), 3, "one span per grid level");

    let gaps = of("event", "solver.gap");
    assert_eq!(gaps.len(), sol.iterations, "one gap event per iteration");
    for gap in &gaps {
        let fields = gap.get("fields").expect("event carries fields");
        let lower = fields.get("lower").and_then(Json::as_f64).expect("lower");
        let upper = fields.get("upper").and_then(Json::as_f64).expect("upper");
        assert!(lower <= upper, "bounds out of order in {gap:?}");
        assert!(fields.get("iteration").and_then(Json::as_u64).is_some());
        assert!(fields.get("bins").and_then(Json::as_u64).is_some());
    }

    let refines = of("event", "solver.refine");
    assert_eq!(refines.len(), sol.refinement_epochs.len());
    assert_eq!(refines.len(), 2);

    let drift = of("gauge", "solver.mass_drift");
    assert_eq!(drift.len(), 1, "seal() records the final mass drift once");
    assert!(drift[0].get("value").and_then(Json::as_f64).is_some());

    let iterations = of("counter", "solver.iterations");
    assert_eq!(iterations.len(), 1, "flush drains each counter exactly once");
    assert_eq!(
        iterations[0].get("value").and_then(Json::as_u64),
        Some(sol.iterations as u64)
    );
}

#[test]
fn gap_series_narrows_across_refinement_epochs() {
    // The solver still emits telemetry while another test's sink is
    // installed, so hold the lock even though none is installed here.
    let _serial = telemetry_lock();
    let sol = SolveSession::builder(&bursty_model())
        .options(&refining_options())
        .run()
        .expect("valid options")
        .0;

    assert_eq!(sol.refinement_epochs.len(), 2);
    assert_eq!(sol.refinement_epochs[0], (16, 16), "(iteration, new bins)");
    assert_eq!(sol.refinement_epochs[1], (32, 32));
    assert_eq!(sol.gap_history.len(), sol.iterations, "ring kept the whole series");

    // Segment the recorded samples by the refinement boundaries and
    // check the paper's monotonicity property: within a level the gap
    // never widens, and each refinement lets the stalled gap shrink
    // further — the per-epoch final gaps are strictly ordered.
    let samples: Vec<GapSample> = sol.gap_history.iter().copied().collect();
    let mut epoch_final_gaps = Vec::new();
    let mut start = 0usize;
    for boundary in sol
        .refinement_epochs
        .iter()
        .map(|&(iteration, _)| iteration)
        .chain([sol.iterations])
    {
        let epoch: Vec<&GapSample> =
            samples.iter().filter(|s| s.iteration > start && s.iteration <= boundary).collect();
        assert!(!epoch.is_empty(), "epoch ({start}, {boundary}] has no samples");
        for pair in epoch.windows(2) {
            assert!(
                pair[1].gap() <= pair[0].gap() * (1.0 + 1e-12),
                "gap widened within a level: {pair:?}"
            );
        }
        epoch_final_gaps.push(epoch.last().expect("non-empty").gap());
        start = boundary;
    }
    assert_eq!(epoch_final_gaps.len(), 3);
    assert!(
        epoch_final_gaps.windows(2).all(|w| w[1] < w[0]),
        "refinement did not narrow the stalled gap: {epoch_final_gaps:?}"
    );
}

#[test]
fn converged_solve_records_history_without_refining() {
    let _serial = telemetry_lock();
    let sol = SolveSession::builder(&bursty_model())
        .options(&SolverOptions::default())
        .run()
        .expect("valid options")
        .0;
    assert!(sol.converged);
    assert!(sol.refinement_epochs.is_empty(), "default solve converges on one grid");
    let last = sol.gap_history.latest().expect("history recorded");
    assert_eq!(last.lower, sol.lower);
    assert_eq!(last.upper, sol.upper);
    assert!(sol.gap_history.len() <= GAP_HISTORY_CAPACITY);
}
