//! Property tests for the incremental Hurst estimators: the one-pass
//! (grow-only) accumulators against the batch estimators at arbitrary
//! prefixes, and the sliding-window streaming estimators against the
//! batch estimators on the trailing window under randomized push
//! schedules, window sizes and eviction-heavy long streams.
//!
//! "Bit-equal" below means `f64::to_bits` equality — the incremental
//! paths are required to reproduce the batch arithmetic exactly (R/S,
//! wavelet) or to a pinned accumulation tolerance (variance–time,
//! whose per-level Welford variance is the price of bounded state).

use lrd::stats::{
    dyadic_sizes, try_rs_estimate_with_sizes, try_variance_time_estimate_with_sizes,
    try_wavelet_estimate, OnePassHurst, StreamingHurst,
};
use lrd::traffic::fgn;
use lrd_rng::{Rng, SeedableRng};
use lrd_stats::onepass::{onepass_rs_sizes, onepass_vt_sizes, MAX_ONEPASS_BLOCK};

fn fgn_series(h: f64, n: usize, seed: u64) -> Vec<f64> {
    let mut rng = lrd_rng::rngs::SmallRng::seed_from_u64(seed);
    fgn::davies_harte(&mut rng, h, n)
}

#[test]
fn onepass_matches_batch_at_random_prefixes() {
    let series = fgn_series(0.8, 1 << 14, 9100);
    let mut rng = lrd_rng::rngs::SmallRng::seed_from_u64(9101);
    // Random prefix lengths, deliberately including odd / non-dyadic
    // ones: the contract holds at *every* prefix, not just round ones.
    let mut prefixes: Vec<usize> = (0..12)
        .map(|_| rng.gen_range(64..series.len()))
        .collect();
    prefixes.push(series.len());
    prefixes.push(96);
    prefixes.sort_unstable();

    let mut onepass = OnePassHurst::new();
    let mut fed = 0usize;
    for &n in &prefixes {
        for &v in &series[fed..n] {
            onepass.push(v);
        }
        fed = n;
        let prefix = &series[..n];
        let rs_sizes = onepass_rs_sizes(n, MAX_ONEPASS_BLOCK);
        match (
            onepass.rs_estimate(),
            try_rs_estimate_with_sizes(prefix, &rs_sizes),
        ) {
            (Ok(a), Ok(b)) => assert_eq!(
                a.h.to_bits(),
                b.h.to_bits(),
                "one-pass R/S split from batch at prefix {n}"
            ),
            (Err(a), Err(b)) => assert_eq!(a.to_string(), b.to_string()),
            (a, b) => panic!("R/S estimability diverged at prefix {n}: {a:?} vs {b:?}"),
        }
        let vt_sizes = onepass_vt_sizes(n, MAX_ONEPASS_BLOCK);
        match (
            onepass.variance_time_estimate(),
            try_variance_time_estimate_with_sizes(prefix, &vt_sizes),
        ) {
            (Ok(a), Ok(b)) => assert!(
                (a.h - b.h).abs() < 1e-6,
                "one-pass VT {} vs batch {} at prefix {n}",
                a.h,
                b.h
            ),
            (Err(a), Err(b)) => assert_eq!(a.to_string(), b.to_string()),
            (a, b) => panic!("VT estimability diverged at prefix {n}: {a:?} vs {b:?}"),
        }
        match (onepass.wavelet_estimate(), try_wavelet_estimate(prefix)) {
            (Ok(a), Ok(b)) => assert_eq!(
                a.h.to_bits(),
                b.h.to_bits(),
                "one-pass wavelet split from batch at prefix {n}"
            ),
            (Err(a), Err(b)) => assert_eq!(a.to_string(), b.to_string()),
            (a, b) => panic!("wavelet estimability diverged at prefix {n}: {a:?} vs {b:?}"),
        }
    }
}

/// The streaming estimate after any refresh must be bit-equal to the
/// batch estimators applied to a snapshot of the trailing window, over
/// the backend's dyadic sizes — whatever the window size and however
/// the pushes were batched.
fn assert_streaming_matches_batch(s: &StreamingHurst, window: usize, context: &str) {
    let Some(pair) = s.current() else {
        return;
    };
    let tail = s.window().snapshot();
    assert_eq!(tail.len(), window, "{context}: snapshot size");
    let rs = try_rs_estimate_with_sizes(&tail, &dyadic_sizes(8, window / 4))
        .unwrap_or_else(|e| panic!("{context}: batch R/S failed: {e}"));
    let vt = try_variance_time_estimate_with_sizes(&tail, &dyadic_sizes(1, window / 8))
        .unwrap_or_else(|e| panic!("{context}: batch VT failed: {e}"));
    assert_eq!(pair.rs.h.to_bits(), rs.h.to_bits(), "{context}: R/S split");
    assert_eq!(pair.vt.h.to_bits(), vt.h.to_bits(), "{context}: VT split");
}

#[test]
fn streaming_matches_batch_across_window_sizes_and_schedules() {
    // Window sizes include non-powers-of-two (96, 200, 1000); cadence
    // 1 so every push refreshes and any drift is caught immediately.
    for (i, &window) in [64usize, 96, 200, 256, 1000].iter().enumerate() {
        let series = fgn_series(0.75, 4 * window + 257, 9200 + i as u64);
        let mut rng = lrd_rng::rngs::SmallRng::seed_from_u64(9300 + i as u64);
        let mut s = StreamingHurst::new(window, 1);
        let mut fed = 0usize;
        while fed < series.len() {
            // Random burst sizes emulate irregular tick deliveries.
            let take = rng.gen_range(1usize..64).min(series.len() - fed);
            for &v in &series[fed..fed + take] {
                s.push(v);
            }
            fed += take;
            assert_streaming_matches_batch(&s, window, &format!("window {window}, fed {fed}"));
        }
    }
}

#[test]
fn eviction_heavy_long_stream_stays_exact() {
    // A small window fed a long stream: ~50k evictions exercise the
    // wrap-around paths far past the first fill. Checks are sampled at
    // random refresh points (cadence 1) to keep the test fast.
    let window = 96;
    let series = fgn_series(0.85, 50_000 + window, 9400);
    let mut rng = lrd_rng::rngs::SmallRng::seed_from_u64(9401);
    let mut s = StreamingHurst::new(window, 1);
    let mut checks = 0usize;
    for (i, &v) in series.iter().enumerate() {
        s.push(v);
        if i > 10 * window && rng.gen_range(0usize..500) == 0 {
            assert_streaming_matches_batch(&s, window, &format!("sample {i}"));
            checks += 1;
        }
    }
    assert_streaming_matches_batch(&s, window, "end of stream");
    assert!(checks >= 50, "only {checks} sampled checks ran");
}
