//! End-to-end tests of the `lrd-cli` binary via its public interface
//! (spawned as a subprocess, as a user would run it).

use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_lrd-cli"))
}

fn run_ok(args: &[&str]) -> String {
    let out = cli().args(args).output().expect("spawn lrd-cli");
    assert!(
        out.status.success(),
        "lrd-cli {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 stdout")
}

#[test]
fn solve_prints_bounds() {
    let out = run_ok(&[
        "solve",
        "--rates", "2,14",
        "--probs", "0.5,0.5",
        "--hurst", "0.8",
        "--theta", "0.05",
        "--cutoff", "1.0",
        "--utilization", "0.8",
        "--buffer-seconds", "0.2",
    ]);
    assert!(out.contains("loss lower"), "{out}");
    assert!(out.contains("loss upper"), "{out}");
    assert!(out.contains("converged    : true"), "{out}");
    // The known result for this configuration is ~8e-2.
    assert!(out.contains("loss midpoint: 7.9"), "{out}");
}

#[test]
fn solve_accepts_infinite_cutoff() {
    let out = run_ok(&[
        "solve",
        "--rates", "2,14",
        "--probs", "0.5,0.5",
        "--alpha", "1.4",
        "--theta", "0.05",
        "--cutoff", "inf",
        "--service", "10",
        "--buffer-mb", "2",
    ]);
    assert!(out.contains("utilization  : 0.8"), "{out}");
}

#[test]
fn horizon_matches_library() {
    let out = run_ok(&[
        "horizon",
        "--buffer-mb", "10",
        "--mean-interval", "0.08",
        "--sigma-interval", "0.1",
        "--sigma-rate", "2.0",
        "--p", "0.99",
    ]);
    let want = lrd::fluidq::correlation_horizon(10.0, 0.08, 0.1, 2.0, 0.99);
    assert!(
        out.contains(&format!("{want:.6}")),
        "CLI output {out} vs library {want}"
    );
}

#[test]
fn synth_then_hurst_roundtrip() {
    let dir = std::env::temp_dir().join("lrd_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("mtv.txt");
    let path_str = path.to_str().unwrap();

    run_ok(&["synth", "--kind", "mtv", "--len", "8192", "--seed", "3", "--out", path_str]);
    let text = std::fs::read_to_string(&path).unwrap();
    assert_eq!(text.lines().count(), 8192);

    let out = run_ok(&["hurst", "--trace", path_str]);
    assert!(out.contains("samples      : 8192"), "{out}");
    // All five estimators report.
    for name in ["R/S", "variance-time", "GPH", "wavelet", "Whittle"] {
        assert!(out.contains(name), "missing {name} in {out}");
    }

    let sim = run_ok(&[
        "simulate",
        "--trace", path_str,
        "--dt", "0.033",
        "--utilization", "0.8",
        "--buffer-seconds", "0.1",
    ]);
    assert!(sim.contains("loss rate"), "{sim}");
}

#[test]
fn errors_are_reported_not_panicked() {
    let out = cli().args(["solve", "--rates", "2,14"]).output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("missing required flag"), "{err}");

    let out = cli().args(["nonsense"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}
