//! Cross-validation of the per-rate-class loss attribution: the
//! solver's analytic split ([`LossKernel::per_class_loss`]) against a
//! Monte-Carlo attribution from the simulator's per-interval loss
//! records.

use lrd::fluidq::LossKernel;
use lrd::prelude::*;
use lrd_rng::SeedableRng;

#[test]
fn analytic_split_matches_simulation() {
    let marginal = Marginal::new(&[2.0, 11.0, 14.0], &[0.5, 0.25, 0.25]);
    let iv = TruncatedPareto::new(0.05, 1.4, 1.0);
    let model = QueueModel::from_utilization(marginal.clone(), iv, 0.8, 0.2);

    // Stationary occupancy from the solver (midpoint of the chains).
    let bins = 256;
    let mut solver = BoundSolver::new(model.clone(), bins);
    for _ in 0..4000 {
        solver.step();
    }
    let q_mid: Vec<f64> = solver
        .occupancy_lower()
        .iter()
        .zip(solver.occupancy_upper())
        .map(|(&a, &b)| 0.5 * (a + b))
        .collect();
    let analytic = LossKernel::per_class_loss(&model, &q_mid);

    // Monte-Carlo attribution: lost work per active rate class.
    let source = FluidSource::new(marginal.clone(), iv);
    let mut rng = lrd_rng::rngs::SmallRng::seed_from_u64(404);
    let (_, samples) = simulate_source(
        &source,
        model.service_rate(),
        model.buffer(),
        2_000_000,
        &mut rng,
    );
    let total_work: f64 = samples
        .iter()
        .map(|s| s.rate * (s.increment / (s.rate - model.service_rate())))
        .sum();
    let mut empirical = vec![0.0f64; marginal.len()];
    for s in &samples {
        let class = marginal
            .rates()
            .iter()
            .position(|&r| (r - s.rate).abs() < 1e-9)
            .expect("sampled rate must be in the marginal support");
        empirical[class] += s.lost;
    }
    for v in &mut empirical {
        *v /= total_work;
    }

    // The underload class never loses.
    assert_eq!(analytic[0], 0.0);
    assert!(empirical[0] == 0.0);
    // Overload classes agree within Monte-Carlo tolerance.
    for i in 1..marginal.len() {
        let a = analytic[i];
        let e = empirical[i];
        assert!(
            (a - e).abs() < 0.15 * a.max(1e-5),
            "class {i} (rate {}): analytic {a:.4e} vs simulated {e:.4e}",
            marginal.rates()[i]
        );
    }
    // And both split the same total.
    let ta: f64 = analytic.iter().sum();
    let te: f64 = empirical.iter().sum();
    assert!((ta - te).abs() < 0.1 * ta.max(1e-5), "totals {ta:.3e} vs {te:.3e}");
}
