//! Overhead guard: with no subscriber (or the [`NullSubscriber`])
//! installed, instrumentation must be free — the disabled fast path may
//! not allocate at all compared to the same solve before the telemetry
//! layer existed.
//!
//! Allocation counts are exactly reproducible for the deterministic
//! solver, unlike wall-clock time, so this is the regression guard that
//! can run on shared CI hardware. The counting allocator is process
//! -global, which is why this file holds a single test and lives in its
//! own integration-test binary.

use lrd::obs;
use lrd::prelude::*;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn solve_once() -> LossSolution {
    let model = QueueModel::new(
        Marginal::new(&[2.0, 14.0], &[0.5, 0.5]),
        TruncatedPareto::new(0.05, 1.4, 1.0),
        10.0,
        2.0,
    );
    let opts = SolverOptions {
        initial_bins: 8,
        max_bins: 32,
        max_iterations_per_level: 16,
        rel_gap: 1e-9,
        ..SolverOptions::default()
    };
    try_solve(&model, &opts).expect("valid options")
}

fn allocations_during(f: impl Fn() -> LossSolution) -> usize {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let sol = f();
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert!(!sol.converged, "sanity: the probe solve must run its full budget");
    after - before
}

#[test]
fn disabled_telemetry_allocates_nothing_extra() {
    // Warm one-time state (the obs epoch, FFT plans' lazy tables, the
    // test harness's own buffers) so the measured runs are steady-state.
    let _ = solve_once();
    let _ = solve_once();

    let bare = allocations_during(solve_once);
    assert!(bare > 0, "sanity: the solver itself allocates");

    // The solver is deterministic, so repeated bare runs must agree —
    // otherwise the comparison below would be meaningless.
    assert_eq!(bare, allocations_during(solve_once), "solver allocations not reproducible");

    let with_null = {
        let _guard = obs::install(Arc::new(obs::NullSubscriber));
        assert!(!obs::enabled(), "NullSubscriber must keep the fast path off");
        allocations_during(solve_once)
    };
    assert_eq!(
        with_null, bare,
        "NullSubscriber added {} allocations per solve",
        with_null.abs_diff(bare)
    );
}
