//! Overhead guard: with no subscriber (or the [`NullSubscriber`])
//! installed, instrumentation must be free — the disabled fast path may
//! not allocate at all compared to the same solve before the telemetry
//! layer existed.
//!
//! Allocation counts are exactly reproducible for the deterministic
//! solver, unlike wall-clock time, so this is the regression guard that
//! can run on shared CI hardware. The counting allocator is process
//! -global, which is why this file holds a single test and lives in its
//! own integration-test binary.

use lrd::obs;
use lrd::prelude::*;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn solve_once() -> LossSolution {
    let model = QueueModel::new(
        Marginal::new(&[2.0, 14.0], &[0.5, 0.5]),
        TruncatedPareto::new(0.05, 1.4, 1.0),
        10.0,
        2.0,
    );
    let opts = SolverOptions {
        initial_bins: 8,
        max_bins: 32,
        max_iterations_per_level: 16,
        rel_gap: 1e-9,
        ..SolverOptions::default()
    };
    SolveSession::builder(&model)
        .options(&opts)
        .run()
        .expect("valid options")
        .0
}

fn allocations_while(f: impl FnOnce()) -> usize {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    f();
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    after - before
}

fn allocations_during(f: impl Fn() -> LossSolution) -> usize {
    allocations_while(|| {
        let sol = f();
        assert!(!sol.converged, "sanity: the probe solve must run its full budget");
    })
}

/// Mirrors the steal-mode streaming hot loop: one counter increment
/// and one `solve_us` histogram sample per point (the feed for the
/// coordinator's live cost model), plus the per-batch lease event and
/// span. Building a `MetricsSnapshot` report allocates by design, but
/// it only happens on the heartbeat/complete wire path — the per-point
/// instrumentation here must be free when nothing is listening.
fn stream_probe() {
    let mut span = obs::span!("sweep.batch", batch = 3u64, epoch = 1u64, points = 64u64);
    for i in 0..64u64 {
        obs::counter("sweep.points", 1);
        obs::histogram("sweep.solve_us", 12.5 + i as f64);
    }
    obs::event!("sweep.lease_abandoned", batch = 3u64, epoch = 1u64);
    span.record("abandoned", false);
}

#[test]
fn disabled_telemetry_allocates_nothing_extra() {
    // Warm one-time state (the obs epoch, FFT plans' lazy tables, the
    // test harness's own buffers) so the measured runs are steady-state.
    let _ = solve_once();
    let _ = solve_once();

    let bare = allocations_during(solve_once);
    assert!(bare > 0, "sanity: the solver itself allocates");

    // The solver is deterministic, so repeated bare runs must agree —
    // otherwise the comparison below would be meaningless.
    assert_eq!(bare, allocations_during(solve_once), "solver allocations not reproducible");

    let with_null = {
        let _guard = obs::install(Arc::new(obs::NullSubscriber));
        assert!(!obs::enabled(), "NullSubscriber must keep the fast path off");
        allocations_during(solve_once)
    };
    assert_eq!(
        with_null, bare,
        "NullSubscriber added {} allocations per solve",
        with_null.abs_diff(bare)
    );

    // The fleet-streaming instrumentation must be exactly free when
    // disabled — zero allocations, not merely "no more than before".
    stream_probe(); // warm thread-local span-watch state
    assert_eq!(
        allocations_while(stream_probe),
        0,
        "disabled streaming instrumentation allocated"
    );
    let streaming_null = {
        let _guard = obs::install(Arc::new(obs::NullSubscriber));
        allocations_while(stream_probe)
    };
    assert_eq!(
        streaming_null, 0,
        "NullSubscriber made the streaming path allocate"
    );
}
