//! Formal check of the paper's Sec. IV modeling claim: *any* interval
//! model that matches the correlation structure up to the correlation
//! horizon predicts the same loss — demonstrated with the
//! multi-time-scale hyperexponential (Markov) fit.

use lrd::prelude::*;
use lrd::traffic::fit_to_pareto;

#[test]
fn fitted_markov_model_matches_lrd_loss_below_horizon() {
    let marginal = Marginal::new(&[2.0, 14.0], &[0.5, 0.5]);
    let pareto = TruncatedPareto::from_hurst(0.8, 0.05, f64::INFINITY);
    let opts = SolverOptions::default();

    // A small buffer keeps the correlation horizon short.
    let buffer_s = 0.1;
    let lrd_model =
        QueueModel::from_utilization(marginal.clone(), pareto, 0.8, buffer_s);
    let reference = SolveSession::builder(&lrd_model).options(&opts).solve();
    assert!(reference.converged);

    // Fit up to a horizon comfortably above this queue's CH.
    let mix = fit_to_pareto(&pareto, 2.0, 8);
    let markov_model = QueueModel::from_utilization(marginal, mix, 0.8, buffer_s);
    let fitted = SolveSession::builder(&markov_model).options(&opts).solve();
    assert!(fitted.converged);

    let ratio = (fitted.loss() / reference.loss()).max(reference.loss() / fitted.loss());
    assert!(
        ratio < 1.3,
        "8-state Markov fit should reproduce LRD loss below CH: \
         {:.3e} vs {:.3e} (ratio {ratio:.2})",
        fitted.loss(),
        reference.loss()
    );
}

#[test]
fn fit_quality_improves_loss_agreement() {
    // More exponential time scales → closer ccdf fit → closer loss.
    let marginal = Marginal::new(&[2.0, 14.0], &[0.5, 0.5]);
    let pareto = TruncatedPareto::from_hurst(0.8, 0.05, f64::INFINITY);
    let opts = SolverOptions::default();
    let buffer_s = 0.1;
    let reference =
        SolveSession::builder(&QueueModel::from_utilization(marginal.clone(), pareto, 0.8, buffer_s))
            .options(&opts)
            .solve()
            .loss();

    let loss_error = |states: usize| {
        let mix = fit_to_pareto(&pareto, 2.0, states);
        let l = SolveSession::builder(&QueueModel::from_utilization(
            marginal.clone(),
            mix,
            0.8,
            buffer_s,
        ))
        .options(&opts)
        .solve()
        .loss();
        (l / reference).max(reference / l)
    };
    let coarse = loss_error(2);
    let fine = loss_error(8);
    assert!(
        fine <= coarse + 0.05,
        "8-state fit (ratio {fine:.2}) should not be worse than 2-state (ratio {coarse:.2})"
    );
}

#[test]
fn unfitted_exponential_is_the_contrast() {
    // The *mean-matched* single exponential misses the multi-scale
    // correlation and deviates more than the fitted mixture once the
    // buffer grows — the quantitative version of "Markov models are
    // fine below CH, provided they capture correlation up to CH".
    let marginal = Marginal::new(&[2.0, 14.0], &[0.5, 0.5]);
    let pareto = TruncatedPareto::from_hurst(0.8, 0.05, f64::INFINITY);
    let opts = SolverOptions::default();
    let buffer_s = 0.4;

    let reference =
        SolveSession::builder(&QueueModel::from_utilization(marginal.clone(), pareto, 0.8, buffer_s))
            .options(&opts)
            .solve()
            .loss();
    let expo = SolveSession::builder(&QueueModel::from_utilization(
        marginal.clone(),
        Exponential::new(pareto.mean()),
        0.8,
        buffer_s,
    ))
    .options(&opts)
    .solve()
    .loss();
    let mix = fit_to_pareto(&pareto, 8.0, 10);
    let fitted =
        SolveSession::builder(&QueueModel::from_utilization(marginal, mix, 0.8, buffer_s))
            .options(&opts)
            .solve()
            .loss();

    let err = |l: f64| (l / reference).max(reference / l);
    assert!(
        err(fitted) < err(expo),
        "fitted mixture (ratio {:.2}) should beat plain exponential (ratio {:.2})",
        err(fitted),
        err(expo)
    );
}
