//! Integration test of the Sec. V concluding example: the relevant
//! correlation time scales depend on the performance metric. The loss
//! *rate* saturates at the correlation horizon, but the ARQ-vs-FEC
//! comparison keeps changing as longer correlation is preserved.

use lrd::prelude::*;
use lrd::sim::{arq_overhead, fec_residual_loss, LossProcess};
use lrd::traffic::synth;
use lrd_rng::SeedableRng;

fn loss_process_for(block_s: Option<f64>, trace: &Trace, c: f64, b: f64, seed: u64) -> LossProcess {
    match block_s {
        Some(s) => {
            let mut rng = lrd_rng::rngs::SmallRng::seed_from_u64(seed);
            let shuffled = external_shuffle_seconds(trace, s, &mut rng);
            LossProcess::from_trace(&shuffled, c, b)
        }
        None => LossProcess::from_trace(trace, c, b),
    }
}

#[test]
fn fec_degrades_with_correlation_while_arq_does_not() {
    let trace = synth::bellcore_like_with_len(synth::DEFAULT_SEED + 1, 1 << 15);
    let marginal = trace.marginal(50);
    let c = marginal.service_rate_for_utilization(0.75);
    let b = c * 0.05;

    let short = loss_process_for(Some(0.05), &trace, c, b, 1);
    let long = loss_process_for(None, &trace, c, b, 2);

    // Loss probabilities are comparable (same marginal, same queue)...
    let p_short = short.loss_probability();
    let p_long = long.loss_probability();
    assert!(p_short > 0.0 && p_long > 0.0, "need lossy scenarios");
    // ...so ARQ overheads are comparable...
    let arq_ratio = arq_overhead(&long) / arq_overhead(&short);
    assert!(
        (arq_ratio - 1.0).abs() < 0.15,
        "ARQ should be near-indifferent, ratio {arq_ratio}"
    );
    // ...but FEC residual loss grows markedly with preserved
    // correlation.
    let fec_short = fec_residual_loss(&short, 10, 8);
    let fec_long = fec_residual_loss(&long, 10, 8);
    assert!(
        fec_long > 1.5 * fec_short.max(1e-6),
        "FEC should degrade with correlation: short {fec_short:.3e}, long {fec_long:.3e}"
    );
}

#[test]
fn decorrelated_process_is_fec_friendly() {
    let trace = synth::bellcore_like_with_len(synth::DEFAULT_SEED + 1, 1 << 15);
    let marginal = trace.marginal(50);
    let c = marginal.service_rate_for_utilization(0.75);
    let p = LossProcess::from_trace(&trace, c, c * 0.05);
    let d = p.decorrelated();
    assert!((p.loss_probability() - d.loss_probability()).abs() < 0.01);
    assert!(
        fec_residual_loss(&d, 10, 8) <= fec_residual_loss(&p, 10, 8),
        "spreading losses must not hurt FEC"
    );
    // Bursts collapse to length ~1.
    assert!(d.mean_burst_length().unwrap_or(1.0) <= 1.5);
}

#[test]
fn mean_burst_length_tracks_correlation() {
    let trace = synth::bellcore_like_with_len(synth::DEFAULT_SEED + 1, 1 << 15);
    let marginal = trace.marginal(50);
    let c = marginal.service_rate_for_utilization(0.75);
    let b = c * 0.05;
    let short = loss_process_for(Some(0.05), &trace, c, b, 3)
        .mean_burst_length()
        .unwrap_or(0.0);
    let long = loss_process_for(None, &trace, c, b, 4)
        .mean_burst_length()
        .unwrap_or(0.0);
    assert!(
        long >= short,
        "bursts should lengthen with preserved correlation: {short} vs {long}"
    );
}
