//! Sharded sweep execution is a pure partition of the unsharded run:
//! any shard count, any kill-and-resume history, round-robin or
//! planner-assigned ownership, and a final merge must reproduce the
//! single-process surface bit for bit.

use std::path::PathBuf;

use lrd_experiments::figures::{fig04_05, Profile};
use lrd_experiments::sweep::{
    merge_checkpoints, plan_assignment, read_checkpoint, run_points, CostProfile, ShardSpec,
};
use lrd_experiments::Corpus;

#[test]
fn round_robin_shards_partition_any_lattice() {
    // Property: for arbitrary i/n, the shards' index sets are disjoint
    // and their union is the full lattice.
    let corpus = Corpus::quick();
    let sweep = fig04_05::fig04_sweep(&corpus, Profile::Quick);
    let total = sweep.plan.len();
    for n in 1..=7u32 {
        let mut seen = vec![0u32; total];
        for i in 0..n {
            let shard = ShardSpec::new(i, n).unwrap();
            for p in sweep.plan.points_for(&shard) {
                assert!(shard.owns(p.index));
                seen[p.index] += 1;
            }
        }
        assert!(
            seen.iter().all(|&c| c == 1),
            "n={n}: some point not covered exactly once: {seen:?}"
        );
    }
}

fn solve_sharded(dir: &std::path::Path, count: u32) -> Vec<PathBuf> {
    let corpus = Corpus::quick();
    (0..count)
        .map(|i| {
            let sweep = fig04_05::fig04_sweep(&corpus, Profile::Quick);
            let path = dir.join(format!("shard{i}of{count}.jsonl"));
            let shard = ShardSpec::new(i, count).unwrap();
            run_points(&sweep, &shard, Some(&path)).unwrap();
            path
        })
        .collect()
}

#[test]
fn sharded_merge_is_bit_identical_to_unsharded() {
    let corpus = Corpus::quick();
    let sweep = fig04_05::fig04_sweep(&corpus, Profile::Quick);
    let reference = run_points(&sweep, &ShardSpec::FULL, None).unwrap();
    let ref_grid = sweep.plan.to_grid(&reference);

    let dir = std::env::temp_dir().join("lrd-sweep-shard-test");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    for count in [1u32, 2, 3] {
        let paths = solve_sharded(&dir, count);
        let merged = merge_checkpoints(&paths).unwrap();
        assert_eq!(merged.manifest.shard().unwrap().count, count);
        assert_eq!(merged.results.len(), reference.len());
        for (m, r) in merged.results.iter().zip(&reference) {
            assert_eq!(m.index, r.index);
            assert_eq!(
                m.value.to_bits(),
                r.value.to_bits(),
                "count={count}, point {}: merged {} != unsharded {}",
                m.index,
                m.value,
                r.value
            );
            // Iteration counts (and the grid resolution a warm
            // certificate inherits from its donor) are the one thing
            // sharding may change: a shard that does not own a
            // point's lattice donor runs it cold. The full reference
            // run always has every donor, so a shard can only *lose*
            // warm starts — a discrepancy is legal only where the
            // reference certified the point warm in zero iterations.
            assert!(
                m.iterations == r.iterations || r.iterations == 0,
                "count={count}, point {}: iterations {} vs reference {}",
                m.index,
                m.iterations,
                r.iterations
            );
            if m.iterations == r.iterations {
                assert_eq!(m.bins, r.bins);
            }
            assert_eq!(m.converged, r.converged);
        }
        let grid = sweep.plan.to_grid(&merged.results);
        assert_eq!(grid.values, ref_grid.values);
        let total: u64 = reference.iter().map(|r| r.iterations).sum();
        assert!(merged.total_iterations() >= total);
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn killed_shard_resumes_without_resolving_or_drifting() {
    let corpus = Corpus::quick();
    let sweep = fig04_05::fig04_sweep(&corpus, Profile::Quick);
    let shard = ShardSpec::new(0, 2).unwrap();
    let owned = sweep.plan.points_for(&shard).len();
    assert!(owned >= 3, "test needs a few points per shard, got {owned}");

    let dir = std::env::temp_dir().join("lrd-sweep-resume-test");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("shard0.jsonl");

    // A completed run of the shard, then a simulated mid-write kill:
    // drop the last point line and leave a torn half-line behind.
    let full = run_points(&sweep, &shard, Some(&path)).unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    let mut lines: Vec<&str> = text.lines().collect();
    let torn = &lines.pop().unwrap()[..10];
    let truncated = format!("{}\n{torn}", lines.join("\n"));
    std::fs::write(&path, truncated).unwrap();

    let ck = read_checkpoint(&path).unwrap();
    assert!(ck.truncated_tail, "the torn tail must be detected");
    assert_eq!(ck.points.len(), owned - 1);

    // Resume: only the lost point is re-solved; the stream of results
    // is bit-identical to the uninterrupted run.
    let resumed = run_points(&sweep, &shard, Some(&path)).unwrap();
    assert_eq!(resumed.len(), full.len());
    for (a, b) in resumed.iter().zip(&full) {
        assert_eq!(a.index, b.index);
        assert_eq!(a.value.to_bits(), b.value.to_bits());
    }

    // The rewritten checkpoint is clean and complete.
    let ck = read_checkpoint(&path).unwrap();
    assert!(!ck.truncated_tail);
    assert_eq!(ck.points.len(), owned);

    // And the resumed shard still merges with its partner into the
    // reference surface.
    let other = dir.join("shard1.jsonl");
    run_points(&sweep, &ShardSpec::new(1, 2).unwrap(), Some(&other)).unwrap();
    let merged = merge_checkpoints(&[path, other]).unwrap();
    let reference = run_points(&sweep, &ShardSpec::FULL, None).unwrap();
    for (m, r) in merged.results.iter().zip(&reference) {
        assert_eq!(m.value.to_bits(), r.value.to_bits());
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn planned_assignment_partition_merges_bit_identically_with_resume() {
    // The full cost-model loop: a round-robin profiling run records
    // durations, sweep_plan's planner re-splits the lattice, workers
    // run their explicit point sets (one of them killed and resumed),
    // and the merged surface still matches the unsharded run bit for
    // bit.
    let corpus = Corpus::quick();
    let sweep = fig04_05::fig04_sweep(&corpus, Profile::Quick);
    let reference = run_points(&sweep, &ShardSpec::FULL, None).unwrap();

    let dir = std::env::temp_dir().join("lrd-sweep-assign-test");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    // Profiling pass: an ordinary round-robin sharded run.
    let profiling = solve_sharded(&dir, 2);
    let profile = CostProfile::from_checkpoints(&profiling).unwrap();
    assert_eq!(
        profile.measured_points(),
        sweep.plan.len(),
        "a checkpointed run must record a duration for every point"
    );

    // Plan the re-split and check the acceptance criterion: never
    // worse than round-robin on the recorded durations.
    let assignment = plan_assignment(&sweep.plan, &profile, 2).unwrap();
    let costs = profile.costs(&sweep.plan).unwrap();
    let round_robin_makespan = (0..2usize)
        .map(|i| (i..costs.len()).step_by(2).map(|p| costs[p]).sum::<f64>())
        .fold(0.0, f64::max);
    assert!(assignment.makespan() <= round_robin_makespan);

    // Run the planned shards, killing shard 0 mid-write and resuming.
    let paths: Vec<PathBuf> = (0..2u32)
        .map(|i| {
            let shard = assignment.shard_spec(i).unwrap();
            assert!(shard.is_explicit());
            let path = dir.join(format!("planned{i}.jsonl"));
            run_points(&sweep, &shard, Some(&path)).unwrap();
            path
        })
        .collect();
    let text = std::fs::read_to_string(&paths[0]).unwrap();
    let mut lines: Vec<&str> = text.lines().collect();
    let tail = lines.pop().unwrap();
    let truncated = format!("{}\n{}", lines.join("\n"), &tail[..tail.len().min(10)]);
    std::fs::write(&paths[0], truncated).unwrap();
    run_points(&sweep, &assignment.shard_spec(0).unwrap(), Some(&paths[0])).unwrap();

    let merged = merge_checkpoints(&paths).unwrap();
    assert_eq!(merged.results.len(), reference.len());
    for (m, r) in merged.results.iter().zip(&reference) {
        assert_eq!(m.index, r.index);
        assert_eq!(
            m.value.to_bits(),
            r.value.to_bits(),
            "planned-assignment merge drifted at point {}",
            m.index
        );
        // The planner's split may separate a point from its lattice
        // donor, costing only iterations (see the sharded-merge test).
        assert!(m.iterations == r.iterations || r.iterations == 0);
    }

    let _ = std::fs::remove_dir_all(&dir);
}

/// Strips the `solve_us` field from every point line, producing the
/// exact byte format checkpoints had before the cost model existed.
fn strip_durations(text: &str) -> String {
    let mut out = String::new();
    for line in text.lines() {
        match line.find(",\"solve_us\":") {
            Some(cut) => {
                out.push_str(&line[..cut]);
                out.push('}');
            }
            None => out.push_str(line),
        }
        out.push('\n');
    }
    out
}

#[test]
fn durationless_checkpoints_resume_and_merge_byte_identically() {
    // Checkpoints written before point lines carried solve_us must
    // keep working: resume must not re-solve (or rewrite) anything,
    // and the merged surface must be unchanged.
    let corpus = Corpus::quick();
    let sweep = fig04_05::fig04_sweep(&corpus, Profile::Quick);
    let reference = run_points(&sweep, &ShardSpec::FULL, None).unwrap();

    let dir = std::env::temp_dir().join("lrd-sweep-durationless-test");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let paths = solve_sharded(&dir, 2);
    for path in &paths {
        let text = std::fs::read_to_string(path).unwrap();
        let stripped = strip_durations(&text);
        assert!(
            !stripped.contains("solve_us") && stripped != text,
            "fixture must exercise the duration-less format"
        );
        std::fs::write(path, stripped).unwrap();
    }

    // Resume over the old-format file: all points are present, so
    // nothing is solved and the file bytes stay exactly as they were.
    for (i, path) in paths.iter().enumerate() {
        let before = std::fs::read(path).unwrap();
        let shard = ShardSpec::new(i as u32, paths.len() as u32).unwrap();
        let resumed = run_points(&sweep, &shard, Some(path)).unwrap();
        assert!(resumed.iter().all(|r| r.solve_us.is_none()));
        assert_eq!(
            std::fs::read(path).unwrap(),
            before,
            "resume must not rewrite a clean duration-less checkpoint"
        );
    }

    let merged = merge_checkpoints(&paths).unwrap();
    for (m, r) in merged.results.iter().zip(&reference) {
        assert_eq!(m.index, r.index);
        assert_eq!(m.value.to_bits(), r.value.to_bits());
        assert_eq!(m.iterations, r.iterations);
        assert_eq!(m.solve_us, None);
    }

    // A duration-less profile still plans (point-count balancing).
    let profile = CostProfile::from_checkpoints(&paths).unwrap();
    assert_eq!(profile.measured_points(), 0);
    let assignment = plan_assignment(&sweep.plan, &profile, 2).unwrap();
    assert_eq!(assignment.makespan(), (sweep.plan.len() as f64 / 2.0).ceil());

    let _ = std::fs::remove_dir_all(&dir);
}

/// The work-stealing kill-and-resume matrix: crash a worker mid-lease,
/// crash the coordinator under a live worker, or crash both, resume
/// everything, and the merged surface must still be bit-identical to
/// the unsharded run — including when the reclaimed batch is re-solved
/// by a different worker (duplicate points, resolved at merge).
#[test]
fn steal_kill_and_resume_matrix_merges_bit_identically() {
    use lrd_experiments::sweep::coord::proto::{connect, recv_line, send_line};
    use lrd_experiments::sweep::coord::{
        run_steal, CoordOptions, CoordServer, Endpoint, LeaseConfig, Request, Response,
        StealOptions, StealSummary,
    };
    use std::sync::atomic::Ordering;

    let corpus = Corpus::quick();
    let sweep = fig04_05::fig04_sweep(&corpus, Profile::Quick);
    let reference = run_points(&sweep, &ShardSpec::FULL, None).unwrap();
    let total = reference.len();

    let dir = std::env::temp_dir().join("lrd-steal-matrix-test");
    let _ = std::fs::remove_dir_all(&dir);

    // Tight timing so a crashed lease expires and is reclaimed within
    // the test, and small batches so both workers see work.
    let config = LeaseConfig {
        heartbeat_ms: 25,
        lease_ttl_ms: 150,
    };
    let start = |endpoint: Endpoint, lease_log: &PathBuf| {
        CoordServer::start(
            &sweep.plan,
            CoordOptions {
                endpoint,
                lease_log: Some(lease_log.clone()),
                config,
                batch_points: 3,
                costs: None,
            },
        )
        .unwrap()
    };
    let fresh = || Endpoint::Tcp("127.0.0.1:0".to_string());
    let steal = |endpoint: &Endpoint| StealOptions {
        endpoint: endpoint.clone(),
        ..StealOptions::default()
    };
    // Best-effort queue probe; None once the coordinator is gone.
    let probe = |endpoint: &Endpoint| -> Option<(usize, usize)> {
        let mut conn = connect(endpoint).ok()?;
        send_line(conn.as_mut(), &Request::Status.to_line()).ok()?;
        let line = recv_line(conn.as_mut()).ok()?;
        match Response::parse(&line).ok()? {
            Response::Status(s) => Some((s.leased, s.done)),
            _ => None,
        }
    };
    let check_merge = |scenario: &str, paths: &[PathBuf]| {
        let existing: Vec<PathBuf> = paths.iter().filter(|p| p.exists()).cloned().collect();
        let merged = merge_checkpoints(&existing).unwrap();
        assert!(merged.manifest.origin.is_steal());
        assert_eq!(merged.results.len(), total);
        for (m, r) in merged.results.iter().zip(&reference) {
            assert_eq!(m.index, r.index);
            assert_eq!(
                m.value.to_bits(),
                r.value.to_bits(),
                "{scenario}: merge drifted at point {}",
                m.index
            );
            // Steal batches are their own warm partitions: a point
            // whose donor sat in another batch (or in the crashed
            // prefix of a reclaimed lease) ran cold. Only warm
            // certificates (zero reference iterations) may differ.
            assert!(
                m.iterations == r.iterations || r.iterations == 0,
                "{scenario}: point {} iterations {} vs reference {}",
                m.index,
                m.iterations,
                r.iterations
            );
        }
    };
    // A worker crash: lease a batch, durably append its points, vanish
    // without completing — the lease stays outstanding until reclaim.
    let crash_worker = |endpoint: &Endpoint, checkpoint: &PathBuf| -> StealSummary {
        let crash = run_steal(
            &sweep,
            checkpoint,
            &StealOptions {
                stop_after_points: Some(1),
                ..steal(endpoint)
            },
        )
        .unwrap();
        assert!(crash.solved >= 1, "crash run must solve at least a chunk");
        assert_eq!(crash.batches, 0, "crashed lease must not complete");
        crash
    };

    // --- kill worker: the coordinator reclaims the expired lease and
    // re-issues the batch to the *other* worker, which re-solves the
    // crashed points into its own checkpoint (duplicates at merge).
    {
        let sdir = dir.join("worker");
        std::fs::create_dir_all(&sdir).unwrap();
        let (lease_log, w0, w1) = (
            sdir.join("coord-lease.jsonl"),
            sdir.join("worker0.jsonl"),
            sdir.join("worker1.jsonl"),
        );
        let server = start(fresh(), &lease_log);
        let endpoint = server.endpoint();
        let handle = std::thread::spawn(move || server.run().unwrap());

        let crash = crash_worker(&endpoint, &w0);
        let s1 = run_steal(&sweep, &w1, &steal(&endpoint)).unwrap();
        let s0 = run_steal(&sweep, &w0, &steal(&endpoint)).unwrap();
        let summary = handle.join().unwrap();

        assert!(summary.drained && s0.drained && s1.drained);
        assert!(summary.reclaims >= 1, "expected the crashed lease reclaimed");
        assert_eq!(s1.solved, total, "worker 1 must re-solve the crashed batch");
        assert_eq!(s0.solved, 0);
        assert_eq!(s0.reused, crash.solved);
        check_merge("worker", &[w0, w1]);
    }

    // --- kill coordinator: a live mid-sweep worker rides out the
    // restart (same endpoint, same lease log) without losing its lease.
    {
        let sdir = dir.join("coordinator");
        std::fs::create_dir_all(&sdir).unwrap();
        let (lease_log, w0, w1) = (
            sdir.join("coord-lease.jsonl"),
            sdir.join("worker0.jsonl"),
            sdir.join("worker1.jsonl"),
        );
        let server = start(fresh(), &lease_log);
        let endpoint = server.endpoint();
        let stop = server.shutdown_handle();
        let handle = std::thread::spawn(move || server.run().unwrap());

        std::thread::scope(|scope| {
            let t0 = scope.spawn(|| run_steal(&sweep, &w0, &steal(&endpoint)).unwrap());
            // Wait until the worker actually holds a lease, then kill.
            for _ in 0..1000 {
                match probe(&endpoint) {
                    Some((leased, done)) if leased > 0 || done > 0 => break,
                    Some(_) => std::thread::sleep(std::time::Duration::from_millis(2)),
                    None => break,
                }
            }
            stop.store(true, Ordering::SeqCst);
            let partial = handle.join().unwrap();

            if partial.drained {
                // The sweep outran the kill; nothing left to serve.
                let s0 = t0.join().unwrap();
                assert!(s0.drained);
                check_merge("coordinator", &[w0.clone(), w1.clone()]);
            } else {
                // Rebind the *same* endpoint so the in-flight worker's
                // retries find the restarted coordinator.
                let server = start(endpoint.clone(), &lease_log);
                let handle = std::thread::spawn(move || server.run().unwrap());
                let t1 = scope.spawn(|| run_steal(&sweep, &w1, &steal(&endpoint)).unwrap());
                let s0 = t0.join().unwrap();
                let s1 = t1.join().unwrap();
                let summary = handle.join().unwrap();
                assert!(summary.drained && s0.drained && s1.drained);
                assert!(
                    s0.solved + s1.solved >= total,
                    "both workers together must cover the lattice"
                );
                check_merge("coordinator", &[w0.clone(), w1.clone()]);
            }
        });
    }

    // --- kill both: the worker crashes mid-lease, the coordinator is
    // killed with that lease outstanding, and the restarted coordinator
    // must restore the lease from the log, expire it, and re-issue it.
    {
        let sdir = dir.join("both");
        std::fs::create_dir_all(&sdir).unwrap();
        let (lease_log, w0, w1) = (
            sdir.join("coord-lease.jsonl"),
            sdir.join("worker0.jsonl"),
            sdir.join("worker1.jsonl"),
        );
        let server = start(fresh(), &lease_log);
        let endpoint = server.endpoint();
        let stop = server.shutdown_handle();
        let handle = std::thread::spawn(move || server.run().unwrap());

        let crash = crash_worker(&endpoint, &w0);
        stop.store(true, Ordering::SeqCst);
        let partial = handle.join().unwrap();
        assert!(!partial.drained, "the first coordinator must die mid-sweep");

        let server = start(fresh(), &lease_log);
        let endpoint = server.endpoint();
        let handle = std::thread::spawn(move || server.run().unwrap());
        // Both workers resume concurrently: the fresh coordinator only
        // lingers for workers it has seen, so worker 0 must introduce
        // itself before the queue drains.
        let (s0, s1) = std::thread::scope(|scope| {
            let t0 = scope.spawn(|| run_steal(&sweep, &w0, &steal(&endpoint)).unwrap());
            let t1 = scope.spawn(|| run_steal(&sweep, &w1, &steal(&endpoint)).unwrap());
            (t0.join().unwrap(), t1.join().unwrap())
        });
        let summary = handle.join().unwrap();

        assert!(summary.drained && s0.drained && s1.drained);
        assert!(summary.reclaims >= 1, "the restored lease must be reclaimed");
        assert_eq!(s0.reused, crash.solved);
        assert!(
            crash.solved + s0.solved + s1.solved >= total,
            "the resumed workers must cover the rest of the lattice"
        );
        check_merge("both", &[w0, w1]);
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn merge_rejects_mixed_and_incomplete_shard_sets() {
    use lrd_experiments::sweep::SweepError;

    let corpus = Corpus::quick();
    let dir = std::env::temp_dir().join("lrd-sweep-reject-test");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let paths = solve_sharded(&dir, 2);

    // Incomplete: one shard of two.
    match merge_checkpoints(&paths[..1]) {
        Err(SweepError::IncompleteShardSet { expected, found }) => {
            assert_eq!(expected, 2);
            assert_eq!(found, vec![0]);
        }
        other => panic!("expected IncompleteShardSet, got {other:?}"),
    }

    // Mixed figures: a fig05 shard next to a fig04 shard.
    let foreign = dir.join("foreign.jsonl");
    let sweep5 = fig04_05::fig05_sweep(&corpus, Profile::Quick);
    run_points(&sweep5, &ShardSpec::new(1, 2).unwrap(), Some(&foreign)).unwrap();
    match merge_checkpoints(&[paths[0].clone(), foreign]) {
        Err(SweepError::ManifestMismatch { field, .. }) => {
            assert!(field == "figure" || field == "plan_hash", "field: {field}");
        }
        other => panic!("expected ManifestMismatch, got {other:?}"),
    }

    let _ = std::fs::remove_dir_all(&dir);
}
