//! Sharded sweep execution is a pure partition of the unsharded run:
//! any shard count, any kill-and-resume history, and a final merge must
//! reproduce the single-process surface bit for bit.

use std::path::PathBuf;

use lrd_experiments::figures::{fig04_05, Profile};
use lrd_experiments::sweep::{
    merge_checkpoints, read_checkpoint, run_points, ShardSpec,
};
use lrd_experiments::Corpus;

#[test]
fn round_robin_shards_partition_any_lattice() {
    // Property: for arbitrary i/n, the shards' index sets are disjoint
    // and their union is the full lattice.
    let corpus = Corpus::quick();
    let sweep = fig04_05::fig04_sweep(&corpus, Profile::Quick);
    let total = sweep.plan.len();
    for n in 1..=7u32 {
        let mut seen = vec![0u32; total];
        for i in 0..n {
            let shard = ShardSpec::new(i, n).unwrap();
            for p in sweep.plan.points_for(shard) {
                assert!(shard.owns(p.index));
                seen[p.index] += 1;
            }
        }
        assert!(
            seen.iter().all(|&c| c == 1),
            "n={n}: some point not covered exactly once: {seen:?}"
        );
    }
}

fn solve_sharded(dir: &std::path::Path, count: u32) -> Vec<PathBuf> {
    let corpus = Corpus::quick();
    (0..count)
        .map(|i| {
            let sweep = fig04_05::fig04_sweep(&corpus, Profile::Quick);
            let path = dir.join(format!("shard{i}of{count}.jsonl"));
            let shard = ShardSpec::new(i, count).unwrap();
            run_points(&sweep, shard, Some(&path)).unwrap();
            path
        })
        .collect()
}

#[test]
fn sharded_merge_is_bit_identical_to_unsharded() {
    let corpus = Corpus::quick();
    let sweep = fig04_05::fig04_sweep(&corpus, Profile::Quick);
    let reference = run_points(&sweep, ShardSpec::FULL, None).unwrap();
    let ref_grid = sweep.plan.to_grid(&reference);

    let dir = std::env::temp_dir().join("lrd-sweep-shard-test");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    for count in [1u32, 2, 3] {
        let paths = solve_sharded(&dir, count);
        let merged = merge_checkpoints(&paths).unwrap();
        assert_eq!(merged.manifest.shard.count, count);
        assert_eq!(merged.results.len(), reference.len());
        for (m, r) in merged.results.iter().zip(&reference) {
            assert_eq!(m.index, r.index);
            assert_eq!(
                m.value.to_bits(),
                r.value.to_bits(),
                "count={count}, point {}: merged {} != unsharded {}",
                m.index,
                m.value,
                r.value
            );
            assert_eq!(m.iterations, r.iterations);
            assert_eq!(m.bins, r.bins);
            assert_eq!(m.converged, r.converged);
        }
        let grid = sweep.plan.to_grid(&merged.results);
        assert_eq!(grid.values, ref_grid.values);
        let total: u64 = reference.iter().map(|r| r.iterations).sum();
        assert_eq!(merged.total_iterations(), total);
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn killed_shard_resumes_without_resolving_or_drifting() {
    let corpus = Corpus::quick();
    let sweep = fig04_05::fig04_sweep(&corpus, Profile::Quick);
    let shard = ShardSpec::new(0, 2).unwrap();
    let owned = sweep.plan.points_for(shard).len();
    assert!(owned >= 3, "test needs a few points per shard, got {owned}");

    let dir = std::env::temp_dir().join("lrd-sweep-resume-test");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("shard0.jsonl");

    // A completed run of the shard, then a simulated mid-write kill:
    // drop the last point line and leave a torn half-line behind.
    let full = run_points(&sweep, shard, Some(&path)).unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    let mut lines: Vec<&str> = text.lines().collect();
    let torn = &lines.pop().unwrap()[..10];
    let truncated = format!("{}\n{torn}", lines.join("\n"));
    std::fs::write(&path, truncated).unwrap();

    let ck = read_checkpoint(&path).unwrap();
    assert!(ck.truncated_tail, "the torn tail must be detected");
    assert_eq!(ck.points.len(), owned - 1);

    // Resume: only the lost point is re-solved; the stream of results
    // is bit-identical to the uninterrupted run.
    let resumed = run_points(&sweep, shard, Some(&path)).unwrap();
    assert_eq!(resumed.len(), full.len());
    for (a, b) in resumed.iter().zip(&full) {
        assert_eq!(a.index, b.index);
        assert_eq!(a.value.to_bits(), b.value.to_bits());
    }

    // The rewritten checkpoint is clean and complete.
    let ck = read_checkpoint(&path).unwrap();
    assert!(!ck.truncated_tail);
    assert_eq!(ck.points.len(), owned);

    // And the resumed shard still merges with its partner into the
    // reference surface.
    let other = dir.join("shard1.jsonl");
    run_points(&sweep, ShardSpec::new(1, 2).unwrap(), Some(&other)).unwrap();
    let merged = merge_checkpoints(&[path, other]).unwrap();
    let reference = run_points(&sweep, ShardSpec::FULL, None).unwrap();
    for (m, r) in merged.results.iter().zip(&reference) {
        assert_eq!(m.value.to_bits(), r.value.to_bits());
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn merge_rejects_mixed_and_incomplete_shard_sets() {
    use lrd_experiments::sweep::SweepError;

    let corpus = Corpus::quick();
    let dir = std::env::temp_dir().join("lrd-sweep-reject-test");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let paths = solve_sharded(&dir, 2);

    // Incomplete: one shard of two.
    match merge_checkpoints(&paths[..1]) {
        Err(SweepError::IncompleteShardSet { expected, found }) => {
            assert_eq!(expected, 2);
            assert_eq!(found, vec![0]);
        }
        other => panic!("expected IncompleteShardSet, got {other:?}"),
    }

    // Mixed figures: a fig05 shard next to a fig04 shard.
    let foreign = dir.join("foreign.jsonl");
    let sweep5 = fig04_05::fig05_sweep(&corpus, Profile::Quick);
    run_points(&sweep5, ShardSpec::new(1, 2).unwrap(), Some(&foreign)).unwrap();
    match merge_checkpoints(&[paths[0].clone(), foreign]) {
        Err(SweepError::ManifestMismatch { field, .. }) => {
            assert!(field == "figure" || field == "plan_hash", "field: {field}");
        }
        other => panic!("expected ManifestMismatch, got {other:?}"),
    }

    let _ = std::fs::remove_dir_all(&dir);
}
