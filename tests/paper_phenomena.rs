//! End-to-end checks of the paper's four headline findings (the
//! Sec. IV summary list), on the synthetic corpus at test resolution.

use lrd::prelude::*;
use lrd::traffic::synth;

fn mtv_setup() -> (Marginal, f64) {
    let trace = synth::mtv_like_with_len(synth::DEFAULT_SEED, 1 << 14);
    let marginal = trace.marginal(50);
    let theta = TruncatedPareto::calibrate_theta(
        trace.mean_epoch(50),
        lrd::traffic::alpha_from_hurst(synth::MTV_HURST),
    );
    (marginal, theta)
}

#[test]
fn finding_1_correlation_horizon_exists() {
    // "There exists a correlation horizon CH such that the loss rate
    // is not affected if the cutoff lag increases beyond CH."
    let (marginal, theta) = mtv_setup();
    let alpha = lrd::traffic::alpha_from_hurst(synth::MTV_HURST);
    let opts = SolverOptions::default();
    let buffer_s = 0.05;
    let cutoffs = [0.05, 0.2, 1.0, 5.0, 25.0, 100.0];
    let losses: Vec<(f64, f64)> = cutoffs
        .iter()
        .map(|&tc| {
            let model = QueueModel::from_utilization(
                marginal.clone(),
                TruncatedPareto::new(theta, alpha, tc),
                0.8,
                buffer_s,
            );
            (tc, SolveSession::builder(&model).options(&opts).solve().loss())
        })
        .collect();
    let horizon = empirical_horizon(&losses, 0.15).expect("horizon");
    assert!(
        horizon < *cutoffs.last().unwrap(),
        "loss never saturated: {losses:?}"
    );
    // And loss must genuinely vary below the horizon.
    assert!(
        losses[0].1 < 0.5 * losses.last().unwrap().1,
        "no cutoff dependence at all: {losses:?}"
    );
}

#[test]
fn finding_2_buffers_ineffective_for_lrd() {
    // "Large buffers significantly reduce loss only for SRD traffic;
    // for LRD traffic, increasing the buffer has little impact."
    let (marginal, theta) = mtv_setup();
    let alpha = lrd::traffic::alpha_from_hurst(synth::MTV_HURST);
    let opts = SolverOptions::default();
    let loss_at = |tc: f64, b: f64| {
        let model = QueueModel::from_utilization(
            marginal.clone(),
            TruncatedPareto::new(theta, alpha, tc),
            0.8,
            b,
        );
        SolveSession::builder(&model).options(&opts).solve().loss()
    };
    // SRD (short cutoff): buffer growth is very effective.
    let srd_gain = loss_at(0.05, 0.02) / loss_at(0.05, 0.5).max(1e-12);
    // LRD (long cutoff): much less so.
    let lrd_gain = loss_at(50.0, 0.02) / loss_at(50.0, 0.5).max(1e-12);
    assert!(
        srd_gain > 10.0 * lrd_gain,
        "buffer gain SRD {srd_gain:.1e} should dwarf LRD {lrd_gain:.1e}"
    );
}

#[test]
fn finding_3_marginal_scaling_has_considerable_impact() {
    let (marginal, theta) = mtv_setup();
    let alpha = lrd::traffic::alpha_from_hurst(synth::MTV_HURST);
    let opts = SolverOptions::default();
    let loss_for = |a: f64| {
        let model = QueueModel::from_utilization(
            marginal.scaled(a),
            TruncatedPareto::new(theta, alpha, f64::INFINITY),
            0.8,
            1.0,
        );
        SolveSession::builder(&model).options(&opts).solve().loss()
    };
    let wide = loss_for(1.5);
    let narrow = loss_for(0.5);
    assert!(
        wide > 10.0 * narrow.max(1e-12),
        "scaling 0.5→1.5 should span >10×: {narrow:.2e} → {wide:.2e}"
    );
}

#[test]
fn finding_4_multiplexing_beats_buffering() {
    let (marginal, theta) = mtv_setup();
    let alpha = lrd::traffic::alpha_from_hurst(synth::MTV_HURST);
    let opts = SolverOptions::default();
    let iv = TruncatedPareto::new(theta, alpha, f64::INFINITY);

    let loss_of = |m: &QueueModel<TruncatedPareto>| {
        SolveSession::builder(m).options(&opts).solve().loss()
    };
    // Baseline: one stream, 0.2 s buffer.
    let one = loss_of(&QueueModel::from_utilization(marginal.clone(), iv, 0.8, 0.2));
    // Buffering: same stream, 10× the buffer.
    let big_buffer = loss_of(&QueueModel::from_utilization(marginal.clone(), iv, 0.8, 2.0));
    // Multiplexing: five streams, same per-stream buffer.
    let muxed =
        loss_of(&QueueModel::from_utilization(marginal.superpose(5, 200), iv, 0.8, 0.2));

    assert!(muxed < one, "multiplexing failed to help: {muxed:.2e} vs {one:.2e}");
    assert!(
        muxed < big_buffer,
        "5-way multiplexing ({muxed:.2e}) should beat 10× buffering ({big_buffer:.2e})"
    );
}

#[test]
fn shuffling_and_model_tell_the_same_story() {
    // The cutoff in the model and external shuffling of the trace are
    // the same operation in different guises (paper Sec. III): both
    // loss curves must increase with the cutoff/block length.
    use lrd_rng::SeedableRng;
    let trace = synth::mtv_like_with_len(synth::DEFAULT_SEED, 1 << 14);
    let marginal = trace.marginal(50);
    let c = marginal.service_rate_for_utilization(0.8);
    let b = c * 0.2;
    let mut rng = lrd_rng::rngs::SmallRng::seed_from_u64(5);
    let mut prev = -1.0;
    for block_s in [0.1, 1.0, 10.0] {
        let shuffled = external_shuffle_seconds(&trace, block_s, &mut rng);
        let loss = simulate_trace(&shuffled, c, b).loss_rate;
        assert!(
            loss >= prev * 0.7,
            "shuffle loss fell sharply with block length: {loss} after {prev}"
        );
        prev = loss;
    }
}
