//! Property-based verification of Proposition II.1 — the heart of the
//! paper's numerical method — over randomized model instances, run as
//! seeded hand-rolled case loops:
//!
//! * `l(Q_L^M(n))` is non-decreasing in `n` and in `M`,
//! * `l(Q_H^M(n))` is non-increasing in `n` and in `M`,
//! * `l(Q_L^M(n)) <= l(Q_H^M(n))` always.

use lrd::prelude::*;
use lrd::rng::{rngs::SmallRng, Rng, SeedableRng};

const CASES: u64 = 24;

/// A random but well-posed queue model: 2–5 rates straddling the
/// service rate, Pareto shape in (1.05, 1.95), various cutoffs.
/// Retries until overload and underload rates exist distinct from `c`.
fn arb_model(rng: &mut SmallRng) -> QueueModel<TruncatedPareto> {
    loop {
        let n = rng.gen_range(2usize..6);
        let rates: Vec<f64> = (0..n).map(|_| rng.gen_range(0.1f64..20.0)).collect();
        let probs: Vec<f64> = (0..n).map(|_| rng.gen_range(0.05f64..1.0)).collect();
        let marginal = Marginal::new(&rates, &probs);
        if marginal.len() < 2 || marginal.mean() <= 0.0 {
            continue;
        }
        let util = rng.gen_range(0.3f64..0.95);
        let c = marginal.mean() / util;
        if marginal.rates().iter().any(|&r| (r - c).abs() < 1e-6) {
            continue;
        }
        let theta = rng.gen_range(0.005f64..0.2);
        let alpha = rng.gen_range(1.05f64..1.95);
        let cutoff = if rng.gen_bool(0.5) {
            rng.gen_range(0.05f64..20.0)
        } else {
            f64::INFINITY
        };
        let buf_s = rng.gen_range(0.02f64..1.0);
        let iv = TruncatedPareto::new(theta, alpha, cutoff);
        return QueueModel::new(marginal, iv, c, c * buf_s);
    }
}

#[test]
fn bounds_are_ordered_and_monotone_in_n() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x21_0000 + case);
        let model = arb_model(&mut rng);
        let mut solver = BoundSolver::new(model, 48);
        let mut prev = (0.0f64, f64::INFINITY);
        for _ in 0..40 {
            solver.step();
            let (l, h) = solver.loss_bounds();
            assert!(l <= h + 1e-10, "case {case}: lower {l} above upper {h}");
            assert!(l >= prev.0 - 1e-9, "case {case}: lower decreased: {l} < {}", prev.0);
            assert!(h <= prev.1 + 1e-9, "case {case}: upper increased: {h} > {}", prev.1);
            prev = (l, h);
        }
    }
}

#[test]
fn bounds_tighten_with_resolution() {
    // Run coarse and fine grids to near-stationarity; the fine
    // bounds must bracket at least as tightly.
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x22_0000 + case);
        let model = arb_model(&mut rng);
        let run = |bins: usize| {
            let mut s = BoundSolver::new(model.clone(), bins);
            for _ in 0..600 {
                s.step();
            }
            s.loss_bounds()
        };
        let (lc, hc) = run(32);
        let (lf, hf) = run(128);
        assert!(lf >= lc - 1e-9, "case {case}: finer lower bound fell: {lf} < {lc}");
        assert!(hf <= hc + 1e-9, "case {case}: finer upper bound rose: {hf} > {hc}");
    }
}

#[test]
fn occupancy_chains_remain_distributions() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x23_0000 + case);
        let model = arb_model(&mut rng);
        let mut solver = BoundSolver::new(model, 64);
        for _ in 0..60 {
            solver.step();
        }
        for q in [solver.occupancy_lower(), solver.occupancy_upper()] {
            let total: f64 = q.iter().sum();
            assert!((total - 1.0).abs() < 1e-8, "case {case}: mass {total}");
            assert!(q.iter().all(|&p| p >= 0.0), "case {case}");
        }
    }
}

#[test]
fn warm_restart_refinement_preserves_bounds() {
    // Footnote 3: refining mid-run must keep the bound property —
    // bounds stay ordered and keep their monotone direction after
    // the transplant.
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x24_0000 + case);
        let model = arb_model(&mut rng);
        let mut solver = BoundSolver::new(model, 32);
        for _ in 0..30 {
            solver.step();
        }
        let (l_before, h_before) = solver.loss_bounds();
        solver.refine();
        // The transplanted distributions are re-expressed on the finer
        // grid; the loss functional may only move within the old
        // bracket direction after more iterations.
        for _ in 0..60 {
            solver.step();
        }
        let (l_after, h_after) = solver.loss_bounds();
        assert!(l_after <= h_after + 1e-10, "case {case}");
        assert!(
            l_after >= l_before - 1e-9,
            "case {case}: lower bound regressed after refinement: {l_after} < {l_before}"
        );
        assert!(
            h_after <= h_before + 1e-9,
            "case {case}: upper bound regressed after refinement: {h_after} > {h_before}"
        );
    }
}

#[test]
fn solve_midpoint_within_bounds() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x25_0000 + case);
        let model = arb_model(&mut rng);
        let opts = SolverOptions {
            max_bins: 1 << 12,
            ..SolverOptions::default()
        };
        let sol = SolveSession::builder(&model).options(&opts).solve();
        assert!(sol.lower >= 0.0, "case {case}");
        assert!(sol.upper <= 1.0 + 1e-9, "case {case}: loss rate above 1: {}", sol.upper);
        assert!(
            sol.lower <= sol.loss() && sol.loss() <= sol.upper,
            "case {case}"
        );
    }
}
