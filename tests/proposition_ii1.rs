//! Property-based verification of Proposition II.1 — the heart of the
//! paper's numerical method — over randomized model instances:
//!
//! * `l(Q_L^M(n))` is non-decreasing in `n` and in `M`,
//! * `l(Q_H^M(n))` is non-increasing in `n` and in `M`,
//! * `l(Q_L^M(n)) <= l(Q_H^M(n))` always.

use lrd::prelude::*;
use proptest::prelude::*;

/// A random but well-posed queue model: 2–5 rates straddling the
/// service rate, Pareto shape in (1.05, 1.95), various cutoffs.
fn arb_model() -> impl Strategy<Value = QueueModel<TruncatedPareto>> {
    (
        proptest::collection::vec((0.1f64..20.0, 0.05f64..1.0), 2..6),
        1.05f64..1.95,
        0.005f64..0.2,
        prop_oneof![(0.05f64..20.0).boxed(), Just(f64::INFINITY).boxed()],
        0.3f64..0.95,
        0.02f64..1.0,
    )
        .prop_filter_map(
            "need overload and underload rates distinct from c",
            |(pairs, alpha, theta, cutoff, util, buf_s)| {
                let rates: Vec<f64> = pairs.iter().map(|p| p.0).collect();
                let probs: Vec<f64> = pairs.iter().map(|p| p.1).collect();
                let marginal = Marginal::new(&rates, &probs);
                if marginal.len() < 2 || marginal.mean() <= 0.0 {
                    return None;
                }
                let c = marginal.mean() / util;
                if marginal.rates().iter().any(|&r| (r - c).abs() < 1e-6) {
                    return None;
                }
                let iv = TruncatedPareto::new(theta, alpha, cutoff);
                Some(QueueModel::new(marginal, iv, c, c * buf_s))
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn bounds_are_ordered_and_monotone_in_n(model in arb_model()) {
        let mut solver = BoundSolver::new(model, 48);
        let mut prev = (0.0f64, f64::INFINITY);
        for _ in 0..40 {
            solver.step();
            let (l, h) = solver.loss_bounds();
            prop_assert!(l <= h + 1e-10, "lower {l} above upper {h}");
            prop_assert!(l >= prev.0 - 1e-9, "lower decreased: {l} < {}", prev.0);
            prop_assert!(h <= prev.1 + 1e-9, "upper increased: {h} > {}", prev.1);
            prev = (l, h);
        }
    }

    #[test]
    fn bounds_tighten_with_resolution(model in arb_model()) {
        // Run coarse and fine grids to near-stationarity; the fine
        // bounds must bracket at least as tightly.
        let run = |bins: usize| {
            let mut s = BoundSolver::new(model.clone(), bins);
            for _ in 0..600 { s.step(); }
            s.loss_bounds()
        };
        let (lc, hc) = run(32);
        let (lf, hf) = run(128);
        prop_assert!(lf >= lc - 1e-9, "finer lower bound fell: {lf} < {lc}");
        prop_assert!(hf <= hc + 1e-9, "finer upper bound rose: {hf} > {hc}");
    }

    #[test]
    fn occupancy_chains_remain_distributions(model in arb_model()) {
        let mut solver = BoundSolver::new(model, 64);
        for _ in 0..60 { solver.step(); }
        for q in [solver.occupancy_lower(), solver.occupancy_upper()] {
            let total: f64 = q.iter().sum();
            prop_assert!((total - 1.0).abs() < 1e-8, "mass {total}");
            prop_assert!(q.iter().all(|&p| p >= 0.0));
        }
    }

    #[test]
    fn warm_restart_refinement_preserves_bounds(model in arb_model()) {
        // Footnote 3: refining mid-run must keep the bound property —
        // bounds stay ordered and keep their monotone direction after
        // the transplant.
        let mut solver = BoundSolver::new(model, 32);
        for _ in 0..30 { solver.step(); }
        let (l_before, h_before) = solver.loss_bounds();
        solver.refine();
        // The transplanted distributions are re-expressed on the finer
        // grid; the loss functional may only move within the old
        // bracket direction after more iterations.
        for _ in 0..60 { solver.step(); }
        let (l_after, h_after) = solver.loss_bounds();
        prop_assert!(l_after <= h_after + 1e-10);
        prop_assert!(l_after >= l_before - 1e-9,
            "lower bound regressed after refinement: {l_after} < {l_before}");
        prop_assert!(h_after <= h_before + 1e-9,
            "upper bound regressed after refinement: {h_after} > {h_before}");
    }

    #[test]
    fn solve_midpoint_within_bounds(model in arb_model()) {
        let opts = SolverOptions { max_bins: 1 << 12, ..SolverOptions::default() };
        let sol = solve(&model, &opts);
        prop_assert!(sol.lower >= 0.0);
        prop_assert!(sol.upper <= 1.0 + 1e-9, "loss rate above 1: {}", sol.upper);
        prop_assert!(sol.lower <= sol.loss() && sol.loss() <= sol.upper);
    }
}
