//! The worker pool changes *where* the solver's floating-point work
//! runs, never *what* it computes: the two bounding chains are data-
//! independent within a step, every convolution is a pure function of
//! its inputs, and reductions happen in a fixed order on the caller.
//! These tests pin that contract — `--threads 4` must reproduce the
//! `--threads 1` serial path **bit for bit**, not merely within
//! tolerance. Any reordering of FP operations would show up here as a
//! `to_bits` mismatch long before it grew into a visible numerical
//! difference.

use lrd::pool::with_threads;
use lrd::prelude::*;

/// Solves `model` under a private pool of `threads` workers.
fn solve_with<D: Interarrival + Clone>(
    model: &QueueModel<D>,
    opts: &SolverOptions,
    threads: usize,
) -> LossSolution {
    with_threads(threads, || {
        SolveSession::builder(model)
            .options(opts)
            .run()
            .expect("solve failed")
            .0
    })
}

/// Asserts two solutions are byte-identical, comparing floats through
/// `to_bits` so `-0.0 != 0.0` and NaN payloads would be caught too.
fn assert_bitwise_equal(serial: &LossSolution, parallel: &LossSolution) {
    assert_eq!(serial.lower.to_bits(), parallel.lower.to_bits(), "lower bound");
    assert_eq!(serial.upper.to_bits(), parallel.upper.to_bits(), "upper bound");
    assert_eq!(serial.iterations, parallel.iterations, "iteration count");
    assert_eq!(serial.bins, parallel.bins, "final grid resolution");
    assert_eq!(serial.converged, parallel.converged, "convergence flag");
    assert_eq!(
        serial.refinement_epochs, parallel.refinement_epochs,
        "refinement epochs"
    );
    assert_eq!(
        serial.gap_history.len(),
        parallel.gap_history.len(),
        "gap history length"
    );
    for (s, p) in serial.gap_history.iter().zip(parallel.gap_history.iter()) {
        assert_eq!(s.iteration, p.iteration, "gap sample iteration");
        assert_eq!(s.lower.to_bits(), p.lower.to_bits(), "gap sample lower");
        assert_eq!(s.upper.to_bits(), p.upper.to_bits(), "gap sample upper");
    }
}

/// The paper's bursty two-rate MTV-like model with a finite cutoff —
/// heavy enough that the solver refines its grid at least once, so the
/// parallel transplant path is exercised, not just the step path.
fn pareto_model() -> QueueModel<TruncatedPareto> {
    let marginal = Marginal::new(&[2.0, 14.0], &[0.5, 0.5]);
    let intervals = TruncatedPareto::from_hurst(0.8, 0.05, 1.0);
    let model = QueueModel::from_utilization(marginal, intervals, 0.8, 0.2);
    // Deep-loss variant: buffer of one service-rate-second.
    model.with_buffer(model.service_rate())
}

fn exponential_model() -> QueueModel<Exponential> {
    let marginal = Marginal::new(&[1.0, 5.0, 9.0], &[0.3, 0.4, 0.3]);
    QueueModel::from_utilization(marginal, Exponential::new(0.25), 0.7, 0.3)
}

#[test]
fn pareto_solution_is_bitwise_identical_across_thread_counts() {
    let model = pareto_model();
    let opts = SolverOptions::default();
    let serial = solve_with(&model, &opts, 1);
    let parallel = solve_with(&model, &opts, 4);
    assert!(
        !serial.refinement_epochs.is_empty(),
        "model must refine so the parallel transplant path is covered"
    );
    assert_bitwise_equal(&serial, &parallel);
}

#[test]
fn exponential_solution_is_bitwise_identical_across_thread_counts() {
    let model = exponential_model();
    let opts = SolverOptions::default();
    let serial = solve_with(&model, &opts, 1);
    let parallel = solve_with(&model, &opts, 4);
    assert_bitwise_equal(&serial, &parallel);
}

#[test]
fn two_workers_match_four_workers() {
    // Thread-count invariance is not just 1-vs-N: any two pool sizes
    // must agree, since task placement is the only thing that varies.
    let model = exponential_model();
    let opts = SolverOptions::default();
    let two = solve_with(&model, &opts, 2);
    let four = solve_with(&model, &opts, 4);
    assert_bitwise_equal(&two, &four);
}

#[test]
fn figure_grid_fanout_is_thread_count_invariant() {
    // The sweep-level `par_map` fan-out used by the figure binaries
    // must preserve output order and values exactly.
    let buffers = [0.05f64, 0.2, 1.0];
    let cutoffs = [0.1f64, 1.0, f64::INFINITY];
    let solve_grid = || {
        let marginal = Marginal::new(&[2.0, 14.0], &[0.5, 0.5]);
        let points: Vec<(f64, f64)> = buffers
            .iter()
            .flat_map(|&b| cutoffs.iter().map(move |&tc| (b, tc)))
            .collect();
        lrd::pool::par_map(&points, |&(b, tc)| {
            let intervals = TruncatedPareto::from_hurst(0.8, 0.05, tc);
            let model =
                QueueModel::from_utilization(marginal.clone(), intervals, 0.8, b);
            SolveSession::builder(&model)
                .options(&SolverOptions::default())
                .solve()
                .loss()
        })
    };
    let serial: Vec<u64> = with_threads(1, solve_grid).iter().map(|v| v.to_bits()).collect();
    let parallel: Vec<u64> = with_threads(4, solve_grid).iter().map(|v| v.to_bits()).collect();
    assert_eq!(serial, parallel);
}

#[test]
fn panic_in_pool_task_propagates_to_the_caller() {
    // A worker panic must surface at the spawning scope (so tests and
    // binaries fail loudly), not hang the pool or kill the process.
    let caught = std::panic::catch_unwind(|| {
        with_threads(4, || {
            let pool = lrd::pool::current();
            pool.scope(|s| {
                s.spawn(|| panic!("solver task exploded"));
            });
        })
    });
    let payload = caught.expect_err("panic must propagate");
    let message = payload
        .downcast_ref::<&str>()
        .copied()
        .map(String::from)
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_default();
    assert!(
        message.contains("solver task exploded"),
        "panic payload should survive the hop across threads, got {message:?}"
    );
}
