//! Cross-module identities tying the analytic formulas of Sec. II to
//! sample-path behaviour: the covariance law (Eq. 3/8), the mean
//! interval (Eq. 25), and the self-similarity mapping `H = (3 − α)/2`.

use lrd::prelude::*;
use lrd::traffic::{covariance, fgn};
use lrd_rng::SeedableRng;

#[test]
fn sampled_paths_match_analytic_autocovariance() {
    // φ(t) = σ² Pr{τ_res >= t} (Eq. 3): estimate the autocovariance of
    // a binned sample path and compare with the closed form at bin
    // multiples.
    let marginal = Marginal::new(&[1.0, 9.0], &[0.5, 0.5]);
    let iv = TruncatedPareto::new(0.1, 1.5, 2.0);
    let source = FluidSource::new(marginal.clone(), iv);
    let mut rng = lrd_rng::rngs::SmallRng::seed_from_u64(11);
    let dt = 0.05;
    let trace = source.sample_trace(&mut rng, dt, 400_000);

    let emp = lrd::stats::autocovariance(trace.rates(), 60);
    for k in [2usize, 5, 10, 20, 40] {
        let want = covariance::autocovariance_at(&marginal, &iv, k as f64 * dt);
        // Binned sampling smooths the process slightly; compare with a
        // generous relative tolerance plus an absolute floor.
        assert!(
            (emp[k] - want).abs() < 0.15 * want.max(0.5),
            "lag {k}: empirical {} vs analytic {}",
            emp[k],
            want
        );
    }
    // Beyond the cutoff the analytic covariance is exactly zero and
    // the empirical one should be statistically indistinguishable from
    // zero.
    let beyond = (2.2 / dt) as usize;
    let emp_long = lrd::stats::autocovariance(trace.rates(), beyond + 4);
    assert!(
        emp_long[beyond].abs() < 0.3,
        "covariance beyond the cutoff should vanish, got {}",
        emp_long[beyond]
    );
}

#[test]
fn mean_interval_matches_eq25_empirically() {
    let iv = TruncatedPareto::new(0.04, 1.3, 0.8);
    let mut rng = lrd_rng::rngs::SmallRng::seed_from_u64(12);
    use lrd::traffic::Interarrival;
    let n = 500_000;
    let sum: f64 = (0..n).map(|_| iv.sample(&mut rng)).sum();
    let emp = sum / n as f64;
    assert!(
        (emp - iv.mean()).abs() / iv.mean() < 0.01,
        "empirical mean {emp} vs Eq. 25 {}",
        iv.mean()
    );
}

#[test]
fn untruncated_model_is_asymptotically_self_similar() {
    // Sample the fluid model with T_c = ∞ and check that variance-time
    // analysis of the path recovers H ≈ (3 − α)/2.
    let alpha = 1.4; // H = 0.8
    let marginal = Marginal::new(&[0.0, 4.0], &[0.5, 0.5]);
    let source = FluidSource::new(marginal, TruncatedPareto::new(0.02, alpha, f64::INFINITY));
    let mut rng = lrd_rng::rngs::SmallRng::seed_from_u64(13);
    let trace = source.sample_trace(&mut rng, 0.05, 1 << 17);
    let est = variance_time_estimate(trace.rates());
    let want = (3.0 - alpha) / 2.0;
    assert!(
        (est.h - want).abs() < 0.12,
        "variance-time H {} vs theoretical {}",
        est.h,
        want
    );
}

#[test]
fn truncation_removes_long_range_dependence() {
    // Same model with a short cutoff: aggregated beyond the cutoff the
    // process must look short-range dependent (H near 1/2).
    let marginal = Marginal::new(&[0.0, 4.0], &[0.5, 0.5]);
    let source = FluidSource::new(marginal, TruncatedPareto::new(0.02, 1.4, 0.25));
    let mut rng = lrd_rng::rngs::SmallRng::seed_from_u64(14);
    let trace = source.sample_trace(&mut rng, 0.05, 1 << 17);
    // Aggregate to 0.5 s bins (well above the 0.25 s cutoff) before
    // estimating: all remaining correlation is sub-bin.
    let agg = trace.aggregate(10);
    let est = variance_time_estimate(agg.rates());
    assert!(
        est.h < 0.62,
        "truncated model should read as SRD at long lags, got H = {}",
        est.h
    );
}

#[test]
fn fgn_copula_traces_keep_their_hurst() {
    // The synthetic-trace pipeline end to end: fGn → copula → marginal
    // map → Hurst estimate.
    let mut rng = lrd_rng::rngs::SmallRng::seed_from_u64(15);
    let g = fgn::davies_harte(&mut rng, 0.85, 1 << 16);
    let est = wavelet_estimate(&g);
    assert!((est.h - 0.85).abs() < 0.06, "wavelet H {} vs 0.85", est.h);

    let t = synth::mtv_like_with_len(99, 1 << 16);
    let est2 = wavelet_estimate(t.rates());
    assert!(
        (est2.h - synth::MTV_HURST).abs() < 0.08,
        "MTV-like trace wavelet H {} vs {}",
        est2.h,
        synth::MTV_HURST
    );
}

#[test]
fn marginal_transformations_compose_with_queueing() {
    // Scaling by a < 1 or superposing streams must reduce the solved
    // loss; scaling by a > 1 must raise it (monotonicity of loss in
    // marginal spread, the engine behind Figs. 10–13).
    let marginal = Marginal::new(&[1.0, 4.0, 9.0, 15.0], &[0.3, 0.35, 0.25, 0.1]);
    let iv = TruncatedPareto::new(0.05, 1.4, 2.0);
    let opts = SolverOptions::default();
    let base = QueueModel::from_utilization(marginal.clone(), iv, 0.8, 0.3);
    let loss_of = |m: &QueueModel<TruncatedPareto>| {
        SolveSession::builder(m).options(&opts).solve().loss()
    };
    let l_base = loss_of(&base);

    let l_narrow = loss_of(&base.with_marginal(marginal.scaled(0.6)));
    let l_wide = loss_of(&base.with_marginal(marginal.scaled(1.4)));
    let l_muxed = loss_of(&base.with_marginal(marginal.superpose(4, 200)));

    assert!(l_narrow < l_base, "narrowing must reduce loss: {l_narrow} vs {l_base}");
    assert!(l_wide > l_base, "widening must raise loss: {l_wide} vs {l_base}");
    assert!(l_muxed < l_base, "multiplexing must reduce loss: {l_muxed} vs {l_base}");
}
